//! Integration of 3σPredict with the synthetic environments: the predictor
//! must reproduce the paper's qualitative accuracy profiles (§2.1, Fig. 2).

use threesigma_repro::cluster::Attributes;
use threesigma_repro::predict::{AttributeSource, Predictor, PredictorConfig};
use threesigma_repro::workload::analysis::{
    cov_by_attribute, fraction_off_by_factor, high_variability_fraction, runtime_cdf,
};
use threesigma_repro::workload::{generate, Environment, WorkloadConfig};

struct Attrs<'a>(&'a Attributes);

impl AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

/// Replays a stream of jobs through the predictor (train on the first
/// 60 %, prequentially evaluate the rest); returns (estimate, actual)
/// pairs. Uses the pre-training stream — arrival times are irrelevant to
/// estimate quality, and big-gang environments (Mustang) produce too few
/// timed jobs per trace hour for statistics.
fn replay(env: Environment, seed: u64) -> Vec<(f64, f64)> {
    let config = WorkloadConfig {
        duration: 60.0,
        pretrain_jobs: 4000,
        ..WorkloadConfig::e2e(env, seed)
    };
    let trace = generate(&config);
    let split = trace.pretrain.len() * 3 / 5;
    let mut predictor = Predictor::new(PredictorConfig::default());
    for job in &trace.pretrain[..split] {
        predictor.observe(&Attrs(&job.attributes), job.duration);
    }
    let mut pairs = Vec::new();
    for job in &trace.pretrain[split..] {
        if let Some(point) = predictor.predict_point(&Attrs(&job.attributes)) {
            pairs.push((point, job.duration));
        }
        predictor.observe(&Attrs(&job.attributes), job.duration);
    }
    pairs
}

#[test]
fn most_estimates_are_good_but_a_real_tail_exists() {
    // §2.1: 77–92 % of estimates within a factor of two; 8–23 % beyond.
    for env in [
        Environment::Google,
        Environment::HedgeFund,
        Environment::Mustang,
    ] {
        let pairs = replay(env, 11);
        assert!(pairs.len() > 50, "{env:?}: enough predictions");
        let off2 = fraction_off_by_factor(&pairs, 2.0);
        assert!(
            (0.02..0.45).contains(&off2),
            "{env:?}: {:.1}% off by ≥2x — outside the plausible band",
            off2 * 100.0
        );
    }
}

#[test]
fn hedgefund_is_harder_to_predict_than_google() {
    let google = fraction_off_by_factor(&replay(Environment::Google, 13), 2.0);
    let hedge = fraction_off_by_factor(&replay(Environment::HedgeFund, 13), 2.0);
    assert!(
        hedge > google,
        "hedgefund {hedge:.3} should exceed google {google:.3}"
    );
}

#[test]
fn mustang_has_many_very_accurate_estimates() {
    // Fig. 2(d): Mustang has a large spike of ±5 % estimates.
    let pairs = replay(Environment::Mustang, 17);
    let within5 = pairs
        .iter()
        .filter(|(e, a)| ((e - a) / a).abs() <= 0.05)
        .count() as f64
        / pairs.len() as f64;
    assert!(
        within5 > 0.35,
        "only {:.0}% of Mustang estimates within ±5%",
        within5 * 100.0
    );
}

#[test]
fn runtimes_are_heavy_tailed_in_all_environments() {
    // Fig. 2(a): orders of magnitude between median and the tail.
    for env in [
        Environment::Google,
        Environment::HedgeFund,
        Environment::Mustang,
    ] {
        let trace = generate(&WorkloadConfig {
            duration: 60.0,
            pretrain_jobs: 4000,
            ..WorkloadConfig::e2e(env, 19)
        });
        let cdf = runtime_cdf(&trace.pretrain);
        let at = |q: f64| cdf[(q * (cdf.len() - 1) as f64) as usize].0;
        assert!(
            at(0.99) / at(0.5) > 4.0,
            "{env:?}: p99/p50 = {:.1}",
            at(0.99) / at(0.5)
        );
    }
}

#[test]
fn per_user_variability_is_high_for_many_users() {
    // Fig. 2(b): a large share of per-user subsets have CoV near/above 1.
    for env in [Environment::HedgeFund, Environment::Mustang] {
        let trace = generate(&WorkloadConfig {
            duration: 3.0 * 3600.0,
            pretrain_jobs: 3000,
            ..WorkloadConfig::e2e(env, 23)
        });
        let mut jobs = trace.pretrain.clone();
        jobs.extend(trace.jobs.clone());
        let covs = cov_by_attribute(&jobs, "user", 5);
        assert!(covs.len() > 20, "{env:?}: enough user groups");
        let high = high_variability_fraction(&covs, 1.0);
        assert!(
            high > 0.05,
            "{env:?}: only {:.0}% of users have CoV > 1",
            high * 100.0
        );
    }
}
