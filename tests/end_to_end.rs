//! End-to-end integration tests spanning workload → predict → core → cluster.
//!
//! Debug builds are slow, so these use short traces; the full-scale
//! experiments live in the bench harnesses.

use threesigma_repro::cluster::JobState;
use threesigma_repro::core::driver::{run, Experiment, SchedulerKind};
use threesigma_repro::workload::{generate, Environment, Trace, WorkloadConfig};

fn small_trace(env: Environment, seed: u64) -> Trace {
    generate(&WorkloadConfig {
        duration: 1200.0,
        pretrain_jobs: 600,
        ..WorkloadConfig::e2e(env, seed)
    })
}

fn quick_exp() -> Experiment {
    Experiment::paper_sc256().with_cycle(30.0)
}

#[test]
fn every_system_processes_every_job() {
    let trace = small_trace(Environment::Google, 1);
    for kind in [
        SchedulerKind::ThreeSigma,
        SchedulerKind::ThreeSigmaNoDist,
        SchedulerKind::ThreeSigmaNoOE,
        SchedulerKind::ThreeSigmaNoAdapt,
        SchedulerKind::PointPerfEst,
        SchedulerKind::PointRealEst,
        SchedulerKind::Backfill,
        SchedulerKind::Prio,
    ] {
        let r = run(kind, &trace, &quick_exp()).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(r.metrics.outcomes.len(), trace.jobs.len());
        // Every job reached a terminal or explicable state and most work
        // completed despite overload.
        assert!(
            r.metrics.completion_rate() > 0.4,
            "{kind:?}: completed only {:.0}%",
            r.metrics.completion_rate() * 100.0
        );
    }
}

#[test]
fn accounting_is_conserved() {
    let trace = small_trace(Environment::Google, 2);
    let r = run(SchedulerKind::ThreeSigma, &trace, &quick_exp()).unwrap();
    let m = &r.metrics;
    let total = m.count(JobState::Completed)
        + m.count(JobState::Canceled)
        + m.count(JobState::Pending)
        + m.count(JobState::Running);
    assert_eq!(total, trace.jobs.len(), "every job in exactly one state");
    // Goodput is bounded by cluster space-time actually simulated.
    let capacity_hours = 256.0 * m.end_time / 3600.0;
    assert!(m.goodput_hours() <= capacity_hours + 1e-6);
}

#[test]
fn completed_jobs_have_consistent_timestamps() {
    let trace = small_trace(Environment::HedgeFund, 3);
    let r = run(SchedulerKind::ThreeSigma, &trace, &quick_exp()).unwrap();
    for o in &r.metrics.outcomes {
        if o.state == JobState::Completed {
            let start = o.start_time.unwrap();
            let finish = o.finish_time.unwrap();
            let rt = o.measured_runtime.unwrap();
            assert!(start >= o.submit_time, "{o:?}");
            assert!((finish - start - rt).abs() < 1e-6, "{o:?}");
            assert!(rt > 0.0);
        }
    }
}

#[test]
fn oracle_beats_or_matches_realistic_point_estimates() {
    // The central premise: perfect estimates beat realistic ones; the full
    // distribution system lands close to the oracle (Fig. 1). A short trace
    // is noisy, so allow a modest tolerance band.
    let trace = small_trace(Environment::Google, 4);
    let exp = quick_exp();
    let oracle = run(SchedulerKind::PointPerfEst, &trace, &exp).unwrap();
    let realist = run(SchedulerKind::PointRealEst, &trace, &exp).unwrap();
    let threesigma = run(SchedulerKind::ThreeSigma, &trace, &exp).unwrap();
    assert!(
        oracle.metrics.slo_miss_pct() <= realist.metrics.slo_miss_pct() + 5.0,
        "oracle {:.1}% vs realist {:.1}%",
        oracle.metrics.slo_miss_pct(),
        realist.metrics.slo_miss_pct()
    );
    assert!(
        threesigma.metrics.slo_miss_pct() <= realist.metrics.slo_miss_pct() + 5.0,
        "3sigma {:.1}% vs realist {:.1}%",
        threesigma.metrics.slo_miss_pct(),
        realist.metrics.slo_miss_pct()
    );
}

#[test]
fn rc_and_sc_clusters_agree_broadly() {
    // Table 2: real-cluster fidelity shifts metrics only modestly.
    let trace = small_trace(Environment::Google, 5);
    let sc = run(SchedulerKind::PointPerfEst, &trace, &quick_exp()).unwrap();
    let rc_exp = Experiment {
        cluster: Experiment::paper_rc256().cluster,
        ..quick_exp()
    };
    let rc = run(SchedulerKind::PointPerfEst, &trace, &rc_exp).unwrap();
    let delta = (sc.metrics.slo_miss_pct() - rc.metrics.slo_miss_pct()).abs();
    assert!(delta < 25.0, "SC/RC miss-rate delta {delta:.1} too large");
    assert!(rc.metrics.completion_rate() > 0.4);
}

#[test]
fn timings_exist_for_milp_schedulers_only() {
    let trace = small_trace(Environment::Google, 6);
    let exp = quick_exp();
    let milp = run(SchedulerKind::ThreeSigma, &trace, &exp).unwrap();
    assert!(!milp.timings.is_empty());
    assert!(milp.timings.iter().all(|t| t.total >= t.solver));
    let prio = run(SchedulerKind::Prio, &trace, &exp).unwrap();
    assert!(prio.timings.is_empty());
}

#[test]
fn padded_estimates_run_end_to_end() {
    let trace = small_trace(Environment::Google, 8);
    let r = run(SchedulerKind::PointPaddedEst, &trace, &quick_exp()).unwrap();
    assert_eq!(r.metrics.outcomes.len(), trace.jobs.len());
    assert!(r.metrics.completion_rate() > 0.3);
}

#[test]
fn injected_distributions_flow_through_driver() {
    use threesigma_repro::core::sched::threesigma::OverestimateMode;
    use threesigma_repro::histogram::RuntimeDistribution;

    let trace = small_trace(Environment::Google, 9);
    // Oracle-centred uniform bands: a well-informed distribution source.
    let map: std::collections::HashMap<_, _> = trace
        .jobs
        .iter()
        .map(|j| {
            let d = RuntimeDistribution::Uniform(threesigma_repro::histogram::Uniform::new(
                j.duration * 0.8,
                j.duration * 1.2,
            ));
            (j.id, d)
        })
        .collect();
    let r = threesigma_repro::core::driver::run_with_source(
        threesigma_repro::core::driver::injected(map),
        OverestimateMode::Adaptive,
        &trace,
        &quick_exp(),
    )
    .unwrap();
    // Near-perfect information: should be in oracle territory.
    let oracle = run(SchedulerKind::PointPerfEst, &trace, &quick_exp()).unwrap();
    assert!(
        r.metrics.slo_miss_pct() <= oracle.metrics.slo_miss_pct() + 10.0,
        "injected {:.1}% vs oracle {:.1}%",
        r.metrics.slo_miss_pct(),
        oracle.metrics.slo_miss_pct()
    );
}

#[test]
fn wasted_work_is_accounted() {
    let trace = small_trace(Environment::Google, 10);
    for kind in [SchedulerKind::ThreeSigma, SchedulerKind::Prio] {
        let r = run(kind, &trace, &quick_exp()).unwrap();
        let m = &r.metrics;
        if m.preemptions > 0 {
            assert!(m.wasted_hours() > 0.0, "{kind:?}");
        } else {
            assert_eq!(m.wasted_hours(), 0.0, "{kind:?}");
        }
        // Waste is bounded by simulated cluster space-time.
        assert!(m.wasted_hours() <= 256.0 * m.end_time / 3600.0);
    }
}

#[test]
fn mustang_environment_runs_end_to_end() {
    let trace = small_trace(Environment::Mustang, 7);
    let r = run(SchedulerKind::ThreeSigma, &trace, &quick_exp()).unwrap();
    assert_eq!(r.metrics.outcomes.len(), trace.jobs.len());
}
