//! Property-based tests for 3σPredict's expert scoring and selection.

use proptest::prelude::*;

use threesigma_repro::predict::{
    EstimatorKind, Predictor, PredictorConfig, ValueState, ESTIMATORS,
};

fn attrs(user: &str, name: &str) -> [(String, String); 4] {
    [
        ("user".to_owned(), user.to_owned()),
        ("job_name".to_owned(), name.to_owned()),
        ("priority".to_owned(), "5".to_owned()),
        ("tasks".to_owned(), "4".to_owned()),
    ]
}

/// The closed-form EWMA recurrence: `e_1 = x_1`,
/// `e_k = α·x_k + (1-α)·e_{k-1}`, expanded to
/// `e_n = (1-α)^{n-1}·x_1 + Σ_{k≥2} α·(1-α)^{n-k}·x_k`.
fn ewma_closed_form(alpha: f64, xs: &[f64]) -> f64 {
    let n = xs.len();
    let mut e = (1.0 - alpha).powi(n as i32 - 1) * xs[0];
    for (k, &x) in xs.iter().enumerate().skip(1) {
        e += alpha * (1.0 - alpha).powi((n - 1 - k) as i32) * x;
    }
    e
}

proptest! {
    /// The predictor never selects an expert with strictly worse cumulative
    /// NMAE than another trusted expert over the same history, and its point
    /// estimate is exactly the winning estimator's output.
    #[test]
    fn selection_never_picks_a_strictly_worse_trusted_expert(
        runtimes in prop::collection::vec(1.0f64..5e3, 4..40),
    ) {
        let config = PredictorConfig::default();
        let min_evals = config.min_expert_evals;
        let mut p = Predictor::new(config);
        // A single attribute set: every feature value sees the identical
        // history, so a shadow ValueState reproduces each expert's score.
        for &rt in &runtimes {
            p.observe(&attrs("prop", "trace"), rt);
        }
        let mut shadow = ValueState::new(80, 10, 0.6, None);
        for &rt in &runtimes {
            shadow.observe(rt);
        }
        let pred = p.predict(&attrs("prop", "trace")).unwrap();

        let trusted_nmae = |kind: EstimatorKind| {
            let s = shadow.score(kind);
            (s.evals >= min_evals).then(|| s.nmae()).flatten()
        };
        let best = ESTIMATORS
            .iter()
            .filter_map(|&k| trusted_nmae(k))
            .fold(f64::INFINITY, f64::min);
        if let Some(winner_nmae) = trusted_nmae(pred.estimator) {
            prop_assert!(
                winner_nmae <= best + 1e-9,
                "picked {:?} with NMAE {winner_nmae}, but best trusted NMAE is {best}",
                pred.estimator
            );
        } else {
            // The winner is unscored: legal only when NO expert is trusted.
            prop_assert!(
                best.is_infinite(),
                "picked unscored {:?} while a trusted expert (NMAE {best}) existed",
                pred.estimator
            );
        }
        // The reported point is the winning estimator's output, verbatim.
        prop_assert_eq!(
            pred.point.to_bits(),
            shadow.estimate(pred.estimator).unwrap().to_bits()
        );
    }

    /// The rolling expert (α = 0.6) matches the closed-form EWMA recurrence
    /// on short histories — in both the streaming (uncapped) and
    /// replay-from-window (sample-capped) code paths.
    #[test]
    fn rolling_expert_matches_closed_form_ewma(
        runtimes in prop::collection::vec(0.5f64..1e4, 1..12),
    ) {
        let expected = ewma_closed_form(0.6, &runtimes);

        let mut streaming = ValueState::new(80, 10, 0.6, None);
        for &rt in &runtimes {
            streaming.observe(rt);
        }
        let got = streaming.estimate(EstimatorKind::Rolling).unwrap();
        prop_assert!(
            (got - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
            "streaming EWMA {got} vs closed form {expected}"
        );

        // Capped mode re-folds the window; with the cap wider than the
        // history it must agree with the streaming path exactly.
        let mut capped = ValueState::new(80, 10, 0.6, Some(16));
        for &rt in &runtimes {
            capped.observe(rt);
        }
        let got_capped = capped.estimate(EstimatorKind::Rolling).unwrap();
        prop_assert!(
            (got_capped - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
            "capped EWMA {got_capped} vs closed form {expected}"
        );
    }

    /// NMAE accounting is prequential: an expert that predicts every value
    /// exactly scores zero, and scores only start once an estimate exists.
    #[test]
    fn perfect_predictions_score_zero_nmae(
        value in 1.0f64..1e4,
        reps in 2usize..20,
    ) {
        let mut s = ValueState::new(80, 10, 0.6, None);
        for _ in 0..reps {
            s.observe(value);
        }
        for kind in ESTIMATORS {
            let score = s.score(kind);
            // First observation is unscored (no estimate existed yet).
            prop_assert_eq!(score.evals, reps as u64 - 1, "{:?}", kind);
            prop_assert!(score.nmae().unwrap() <= 1e-12, "{:?}", kind);
        }
    }
}
