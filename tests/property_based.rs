//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use threesigma_repro::core::{DiscreteDist, UtilityCurve};
use threesigma_repro::histogram::{
    quantile_sorted, RuntimeDistribution, StreamingHistogram, StreamingMoments,
};
use threesigma_repro::milp::{BranchAndBound, Cmp, Model};

proptest! {
    /// The streaming histogram's CDF estimate stays within a coarse band of
    /// the empirical CDF, is monotone, and preserves count/min/max exactly.
    #[test]
    fn histogram_tracks_empirical_cdf(
        mut values in prop::collection::vec(0.0f64..1e4, 1..300),
    ) {
        let mut h = StreamingHistogram::new(32);
        for v in &values {
            h.insert(*v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min().unwrap(), values[0]);
        prop_assert_eq!(h.max().unwrap(), *values.last().unwrap());

        let n = values.len() as f64;
        let mut prev = 0.0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let x = quantile_sorted(&values, q).unwrap();
            let est = h.sum(x) / n;
            prop_assert!(est >= prev - 1e-9, "monotone");
            prev = est;
            // Compare against the empirical CDF at x (not q itself — ties
            // make the empirical CDF jump past q). Coarse band: the sketch
            // may smear mass across bins.
            let emp = values.partition_point(|v| *v <= x) as f64 / n;
            prop_assert!((est - emp).abs() < 0.35, "x={x} emp={emp} est={est}");
        }
    }

    /// Welford moments agree with the naive two-pass computation.
    #[test]
    fn streaming_moments_match_naive(
        values in prop::collection::vec(-1e5f64..1e5, 1..200),
    ) {
        let mut m = StreamingMoments::new();
        for v in &values {
            m.push(*v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((m.mean().unwrap() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((m.variance().unwrap() - var).abs() <= 1e-5 * (1.0 + var));
    }

    /// Conditioning a discrete distribution never increases the mean
    /// remaining-below-elapsed mass, keeps it normalised, and agrees with
    /// Eq. 2 on survival ratios.
    #[test]
    fn conditioning_respects_eq2(
        samples in prop::collection::vec(1.0f64..1e4, 2..100),
        elapsed_frac in 0.0f64..1.2,
    ) {
        let dist = RuntimeDistribution::from_samples(&samples, 40).unwrap();
        let d = DiscreteDist::from_distribution(&dist, 40);
        let elapsed = d.upper() * elapsed_frac;
        let c = d.condition(elapsed);
        let total: f64 = c.points().iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(c.points().iter().all(|(t, _)| *t >= elapsed - 1e-9));
        if !d.is_exhausted_at(elapsed) {
            let s_e = d.survival(elapsed);
            for t in [elapsed + 1.0, elapsed * 1.5 + 10.0] {
                let expected = (d.survival(t) / s_e).clamp(0.0, 1.0);
                prop_assert!((c.survival(t) - expected).abs() < 1e-6);
            }
        }
    }

    /// Expected utility is bounded by the curve's max and is monotone
    /// non-increasing in start time for step/decay SLO curves.
    #[test]
    fn expected_utility_bounds_and_monotonicity(
        samples in prop::collection::vec(1.0f64..5e3, 2..60),
        weight in 0.1f64..20.0,
        deadline in 100.0f64..1e4,
    ) {
        let dist = RuntimeDistribution::from_samples(&samples, 20).unwrap();
        let d = DiscreteDist::from_distribution(&dist, 20);
        let curve = UtilityCurve::SloStep { weight, deadline };
        let mut prev = f64::INFINITY;
        for k in 0..10 {
            let start = k as f64 * deadline / 8.0;
            let eu = curve.expected(start, &d);
            prop_assert!((0.0..=weight + 1e-9).contains(&eu));
            prop_assert!(eu <= prev + 1e-9, "non-increasing in start");
            prev = eu;
        }
    }

    /// On random feasible binary programs, branch-and-bound returns a
    /// feasible solution matching the exhaustive optimum.
    #[test]
    fn milp_agrees_with_brute_force(
        objs in prop::collection::vec(-5.0f64..10.0, 4..7),
        coeffs in prop::collection::vec(0.0f64..4.0, 12..21),
        rhs in prop::collection::vec(1.0f64..8.0, 3),
    ) {
        let n = objs.len();
        let mut m = Model::new();
        let vars: Vec<_> = objs.iter().map(|&o| m.add_binary(o)).collect();
        for (r, &b) in rhs.iter().enumerate() {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(j, v)| (*v, coeffs[(r * n + j) % coeffs.len()]))
                .collect();
            m.add_constraint(&terms, Cmp::Le, b);
        }
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
            if m.is_feasible(&x, 1e-9) {
                best = best.max(m.objective_value(&x));
            }
        }
        let s = BranchAndBound::new().solve(&m);
        // All-zero is always feasible here (non-negative coefficients).
        prop_assert!(s.has_solution());
        prop_assert!(m.is_feasible(&s.values, 1e-5));
        prop_assert!((s.objective - best).abs() < 1e-5, "{} vs {best}", s.objective);
    }

    /// Random tiny traces through the oracle MILP scheduler preserve the
    /// engine's conservation and timestamp invariants.
    #[test]
    fn engine_invariants_under_random_traces(
        seeds in prop::collection::vec(1u64..1000, 1..4),
        n_jobs in 2usize..8,
    ) {
        use threesigma_repro::cluster::{ClusterSpec, Engine, EngineConfig, JobKind, JobSpec, JobState};
        use threesigma_repro::core::sched::threesigma::{EstimateSource, SchedConfig, ThreeSigmaScheduler};
        use threesigma_repro::predict::PredictorConfig;

        let seed = seeds[0];
        let mut jobs = Vec::new();
        for i in 0..n_jobs {
            let x = seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64 * 0x85eb_ca6b);
            let submit = (x % 50) as f64;
            let tasks = 1 + (x >> 8) as u32 % 3;
            let duration = 10.0 + ((x >> 16) % 200) as f64;
            let kind = if x % 2 == 0 {
                JobKind::Slo { deadline: submit + duration * (1.4 + (x % 5) as f64 * 0.2) }
            } else {
                JobKind::BestEffort
            };
            jobs.push(JobSpec::new(i as u64 + 1, submit, tasks, duration, kind));
        }
        let engine = Engine::new(
            ClusterSpec::uniform(2, 2),
            EngineConfig { cycle_interval: 5.0, drain: Some(4000.0), seed, ..EngineConfig::default() },
        );
        let mut sched = ThreeSigmaScheduler::new(
            SchedConfig::default(),
            EstimateSource::OraclePoint,
            PredictorConfig::default(),
        );
        let m = engine.run(&jobs, &mut sched).unwrap();
        prop_assert_eq!(m.outcomes.len(), jobs.len());
        let terminal = m.count(JobState::Completed)
            + m.count(JobState::Canceled)
            + m.count(JobState::Pending)
            + m.count(JobState::Running);
        prop_assert_eq!(terminal, jobs.len());
        for o in &m.outcomes {
            if o.state == JobState::Completed {
                let (s, f, rt) = (
                    o.start_time.unwrap(),
                    o.finish_time.unwrap(),
                    o.measured_runtime.unwrap(),
                );
                prop_assert!(s >= o.submit_time - 1e-9);
                prop_assert!((f - s - rt).abs() < 1e-6);
            }
        }
        prop_assert!(m.goodput_hours() <= 4.0 * m.end_time / 3600.0 + 1e-9);
    }

    /// The precomputed suffix-sum survival table agrees *bitwise* with the
    /// linear filter-and-sum scan it replaced — for raw, scaled, and
    /// conditioned distributions, at support points (both sides of each
    /// step) and at arbitrary query times.
    #[test]
    fn survival_table_matches_linear_scan(
        samples in prop::collection::vec(1.0f64..1e4, 2..200),
        queries in prop::collection::vec(-10.0f64..2e4, 1..20),
        factor in 1.0f64..3.0,
        elapsed_frac in 0.0f64..1.1,
    ) {
        let dist = RuntimeDistribution::from_samples(&samples, 40).unwrap();
        let base = DiscreteDist::from_distribution(&dist, 40);
        let dists = [
            base.clone(),
            base.scale(factor),
            base.condition(base.upper() * elapsed_frac),
        ];
        for d in &dists {
            let mut probes = queries.clone();
            for &(t, _) in d.points() {
                probes.extend([t, t - f64::EPSILON * t, t + f64::EPSILON * t]);
            }
            for t in probes {
                prop_assert_eq!(
                    d.survival(t).to_bits(),
                    d.survival_linear(t).to_bits(),
                    "survival({}) diverges from the linear scan", t
                );
                let cdf = d.cdf(t);
                prop_assert_eq!(
                    cdf.to_bits(),
                    (1.0 - d.survival_linear(t)).to_bits(),
                    "cdf({}) diverges from the linear scan", t
                );
            }
        }
    }

    /// Scaling a distribution scales its mean and survival support.
    #[test]
    fn scaling_is_linear(
        samples in prop::collection::vec(1.0f64..1e3, 1..50),
        factor in 1.0f64..3.0,
    ) {
        let dist = RuntimeDistribution::from_samples(&samples, 20).unwrap();
        let d = DiscreteDist::from_distribution(&dist, 20);
        let s = d.scale(factor);
        prop_assert!((s.mean() - d.mean() * factor).abs() < 1e-6 * (1.0 + s.mean()));
        prop_assert!((s.upper() - d.upper() * factor).abs() < 1e-9 * (1.0 + s.upper()));
        for t in [10.0, 100.0, 500.0] {
            prop_assert!((s.survival(t * factor) - d.survival(t)).abs() < 1e-9);
        }
    }
}
