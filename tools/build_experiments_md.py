#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from bench_output.txt plus hand-written commentary.

Run after `cargo bench --workspace 2>&1 | tee bench_output.txt`:

    python3 tools/build_experiments_md.py
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RAW = (ROOT / "bench_output.txt").read_text()


def section(banner_substr: str) -> str:
    """Extracts one harness's stdout block by its banner line (last match
    wins, so appended re-runs supersede earlier output)."""
    lines = RAW.splitlines()
    for i, line in reversed(list(enumerate(lines))):
        if banner_substr in line and "====" not in line:
            # Walk back to the banner top, forward to the [wrote ...] line.
            start = i - 1 if i > 0 and set(lines[i - 1]) <= {"="} else i
            out = []
            for l in lines[start:]:
                out.append(l)
                if l.startswith("[wrote"):
                    break
            return "\n".join(out).strip()
    return f"(section '{banner_substr}' not found — rerun cargo bench)"


HEADER = """# EXPERIMENTS — paper vs. measured

This file records, for every table and figure in the paper's evaluation,
what the paper reports and what this reproduction measures. The measured
blocks below are the verbatim output of the bench harnesses at the **quick**
scale (shortened traces, coarser cycles — see DESIGN.md), captured by

```sh
cargo bench --workspace 2>&1 | tee bench_output.txt
```

`THREESIGMA_BENCH_SCALE=paper` reruns everything at the paper's trace
lengths for tighter statistics; `cargo run -p threesigma-bench --bin report`
regenerates a machine-readable digest from `bench_results/*.json`.

**How to read the comparison.** Our substrate is a deterministic simulator
driven by synthetic traces regenerated from the paper's published summary
statistics — not the authors' physical cluster and proprietary traces — so
absolute numbers are not expected to match. What must (and does) match is
the *shape* of each result: which system wins, by roughly what factor, and
where crossovers fall. Quick-scale traces carry ~100 SLO jobs, so one job
≈ 1 percentage point of SLO miss; differences under ~3 points are noise at
this scale. Harness outputs also include a `waste(M-h)` column (machine
time destroyed by preemption) that the paper reports only qualitatively.

A structural note on the quick scale: the measurement window is cut off
30 min after the last arrival, so long jobs arriving near the end of a
2-hour trace are structurally unable to finish for *every* scheduler. This
adds a common SLO-miss floor (~10–20 % depending on workload) on top of
which the schedulers differentiate; at paper scale the floor shrinks with
the end-effect fraction.
"""

SECTIONS = [
    (
        "Fig. 2 — workload analyses",
        "Fig. 2",
        """**Paper.** Job runtimes are heavy-tailed in all three environments;
per-user and per-resources CoV distributions have large high-variability
(CoV > 1) fractions, more in HedgeFund and Mustang than Google; JVuPredict
estimates are mostly good but 8 % (Google) to ≥23 % (Mustang) are off by 2×
or more, Mustang pairing a large ±5 % spike with a fat positive tail, and
HedgeFund having the fewest accurate estimates.

**Measured.** Matches on every axis: off-by-≥2× is ≈8.6 % (Google),
≈27.6 % (HedgeFund, the worst), ≈22.7 % (Mustang); Mustang shows the
largest within-±5 % spike (≈42 % of jobs); runtime p99/p50 ratios exceed
an order of magnitude everywhere; high-CoV fractions are larger for
HedgeFund/Mustang than Google.""",
    ),
    (
        "Fig. 1 / Fig. 7 — headline comparison across workloads",
        "Fig. 7",
        """**Paper.** (Fig. 1 is the Google column.) 3Sigma outperforms
PointRealEst (18 % SLO miss, 4.0× worse than 3Sigma's ≈4.5 %) and Prio
(12 %, 2.3×) while approaching PointPerfEst; on HedgeFund and Mustang
3Sigma can slightly *beat* PointPerfEst, which knows each runtime but not
future arrivals. PointRealEst's misses stay high across workloads even when
most estimates are accurate (Mustang), because the mis-estimated tail
poisons its decisions.

**Measured.** Same ordering in every environment: PointRealEst misses
2–3× more SLO deadlines than 3Sigma; Prio lands between; 3Sigma tracks
PointPerfEst within noise in all three environments (quick-scale traces
are too small to resolve the paper's ≈1-point HedgeFund/Mustang
inversion). Prio pays in BE goodput/latency and wastes the most preempted
machine-time on Google/HedgeFund, matching §6.1's explanation. Mustang's
quick trace holds only ~13 SLO jobs (huge gangs), so its miss column moves
in ~8-point quanta and shares a sizeable end-of-window floor.""",
    ),
    (
        "Fig. 6 + Table 2 — real-fidelity cluster (RC256) vs simulation",
        "Fig. 6",
        """**Paper.** The same experiment on the physical 256-node cluster and
in simulation produces the same ordering with small absolute deltas
(Table 2: ≤2 % miss, ≈20–27 M-h goodput, ≈2–12 s BE latency).

**Measured.** Our RC-fidelity mode (runtime jitter + placement latency)
reproduces the agreement: identical system ordering on both "clusters",
SLO-miss deltas ≤2 points. Goodput and BE-latency deltas are larger in
relative terms than the paper's (tens of M-h / up to a few hundred seconds)
because a 2-hour quick-scale trace amplifies per-job noise; the orderings
are unaffected.""",
    ),
    (
        "Fig. 8 — attribution of benefit (ablations vs deadline slack)",
        "Fig. 8",
        """**Paper.** Every technique is needed: 3SigmaNoDist (point estimates,
OE handling kept) beats PointRealEst; 3SigmaNoOE (distributions only)
recovers most of the gap to PointPerfEst; 3SigmaNoAdapt over-tries
hopeless jobs and pays in BE goodput; miss rates fall as slack grows for
all systems.

**Measured.** Reproduced: every ablation lands between PointRealEst and
full 3Sigma, miss rates fall with slack for all systems, and
3SigmaNoAdapt shows the depressed BE goodput the paper attributes to
over-optimism. One shape difference: in our traces over-estimates (bimodal
sweep classes) dominate the error tail, so OE handling (NoDist vs
PointRealEst) contributes relatively more, and NoOE relatively less, than
in the paper's Fig. 8 — the *set* of needed techniques is the same, their
relative sizes shift with the error-profile mix.""",
    ),
    (
        "Fig. 9 — robustness to distribution perturbation",
        "Fig. 9",
        """**Paper.** With synthetic `N(runtime·(1+shift), runtime·CoV)`
distributions: using any distribution beats the point estimate (2× fewer
misses even at shift 0); narrower distributions win when the shift is
small; wider distributions hedge better when the centre is badly shifted.

**Measured.** The dominant effects reproduce sharply: at shift −50 % the
point estimate misses ≈48 % vs ≈7 % for CoV = 50 % (wide distributions
hedge), and distributions beat the point at almost every sweep point. The
paper's second-order effect — *narrow* beating *wide* inside ±20 % shift —
is within noise at quick scale (≈1–2 jobs); the first-order "wider wins as
|shift| grows" gradient is clearly visible along every row.""",
    ),
    (
        "Fig. 10 — sensitivity to load",
        "Fig. 10",
        """**Paper.** SLO miss rates grow with load for every system with the
relative ordering preserved; all systems increasingly sacrifice BE work;
the PointPerfEst–3Sigma BE-goodput gap widens with load as 3Sigma leaves
more headroom for uncertain runtimes.

**Measured.** Same shape: misses grow monotonically-ish with load for all
systems, PointRealEst stays worst by a wide margin, 3Sigma tracks
PointPerfEst, and Prio's BE goodput collapses as load grows (it preempts
BE work for SLO jobs regardless of slack — also visible in its waste
column).""",
    ),
    (
        "Fig. 11 — sensitivity to history sample count",
        "Fig. 11",
        """**Paper.** Capping the per-feature history at n samples: both
history-driven systems improve sharply from 5 to 25 samples; by 25 samples
3Sigma converges to PointPerfEst; 3Sigma beats PointRealEst at every n
and benefits more from added samples (it uses the whole distribution).

**Measured.** 3Sigma beats PointRealEst at every n and sits at
PointPerfEst's level. Deviation: our 3Sigma is already near-converged at
n = 5 — the synthetic (class, user) subgroups are cleaner than real trace
features, so a 5-sample histogram is already informative; PointRealEst
shows the paper's improve-with-n trend more visibly.""",
    ),
    (
        "Fig. 12 — scalability at 12,584 nodes",
        "Fig. 12",
        """**Paper.** At Google scale (12,583 nodes, 2000–4000 jobs/hour, load
0.95): 3σPredict lookups are negligible (≤14 ms); scheduling-cycle and
solver runtimes stay within the cycle budget; distribution-based
scheduling adds a moderate constant factor over point-based (more
constraint terms, same number of decision variables).

**Measured.** Predictor lookups are microseconds (mean ≈6 µs, max ≈4 ms —
well under the paper's 14 ms bound). Cycle and solver times remain
milliseconds even at 4000 jobs/hour, with Dist a small constant factor
above Point. Our absolute times are far below the paper's because the
equivalence-set MILP formulation is an order of magnitude smaller than
their per-node-partition encoding (see DESIGN.md) and the simulator has no
RPC overheads.""",
    ),
    (
        "Extension — design-knob ablations and the σ-padding heuristic",
        "Knob ablations",
        """**Not in the paper** (the paper states the knobs exist; DESIGN.md
commits us to quantifying them). Findings: *preemption* is the single most
important mechanism (disabling it roughly doubles the miss rate while
zeroing waste); very short plan-ahead windows trade BE goodput for SLO
haste; very long windows and wide slots slow the solver without improving
misses; the MILP solver budget matters little beyond a few ms at this
scale (warm start + rounding find good incumbents early). The §2.2
"stochastic scheduler" heuristic (point + 1σ) is *worse* than the raw
point estimate under deadline-driven utility: padding exaggerates
over-estimation, so more jobs look hopeless and are abandoned — consistent
with the paper's remark that such heuristics "help, but do not eliminate
the problem" only in the under-estimate direction.""",
    ),
]

FOOTER = """
## Table 1 — systems compared

Implemented exactly as the paper's Table 1 via `SchedulerKind`:
`ThreeSigma` (real distributions + adaptive OE), `PointPerfEst` (perfect
points, no OE), `PointRealEst` (3σPredict points, no OE), `Prio`
(runtime-unaware priority), plus the §6.2 ablations (`ThreeSigmaNoDist`,
`ThreeSigmaNoOE`, `ThreeSigmaNoAdapt`) and the extension baseline
`PointPaddedEst`.

## Figs. 3 & 5 — worked example

Reproduced exactly (not statistically) by `examples/worked_example.rs` and
unit tests (`utility::tests::expected_utility_matches_fig5_*`,
`sched::threesigma::tests::worked_example_*`): with U(0,10) runtimes the
scheduler runs the SLO job first; with U(2.5,7.5) it safely lets the BE
job go first and both finish within the 15-minute deadline — the
distribution, not the (identical) mean, determines the order.

## Reproduction verdict

Every table and figure of the evaluation is regenerated by a dedicated
harness. All first-order claims reproduce: distribution-based scheduling
closes most of the gap between a state-of-the-art point-estimate scheduler
and a perfect-knowledge oracle, simultaneously improving SLO attainment
and goodput, with every mitigation technique contributing and overheads
that scale to >12k nodes. Second-order deviations (relative ablation
sizes, the narrow-vs-wide crossover inside ±20 % shift, sample-count
convergence speed) trace to the synthetic error-profile mix and
quick-scale statistics, and are noted in the sections above.
"""


def main() -> None:
    parts = [HEADER]
    for title, banner, commentary in SECTIONS:
        parts.append(f"\n---\n\n## {title}\n\n{commentary}\n")
        parts.append("```text\n" + section(banner) + "\n```\n")
    parts.append(FOOTER)
    (ROOT / "EXPERIMENTS.md").write_text("".join(parts))
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    main()
