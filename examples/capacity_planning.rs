//! Capacity planning with the 3Sigma simulator.
//!
//! A downstream use the paper's introduction motivates: given a production
//! workload with deadlines, how small a cluster can run it while keeping
//! the SLO miss rate near its floor? This example replays the same workload
//! against shrinking clusters under 3Sigma and under the runtime-unaware
//! priority scheduler — distribution-based scheduling sustains the SLO
//! target on fewer machines (i.e. buys real capacity).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use threesigma_repro::cluster::ClusterSpec;
use threesigma_repro::core::driver::{run, Experiment, SchedulerKind};
use threesigma_repro::workload::{generate, Environment, WorkloadConfig};

fn main() {
    // A fixed 90-minute workload sized for a 256-node cluster at load 1.3.
    let config = WorkloadConfig::e2e(Environment::Google, 7)
        .with_duration(1.5 * 3600.0)
        .with_load(1.3);
    let trace = generate(&config);
    println!(
        "workload: {} jobs, {:.0} machine-hours submitted\n",
        trace.jobs.len(),
        trace.offered_load(256, 1.5 * 3600.0) * 256.0 * 1.5
    );

    let miss = |kind: SchedulerKind, nodes_per_rack: u32| -> f64 {
        let mut exp = Experiment::paper_sc256().with_cycle(15.0);
        exp.cluster = ClusterSpec::uniform(8, nodes_per_rack);
        exp.engine.drain = Some(3600.0);
        run(kind, &trace, &exp)
            .expect("simulation runs")
            .metrics
            .slo_miss_pct()
    };

    // Each system's own 320-node miss rate is its floor (some late long
    // jobs are structurally doomed by the measurement window); capacity is
    // adequate while a smaller cluster stays within +5 points of the floor.
    let systems = [SchedulerKind::ThreeSigma, SchedulerKind::Prio];
    let baseline: Vec<f64> = systems.iter().map(|&k| miss(k, 40)).collect();
    println!(
        "{:>12} {:>14} {:>14}   (SLO miss %; floor: {:.1}% / {:.1}%)",
        "nodes", "3Sigma", "Prio", baseline[0], baseline[1]
    );

    let mut smallest = [None::<u32>; 2];
    for nodes_per_rack in [40u32, 34, 30, 26, 22, 18] {
        let nodes = nodes_per_rack * 8;
        let mut row = format!("{nodes:>12}");
        for (i, &kind) in systems.iter().enumerate() {
            let m = miss(kind, nodes_per_rack);
            row.push_str(&format!(" {m:>13.1}%"));
            if m <= baseline[i] + 5.0 {
                smallest[i] = Some(smallest[i].map_or(nodes, |s: u32| s.min(nodes)));
            }
        }
        println!("{row}");
    }

    println!();
    match (smallest[0], smallest[1]) {
        (Some(a), Some(b)) if a < b => println!(
            "3Sigma absorbs the workload down to {a} nodes; the priority\n\
             scheduler degrades below {b} — runtime distributions bought {} machines.",
            b - a
        ),
        (Some(a), Some(b)) => {
            println!("3Sigma holds its floor down to {a} nodes, Prio down to {b}.")
        }
        (Some(a), None) => println!(
            "Only 3Sigma stays near its floor (down to {a} nodes); the priority\n\
             scheduler degrades everywhere."
        ),
        _ => println!("Both systems degrade at every size; raise the tolerance."),
    }
}
