//! Tour of 3σPredict: histories, experts, and the estimate-error profile.
//!
//! Replays a generated trace through the predictor the way the cluster
//! manager would (predict at submission, observe at completion), then
//! prints which features/estimators won and the resulting Fig. 2(d)-style
//! error histogram for each environment.
//!
//! ```sh
//! cargo run --release --example predictor_tour
//! ```

use std::collections::HashMap;

use threesigma_repro::histogram::Dist;
use threesigma_repro::predict::{AttributeSource, Predictor, PredictorConfig};
use threesigma_repro::workload::analysis::{
    error_histogram, estimate_error_pct, fraction_off_by_factor,
};
use threesigma_repro::workload::{generate, Environment, WorkloadConfig};

/// Adapter from cluster attributes to the predictor's attribute trait.
struct Attrs<'a>(&'a threesigma_repro::cluster::Attributes);

impl AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

fn main() {
    for env in [
        Environment::Google,
        Environment::HedgeFund,
        Environment::Mustang,
    ] {
        let config = WorkloadConfig {
            duration: 3.0 * 3600.0,
            pretrain_jobs: 4000,
            ..WorkloadConfig::e2e(env, 7)
        };
        let trace = generate(&config);

        let mut predictor = Predictor::new(PredictorConfig::default());
        for job in &trace.pretrain {
            predictor.observe(&Attrs(&job.attributes), job.duration);
        }

        let mut errors = Vec::new();
        let mut pairs = Vec::new();
        let mut winners: HashMap<(&str, &str), usize> = HashMap::new();
        let mut sample_dist = None;
        for job in &trace.jobs {
            if let Some(p) = predictor.predict(&Attrs(&job.attributes)) {
                errors.push(estimate_error_pct(p.point, job.duration));
                pairs.push((p.point, job.duration));
                *winners.entry((p.feature, p.estimator.name())).or_default() += 1;
                if sample_dist.is_none() && p.history >= 20 {
                    sample_dist = Some((job.attributes.clone(), p.distribution.clone()));
                }
            }
            // The scheduler records the measured runtime on completion;
            // here completion order ≈ submission order is close enough.
            predictor.observe(&Attrs(&job.attributes), job.duration);
        }

        println!("\n=== {} ===", env.name());
        println!(
            "predicted {} of {} jobs; off by ≥2x: {:.1} % (paper: 8–23 %)",
            errors.len(),
            trace.jobs.len(),
            100.0 * fraction_off_by_factor(&pairs, 2.0),
        );

        let hist = error_histogram(&errors);
        println!("estimate-error histogram (Fig. 2d):");
        for (center, pct) in &hist.buckets {
            println!(
                "  {center:>5}%  {:>5.1}%  {}",
                pct,
                "#".repeat((*pct).round() as usize)
            );
        }
        println!(
            "   tail  {:>5.1}%  {}",
            hist.tail_pct,
            "#".repeat(hist.tail_pct.round() as usize)
        );

        let mut top: Vec<_> = winners.into_iter().collect();
        top.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        println!("winning experts (feature : estimator):");
        for ((feature, estimator), n) in top.into_iter().take(5) {
            println!("  {feature:<16} : {estimator:<10} won {n} jobs");
        }

        if let Some((attrs, dist)) = sample_dist {
            println!(
                "example distribution for user={} job={}: p10={:.0}s p50={:.0}s p90={:.0}s",
                attrs.get("user").unwrap_or("?"),
                attrs.get("job_name").unwrap_or("?"),
                dist.quantile(0.1),
                dist.quantile(0.5),
                dist.quantile(0.9),
            );
        }
    }
}
