//! The paper's worked example (§2.3, Figs. 3 and 5), end to end.
//!
//! Two jobs arrive simultaneously on a single-node cluster: an SLO job with
//! a 15-minute deadline and a latency-sensitive best-effort job. Both have
//! mean runtime 5 minutes — but the *distribution* decides the right order:
//!
//! * Scenario 1: runtimes ~ U(0, 10) min — scheduling BE first risks a
//!   12.5 % deadline miss, so the SLO job must go first.
//! * Scenario 2: runtimes ~ U(2.5, 7.5) min — even back-to-back worst cases
//!   fit the deadline, so the BE job can safely go first.
//!
//! A point-estimate scheduler sees "5 minutes" in both scenarios and cannot
//! tell them apart.
//!
//! ```sh
//! cargo run --release --example worked_example
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use threesigma_repro::cluster::{
    ClusterSpec, Engine, EngineConfig, JobId, JobKind, JobSpec, Metrics,
};
use threesigma_repro::core::sched::threesigma::{EstimateSource, SchedConfig, ThreeSigmaScheduler};
use threesigma_repro::core::{DiscreteDist, UtilityCurve};
use threesigma_repro::histogram::{RuntimeDistribution, Uniform};
use threesigma_repro::predict::PredictorConfig;

const MIN: f64 = 60.0;

fn run_scenario(name: &str, lo_min: f64, hi_min: f64) -> Metrics {
    let dist = RuntimeDistribution::Uniform(Uniform::new(lo_min * MIN, hi_min * MIN));

    // Print the expected-utility curve of the SLO job (Fig. 5(e)/(f)).
    let d = DiscreteDist::from_distribution(&dist, 64);
    let curve = UtilityCurve::SloStep {
        weight: 1.0,
        deadline: 15.0 * MIN,
    };
    println!("\n=== {name}: runtimes ~ U({lo_min}, {hi_min}) min ===");
    println!("SLO job's expected utility by start time (Fig. 5e/f):");
    for start_min in [0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0] {
        let eu = curve.expected(start_min * MIN, &d);
        let bar = "#".repeat((eu * 40.0).round() as usize);
        println!("  start {start_min:>4.1} min  E[U] = {eu:4.2}  {bar}");
    }

    // Run it for real through the MILP scheduler.
    let mut estimates = HashMap::new();
    estimates.insert(JobId(1), dist.clone());
    estimates.insert(JobId(2), dist);
    let mut scheduler = ThreeSigmaScheduler::new(
        SchedConfig {
            slot_width: 2.5 * MIN,
            plan_slots: 8,
            ..SchedConfig::default()
        },
        EstimateSource::Injected(Arc::new(estimates)),
        PredictorConfig::default(),
    );
    // Both actually run for exactly 5 minutes (the shared mean).
    let jobs = vec![
        JobSpec::new(
            1,
            0.0,
            1,
            5.0 * MIN,
            JobKind::Slo {
                deadline: 15.0 * MIN,
            },
        )
        .with_weight(10.0),
        JobSpec::new(2, 0.0, 1, 5.0 * MIN, JobKind::BestEffort),
    ];
    let engine = Engine::new(
        ClusterSpec::uniform(1, 1),
        EngineConfig {
            cycle_interval: 2.0,
            drain: Some(3600.0),
            seed: 7,
            ..EngineConfig::default()
        },
    );
    let metrics = engine.run(&jobs, &mut scheduler).expect("runs");
    let slo = &metrics.outcomes[0];
    let be = &metrics.outcomes[1];
    println!(
        "schedule chosen : {} first (SLO start {:.0}s, BE start {:.0}s)",
        if slo.start_time < be.start_time {
            "SLO"
        } else {
            "BE"
        },
        slo.start_time.unwrap(),
        be.start_time.unwrap(),
    );
    println!(
        "SLO deadline    : {} (finished at {:.0}s, deadline 900s)",
        if slo.deadline_met() == Some(true) {
            "met"
        } else {
            "MISSED"
        },
        slo.finish_time.unwrap(),
    );
    println!("BE latency      : {:.0}s", be.latency().unwrap());
    metrics
}

fn main() {
    let s1 = run_scenario("Scenario 1", 0.0, 10.0);
    let s2 = run_scenario("Scenario 2", 2.5, 7.5);

    let be1 = s1.outcomes[1].latency().unwrap();
    let be2 = s2.outcomes[1].latency().unwrap();
    println!("\nDistribution awareness at work:");
    println!("  scenario 1 protects the deadline (BE waits, latency {be1:.0}s);");
    println!("  scenario 2 exploits the narrow distribution (BE latency {be2:.0}s).");
    assert!(
        be2 < be1,
        "scenario 2 should deliver the BE job sooner than scenario 1"
    );
}
