//! Regenerates the differential solver-oracle fixture corpus.
//!
//! Runs a handful of small, fully deterministic scheduling scenarios with
//! `record_models` enabled, dedupes the per-cycle MILP dumps, and writes
//! them to `crates/milp/tests/fixtures/*.milp` in the bit-exact text
//! format. The `solver_oracle` integration test replays every fixture
//! through all three solver tiers and the incremental wrapper.
//!
//! ```sh
//! cargo run --release --example dump_milp_fixtures
//! ```
//!
//! The corpus is checked in; re-run this only when the model compiler
//! changes shape (new constraint classes, different option enumeration).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use threesigma_repro::cluster::{ClusterSpec, Engine, EngineConfig, JobId, JobKind, JobSpec};
use threesigma_repro::core::sched::threesigma::{
    CycleBudget, EstimateSource, SchedConfig, ThreeSigmaScheduler,
};
use threesigma_repro::histogram::{LogNormal, RuntimeDistribution, Uniform};
use threesigma_repro::predict::PredictorConfig;

/// FNV-1a, for content-addressed dedup of the dumped models.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Scenario {
    name: &'static str,
    racks: usize,
    nodes_per_rack: u32,
    config: SchedConfig,
    source: EstimateSource,
    jobs: Vec<JobSpec>,
}

fn mixed_injected(seed_jobs: usize) -> (Vec<JobSpec>, EstimateSource) {
    // Interleaved SLO deadlines and best-effort gangs with injected
    // runtime *distributions*, so demand rows carry non-trivial survival
    // coefficients and preemption binaries appear.
    let mut jobs = Vec::new();
    let mut estimates = HashMap::new();
    for i in 0..seed_jobs as u64 {
        let submit = i as f64 * 7.0;
        let (kind, tasks, duration) = if i % 3 == 0 {
            (
                JobKind::Slo {
                    deadline: submit + 900.0,
                },
                2,
                240.0,
            )
        } else {
            (
                JobKind::BestEffort,
                1 + (i % 4) as u32,
                150.0 + 30.0 * (i % 5) as f64,
            )
        };
        let spec = JobSpec::new(i + 1, submit, tasks, duration, kind);
        let dist = if i % 2 == 0 {
            RuntimeDistribution::Uniform(Uniform::new(duration * 0.5, duration * 1.5))
        } else {
            RuntimeDistribution::LogNormal(LogNormal::new(duration.ln(), 0.4))
        };
        estimates.insert(JobId(i + 1), dist);
        jobs.push(spec);
    }
    (jobs, EstimateSource::Injected(Arc::new(estimates)))
}

fn scenarios() -> Vec<Scenario> {
    let record = SchedConfig {
        record_models: true,
        ..SchedConfig::default()
    };
    let (mixed_jobs, mixed_source) = mixed_injected(12);
    vec![
        Scenario {
            name: "contended-oracle",
            racks: 2,
            nodes_per_rack: 3,
            config: record.clone(),
            source: EstimateSource::OraclePoint,
            jobs: (0..10)
                .map(|i| {
                    JobSpec::new(
                        i + 1,
                        i as f64 * 4.0,
                        1 + (i % 3) as u32,
                        200.0,
                        JobKind::BestEffort,
                    )
                })
                .collect(),
        },
        Scenario {
            name: "mixed-injected",
            racks: 3,
            nodes_per_rack: 2,
            config: record.clone(),
            source: mixed_source,
            jobs: mixed_jobs,
        },
        Scenario {
            name: "degraded-ladder",
            racks: 1,
            nodes_per_rack: 4,
            config: SchedConfig {
                cycle_budget: CycleBudget::WorkUnits(40),
                ..record.clone()
            },
            source: EstimateSource::OraclePoint,
            jobs: (0..14)
                .map(|i| JobSpec::new(i + 1, i as f64 * 2.0, 1, 120.0, JobKind::BestEffort))
                .collect(),
        },
        Scenario {
            name: "slo-deadlines",
            racks: 2,
            nodes_per_rack: 2,
            config: record,
            source: EstimateSource::OraclePoint,
            jobs: (0..8)
                .map(|i| {
                    let submit = i as f64 * 10.0;
                    JobSpec::new(
                        i + 1,
                        submit,
                        2,
                        300.0,
                        JobKind::Slo {
                            deadline: submit + 1200.0,
                        },
                    )
                })
                .collect(),
        },
    ]
}

fn main() {
    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/milp/tests/fixtures");
    std::fs::create_dir_all(&out_dir).expect("create fixture dir");

    let mut seen = std::collections::BTreeSet::new();
    let mut kept: Vec<(String, String)> = Vec::new();
    for sc in scenarios() {
        let mut sched = ThreeSigmaScheduler::new(sc.config, sc.source, PredictorConfig::default());
        let engine = Engine::new(
            ClusterSpec::uniform(sc.racks, sc.nodes_per_rack),
            EngineConfig {
                cycle_interval: 20.0,
                ..EngineConfig::default()
            },
        );
        engine.run(&sc.jobs, &mut sched).expect("scenario runs");
        let mut from_scenario = 0;
        for (cycle, text) in sched.models().iter().enumerate() {
            // Dedup identical cycles (steady state repeats itself), skip
            // the degenerate empty model, and bound the per-scenario
            // contribution so every scenario shape is represented.
            let digest = fnv1a(text.as_bytes());
            if text.lines().count() <= 5 || !seen.insert(digest) {
                continue;
            }
            kept.push((
                format!("{}_{cycle:02}_{digest:016x}.milp", sc.name),
                text.clone(),
            ));
            from_scenario += 1;
            if from_scenario >= 8 {
                break;
            }
        }
    }
    for stale in std::fs::read_dir(&out_dir).expect("read fixture dir") {
        let p = stale.expect("dir entry").path();
        if p.extension().is_some_and(|e| e == "milp") {
            std::fs::remove_file(p).expect("remove stale fixture");
        }
    }
    let mut total = 0usize;
    for (name, text) in &kept {
        total += text.len();
        std::fs::write(out_dir.join(name), text).expect("write fixture");
    }
    println!(
        "wrote {} fixtures ({} bytes) to {}",
        kept.len(),
        total,
        out_dir.display()
    );
}
