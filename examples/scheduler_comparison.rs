//! Compare all Table 1 scheduling systems on one workload.
//!
//! Reproduces the flavour of Fig. 1/Fig. 6 at example scale: a one-hour
//! Google-like trace on the simulated 256-node cluster, all four headline
//! systems plus the §6.2 ablations.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison [hours] [env]
//! # env ∈ {google, hedgefund, mustang}
//! ```

use threesigma_repro::core::driver::{run, Experiment, SchedulerKind};
use threesigma_repro::workload::{generate, Environment, WorkloadConfig};

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let env = match std::env::args().nth(2).as_deref() {
        Some("hedgefund") => Environment::HedgeFund,
        Some("mustang") => Environment::Mustang,
        _ => Environment::Google,
    };

    let config = WorkloadConfig::e2e(env, 42).with_duration(hours * 3600.0);
    let trace = generate(&config);
    println!(
        "{} workload: {} jobs over {hours} h, offered load {:.2}\n",
        env.name(),
        trace.jobs.len(),
        trace.offered_load(config.cluster_nodes, config.duration),
    );
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "system", "SLO miss %", "SLO gp (M-h)", "BE gp (M-h)", "BE lat (s)", "preempts"
    );

    let systems = [
        SchedulerKind::ThreeSigma,
        SchedulerKind::ThreeSigmaNoDist,
        SchedulerKind::ThreeSigmaNoOE,
        SchedulerKind::ThreeSigmaNoAdapt,
        SchedulerKind::PointPerfEst,
        SchedulerKind::PointRealEst,
        SchedulerKind::Prio,
    ];
    let experiment = Experiment::paper_sc256();
    for kind in systems {
        let result = run(kind, &trace, &experiment).expect("simulation runs");
        let m = &result.metrics;
        println!(
            "{:<14} {:>10.1} {:>14.1} {:>14.1} {:>12.0} {:>12}",
            kind.name(),
            m.slo_miss_pct(),
            m.slo_goodput_hours(),
            m.be_goodput_hours(),
            m.mean_be_latency().unwrap_or(f64::NAN),
            m.preemptions,
        );
    }
    println!(
        "\nExpected shape (paper Figs. 1/6): 3Sigma ≈ PointPerfEst on SLO miss,\n\
         both well below PointRealEst and Prio; Prio pays in BE goodput/latency."
    );
}
