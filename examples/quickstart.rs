//! Quickstart: generate a workload, run 3Sigma, read the metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use threesigma_repro::core::driver::{run, Experiment, SchedulerKind};
use threesigma_repro::workload::{generate, Environment, WorkloadConfig};

fn main() {
    // A 30-minute Google-like workload on the paper's 256-node cluster:
    // half SLO jobs (deadline slack 20–80 %), half latency-sensitive
    // best-effort jobs, offered load 1.4.
    let config = WorkloadConfig::e2e(Environment::Google, 42).with_duration(1800.0);
    let trace = generate(&config);
    println!(
        "generated {} jobs (+{} pre-training) at offered load {:.2}",
        trace.jobs.len(),
        trace.pretrain.len(),
        trace.offered_load(256, config.duration),
    );

    // The full 3Sigma system: 3σPredict distributions + adaptive
    // over-estimate handling + MILP packing with preemption.
    let experiment = Experiment::paper_sc256();
    let result = run(SchedulerKind::ThreeSigma, &trace, &experiment).expect("simulation runs");

    let m = &result.metrics;
    println!("SLO miss rate     : {:>6.1} %", m.slo_miss_pct());
    println!(
        "goodput           : {:>6.1} machine-hours",
        m.goodput_hours()
    );
    println!(
        "  SLO / BE        : {:>6.1} / {:.1}",
        m.slo_goodput_hours(),
        m.be_goodput_hours()
    );
    if let Some(lat) = m.mean_be_latency() {
        println!("mean BE latency   : {:>6.0} s", lat);
    }
    println!("jobs completed    : {:>6.1} %", m.completion_rate() * 100.0);
    println!("preemptions       : {:>6}", m.preemptions);
    println!(
        "scheduling cycles : {:>6} (mean latency {:.1} ms)",
        m.cycles,
        result
            .timings
            .iter()
            .map(|t| t.total.as_secs_f64() * 1e3)
            .sum::<f64>()
            / result.timings.len().max(1) as f64
    );
}
