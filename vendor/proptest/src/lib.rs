//! Vendored minimal `proptest` — deterministic randomized property testing.
//!
//! Offline replacement for the subset of the proptest API this workspace
//! uses: the [`proptest!`] macro, range strategies over `f64`/integers,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case panics with the assertion message (the
//!   sampled inputs are printed by the failure itself where the assertion
//!   message includes them);
//! * cases are seeded deterministically from the test's module path and
//!   name, so failures are reproducible run-to-run;
//! * the case count comes from `PROPTEST_CASES` (default 32).

use std::ops::Range;

/// Deterministic generator for property tests (xoshiro256++ seeded by
/// FNV-1a of the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator seeded from a test identifier.
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 32).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (subset: [`collection::vec`]).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait IntoSizeRange {
        /// Converts to a half-open `[lo, hi)` length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Creates a `Vec` strategy from an element strategy and a size range.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs [`cases()`] times with a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($p:pat_param in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cases = $crate::cases();
                let mut __rng =
                    $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    let _ = __case;
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new("bounds");
        for _ in 0..1000 {
            let f = crate::Strategy::sample(&(1.5f64..9.5), &mut rng);
            assert!((1.5..9.5).contains(&f));
            let u = crate::Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&u));
            let v = crate::Strategy::sample(&prop::collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::Strategy::sample(&prop::collection::vec(0u32..9, 3), &mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new("x");
        let mut b = crate::TestRng::new("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn macro_compiles_and_runs(
            mut values in prop::collection::vec(0.0f64..10.0, 1..20),
            k in 1u64..5,
        ) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(!values.is_empty());
            prop_assert!((1..5).contains(&k));
            prop_assert_eq!(values.len(), values.len());
        }
    }
}
