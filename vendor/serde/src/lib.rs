//! Vendored minimal `serde` — value-tree serialization for the workspace.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the external crates it needs. This crate replaces `serde` with a
//! deliberately small design: instead of the full serde data model
//! (`Serializer`/`Deserializer` visitors), types convert to and from a JSON
//! [`Value`] tree. The `serde_json` path crate then renders/parses that tree
//! as text. Derived impls (`#[derive(Serialize, Deserialize)]`, via the
//! `derive` feature and the vendored `serde_derive` proc-macro) produce the
//! same JSON shapes as real serde's defaults:
//!
//! * named structs → objects, fields in declaration order,
//! * newtype structs → the inner value (transparent),
//! * tuple structs → arrays; unit structs → null,
//! * unit enum variants → `"Name"`,
//! * newtype variants → `{"Name": inner}`,
//! * struct variants → `{"Name": {..}}`; tuple variants → `{"Name": [..]}`.

use std::collections::VecDeque;
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// An ordered string-keyed map (preserves insertion order, like
/// `serde_json`'s `preserve_order` feature).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key/value pair (appends; callers never insert duplicates).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.entries.push((key.into(), value));
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value tree — the serialization data model of this vendored serde.
///
/// Integers keep their own variants so `u64`/`i64` round-trip exactly
/// (JSON text of a 64-bit id must not go through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact u64).
    UInt(u64),
    /// Negative integer (exact i64).
    Int(i64),
    /// Floating-point number (may be non-finite in memory).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Exact unsigned view, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Exact signed view, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", value.kind())))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, got {}",
                        value.kind()
                    ))
                })?;
                <$t>::try_from(u)
                    .map_err(|_| Error::custom(format!("integer {u} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", value.kind()))
                })?;
                <$t>::try_from(i)
                    .map_err(|_| Error::custom(format!("integer {i} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", value.kind())))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

/// `&'static str` deserialization leaks the parsed string. Only used for
/// static catalog data (e.g. job-class names), which is parsed a bounded
/// number of times per process.
impl Deserialize for &'static str {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = String::deserialize(value)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize(value).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(value)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, got {}", value.kind()))
                })?;
                let expect = [$($idx),+].len();
                if arr.len() != expect {
                    return Err(Error::custom(format!(
                        "expected tuple of {expect}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($name::deserialize(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---- support for derived impls ---------------------------------------------

/// Helpers the derive macro expands to. Not part of the public API surface.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    /// Deserializes one named struct field; a missing key is treated as
    /// `null` (so `Option` fields tolerate omission, everything else reports
    /// a missing-field error).
    pub fn field<T: Deserialize>(obj: &Map, key: &str, ty: &str) -> Result<T, Error> {
        match obj.get(key) {
            Some(v) => T::deserialize(v).map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
            None => T::deserialize(&Value::Null)
                .map_err(|_| Error::custom(format!("{ty}: missing field `{key}`"))),
        }
    }

    /// Deserializes one positional element of a tuple struct/variant.
    pub fn element<T: Deserialize>(arr: &[Value], idx: usize, ty: &str) -> Result<T, Error> {
        let v = arr
            .get(idx)
            .ok_or_else(|| Error::custom(format!("{ty}: missing element {idx}")))?;
        T::deserialize(v).map_err(|e| Error::custom(format!("{ty}[{idx}]: {e}")))
    }

    /// The object payload of an externally-tagged enum variant.
    pub fn variant_payload<'v>(value: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
        match value {
            Value::String(name) => Ok((name, &Value::Null)),
            Value::Object(m) if m.len() == 1 => {
                let (name, payload) = m.iter().next().expect("len checked");
                Ok((name, payload))
            }
            other => Err(Error::custom(format!(
                "{ty}: expected variant string or single-key object, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        let big: u64 = u64::MAX - 1;
        let v = big.serialize();
        assert_eq!(u64::deserialize(&v).unwrap(), big);
    }

    #[test]
    fn option_none_is_null_and_tolerates_missing() {
        let none: Option<f64> = None;
        assert!(none.serialize().is_null());
        let m = Map::new();
        let back: Option<f64> = __private::field(&m, "missing", "T").unwrap();
        assert_eq!(back, None);
        let err = __private::field::<f64>(&m, "missing", "T").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn tuples_and_arrays_round_trip() {
        let t = (1usize, "x".to_string(), 2.5f64);
        let back: (usize, String, f64) = Deserialize::deserialize(&t.serialize()).unwrap();
        assert_eq!(back, t);
        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = Deserialize::deserialize(&a.serialize()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn negative_integers_keep_sign() {
        let v = (-5i64).serialize();
        assert_eq!(i64::deserialize(&v).unwrap(), -5);
        assert!(u64::deserialize(&v).is_err());
    }
}
