//! Vendored minimal `proc-macro2` — a standalone Rust lexer.
//!
//! Implements the subset of the real crate's API that `syn` (also vendored)
//! and `threesigma-lint` use: `TokenStream: FromStr` lexing Rust source into
//! the four-variant [`TokenTree`] tree, with delimiter-matched [`Group`]s and
//! line/column [`Span`]s. Fidelity notes:
//!
//! * Spans carry only start line/column (1-based line, 0-based column) — no
//!   source map, no join/resolution semantics.
//! * Comments are stripped, like the real lexer, but are additionally
//!   collected on the side and exposed through [`lex_comments`] so the lint
//!   can find `// lint: sorted` justification comments. Doc comments are
//!   *not* converted into `#[doc]` attributes; they are treated as plain
//!   comments (the lint has no use for doc text).
//! * [`TokenStream::trees`] is an extension (the real crate only exposes
//!   iteration); the lint's pattern matchers want slice access.
//! * Literal carries its raw text only ([`Literal::to_string`]); there are
//!   no typed constructors.

use std::fmt;
use std::str::FromStr;

/// A region of source code: 1-based line, 0-based UTF-8 column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 0-based column (in chars) of the token's first character.
    pub column: usize,
}

impl Span {
    /// A span pointing at nothing in particular (line 0).
    pub fn call_site() -> Self {
        Span { line: 0, column: 0 }
    }
}

/// Delimiter of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
    /// Invisible delimiters (never produced by this lexer).
    None,
}

/// Whether a punctuation character is immediately followed by another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Followed by whitespace or a non-punct token (`+ x`).
    Alone,
    /// Glued to the next punct (`+=`, `::`).
    Joint,
}

/// A delimited token sequence.
#[derive(Debug, Clone)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// Creates a group from parts.
    pub fn new(delimiter: Delimiter, stream: TokenStream) -> Self {
        Group {
            delimiter,
            stream,
            span: Span::call_site(),
        }
    }

    /// The group's delimiter kind.
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    pub fn stream(&self) -> TokenStream {
        self.stream.clone()
    }

    /// Slice access to the inner tokens (extension; avoids a clone).
    pub fn trees(&self) -> &[TokenTree] {
        self.stream.trees()
    }

    /// Span of the opening delimiter.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A word: identifier or keyword.
#[derive(Debug, Clone)]
pub struct Ident {
    sym: String,
    span: Span,
}

impl Ident {
    /// Creates an identifier with a call-site span.
    pub fn new(sym: &str, span: Span) -> Self {
        Ident {
            sym: sym.to_string(),
            span,
        }
    }

    /// The identifier's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sym)
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.sym == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.sym == *other
    }
}

/// A single punctuation character.
#[derive(Debug, Clone)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// The character.
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Whether the next token is a glued punct.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The punct's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A literal: number, string, char, or byte string, kept as raw text.
#[derive(Debug, Clone)]
pub struct Literal {
    repr: String,
    span: Span,
}

impl Literal {
    /// The literal's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A single token or delimited subtree.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited sequence.
    Group(Group),
    /// A word.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The token's span (a group's opening delimiter).
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }
}

/// A sequence of [`TokenTree`]s.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    trees: Vec<TokenTree>,
}

impl TokenStream {
    /// The empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Slice access to the top-level tokens (extension; see module docs).
    pub fn trees(&self) -> &[TokenTree] {
        &self.trees
    }
}

impl From<Vec<TokenTree>> for TokenStream {
    fn from(trees: Vec<TokenTree>) -> Self {
        TokenStream { trees }
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            match t {
                TokenTree::Group(g) => {
                    let (open, close) = match g.delimiter() {
                        Delimiter::Parenthesis => ("(", ")"),
                        Delimiter::Brace => ("{", "}"),
                        Delimiter::Bracket => ("[", "]"),
                        Delimiter::None => ("", ""),
                    };
                    write!(f, "{open}{}{close}", g.stream())?;
                }
                TokenTree::Ident(id) => write!(f, "{id}")?,
                TokenTree::Punct(p) => write!(f, "{}", p.as_char())?,
                TokenTree::Literal(l) => write!(f, "{l}")?,
            }
        }
        Ok(())
    }
}

/// Lexing failure: unbalanced delimiter or unterminated literal/comment.
#[derive(Debug, Clone)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Line the failure was detected on.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

impl FromStr for TokenStream {
    type Err = LexError;

    fn from_str(src: &str) -> Result<Self, LexError> {
        let mut lexer = Lexer::new(src);
        let trees = lexer.lex_until(None)?;
        Ok(TokenStream { trees })
    }
}

/// A comment stripped during lexing, with the line it started on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: usize,
    /// Comment text including the leading `//` or `/* ... */` markers.
    pub text: String,
}

/// Lexes `src` and returns only its comments (extension; the lint scans
/// these for `// lint: sorted` justification markers). Lexing errors yield
/// an empty list — the caller will surface them via `TokenStream::from_str`.
pub fn lex_comments(src: &str) -> Vec<Comment> {
    let mut lexer = Lexer::new(src);
    match lexer.lex_until(None) {
        Ok(_) => lexer.comments,
        Err(_) => Vec::new(),
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
    comments: Vec<Comment>,
}

const PUNCT_CHARS: &str = "~!@#$%^&*-=+|;:,<.>/?'";

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        // Strip a shebang line (`#!...` not followed by `[`) like rustc.
        let src = if src.starts_with("#!") && !src[2..].trim_start().starts_with('[') {
            src.split_once('\n').map_or("", |(_, rest)| rest)
        } else {
            src
        };
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            column: 0,
            comments: Vec::new(),
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            column: self.column,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 0;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn err(&self, message: &str) -> LexError {
        LexError {
            message: message.to_string(),
            line: self.line,
        }
    }

    /// Lexes until the closing delimiter `until` (or end of input when
    /// `None`), consuming the closer.
    fn lex_until(&mut self, until: Option<char>) -> Result<Vec<TokenTree>, LexError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('/') if self.peek2() == Some('/') => self.line_comment(),
                    Some('/') if self.peek2() == Some('*') => self.block_comment()?,
                    _ => break,
                }
            }
            let span = self.span();
            let Some(c) = self.peek() else {
                return match until {
                    None => Ok(out),
                    Some(close) => {
                        Err(self.err(&format!("expected `{close}` before end of input")))
                    }
                };
            };
            if let Some(close) = until {
                if c == close {
                    self.bump();
                    return Ok(out);
                }
            }
            match c {
                '(' | '[' | '{' => {
                    self.bump();
                    let (delim, close) = match c {
                        '(' => (Delimiter::Parenthesis, ')'),
                        '[' => (Delimiter::Bracket, ']'),
                        _ => (Delimiter::Brace, '}'),
                    };
                    let inner = self.lex_until(Some(close))?;
                    out.push(TokenTree::Group(Group {
                        delimiter: delim,
                        stream: TokenStream { trees: inner },
                        span,
                    }));
                }
                ')' | ']' | '}' => {
                    return Err(self.err(&format!("unexpected closing `{c}`")));
                }
                '"' => out.push(self.string_literal(span, String::new())?),
                '\'' => self.quote_tokens(span, &mut out)?,
                c if c.is_ascii_digit() => out.push(self.number(span)),
                c if c == '_' || c.is_alphabetic() => {
                    let word = self.word();
                    // String-ish prefixes: b"..", r"..", br#".."#, c"..".
                    if matches!(word.as_str(), "b" | "r" | "br" | "c" | "cr")
                        && matches!(self.peek(), Some('"') | Some('#'))
                        && (word.contains('r') || self.peek() == Some('"'))
                    {
                        if word.contains('r') {
                            out.push(self.raw_string(span, word)?);
                        } else {
                            self.bump(); // opening quote
                            out.push(self.string_literal(span, word)?);
                        }
                    } else {
                        out.push(TokenTree::Ident(Ident { sym: word, span }));
                    }
                }
                c if PUNCT_CHARS.contains(c) => {
                    self.bump();
                    let joint = matches!(self.peek(), Some(n) if PUNCT_CHARS.contains(n) && n != '\'')
                        // `//` and `/*` after a punct start a comment, not a
                        // glued punct.
                        && !(self.peek() == Some('/')
                            && matches!(self.peek2(), Some('/') | Some('*')));
                    out.push(TokenTree::Punct(Punct {
                        ch: c,
                        spacing: if joint {
                            Spacing::Joint
                        } else {
                            Spacing::Alone
                        },
                        span,
                    }));
                }
                other => {
                    return Err(self.err(&format!("unexpected character `{other}`")));
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        let line = self.line;
        let mut text = String::new();
        // Consume `/*`.
        text.push(self.bump().unwrap_or_default());
        text.push(self.bump().unwrap_or_default());
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('*') if self.peek() == Some('/') => {
                    text.push('*');
                    text.push(self.bump().unwrap_or_default());
                    depth -= 1;
                }
                Some('/') if self.peek() == Some('*') => {
                    text.push('/');
                    text.push(self.bump().unwrap_or_default());
                    depth += 1;
                }
                Some(c) => text.push(c),
                None => return Err(self.err("unterminated block comment")),
            }
        }
        self.comments.push(Comment { line, text });
        Ok(())
    }

    fn word(&mut self) -> String {
        let mut w = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                w.push(c);
                self.bump();
            } else {
                break;
            }
        }
        w
    }

    /// A `"`-delimited string; the opening quote is already consumed and
    /// `prefix` holds any `b`/`c` prefix.
    fn string_literal(&mut self, span: Span, prefix: String) -> Result<TokenTree, LexError> {
        if self.peek() == Some('"') && prefix.is_empty() {
            self.bump();
        }
        let mut repr = prefix;
        repr.push('"');
        loop {
            match self.bump() {
                Some('"') => {
                    repr.push('"');
                    break;
                }
                Some('\\') => {
                    repr.push('\\');
                    match self.bump() {
                        Some(e) => repr.push(e),
                        None => return Err(self.err("unterminated string escape")),
                    }
                }
                Some(c) => repr.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
        // Suffixes (`"..."suffix`) — rare; consume trailing word chars.
        repr.push_str(&self.word());
        Ok(TokenTree::Literal(Literal { repr, span }))
    }

    /// A raw string `r"..."` / `r#"..."#` (or `br`/`cr`); the prefix word is
    /// already consumed.
    fn raw_string(&mut self, span: Span, prefix: String) -> Result<TokenTree, LexError> {
        let mut repr = prefix;
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            repr.push('#');
            self.bump();
        }
        if self.peek() != Some('"') {
            // `r#ident` raw identifier, not a raw string; the symbol is the
            // word after the hashes.
            let word = self.word();
            return Ok(TokenTree::Ident(Ident { sym: word, span }));
        }
        self.bump();
        repr.push('"');
        loop {
            match self.bump() {
                Some('"') => {
                    let mut trailing = 0usize;
                    while trailing < hashes && self.peek() == Some('#') {
                        trailing += 1;
                        self.bump();
                    }
                    repr.push('"');
                    for _ in 0..trailing {
                        repr.push('#');
                    }
                    if trailing == hashes {
                        break;
                    }
                }
                Some(c) => repr.push(c),
                None => return Err(self.err("unterminated raw string")),
            }
        }
        Ok(TokenTree::Literal(Literal { repr, span }))
    }

    /// A `'` token: either a char literal (`'a'`, `'\n'`) or a lifetime
    /// (`'static`), distinguished by lookahead like the real lexer. Pushes
    /// one token for a char literal, two (joint `'` punct + ident) for a
    /// lifetime.
    fn quote_tokens(&mut self, span: Span, out: &mut Vec<TokenTree>) -> Result<(), LexError> {
        self.bump(); // consume '
        match self.peek() {
            // Escape → definitely a char literal.
            Some('\\') => {
                let mut repr = String::from("'");
                repr.push(self.bump().unwrap_or_default());
                match self.bump() {
                    Some(e) => repr.push(e),
                    None => return Err(self.err("unterminated char escape")),
                }
                // `\u{...}` escapes carry a group of hex digits.
                if repr.ends_with('u') && self.peek() == Some('{') {
                    while let Some(c) = self.bump() {
                        repr.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
                match self.bump() {
                    Some('\'') => {
                        repr.push('\'');
                        out.push(TokenTree::Literal(Literal { repr, span }));
                        Ok(())
                    }
                    _ => Err(self.err("unterminated char literal")),
                }
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                // `'x'` is a char; `'xyz` (no closing quote) is a lifetime.
                if self.peek2() == Some('\'') {
                    let mut repr = String::from("'");
                    repr.push(self.bump().unwrap_or_default());
                    self.bump();
                    repr.push('\'');
                    out.push(TokenTree::Literal(Literal { repr, span }));
                } else {
                    let word = self.word();
                    out.push(TokenTree::Punct(Punct {
                        ch: '\'',
                        spacing: Spacing::Joint,
                        span,
                    }));
                    out.push(TokenTree::Ident(Ident { sym: word, span }));
                }
                Ok(())
            }
            Some(c) => {
                // Any other single char between quotes: `'+'`, `' '`.
                let mut repr = String::from("'");
                repr.push(c);
                self.bump();
                match self.bump() {
                    Some('\'') => {
                        repr.push('\'');
                        out.push(TokenTree::Literal(Literal { repr, span }));
                        Ok(())
                    }
                    _ => Err(self.err("unterminated char literal")),
                }
            }
            None => Err(self.err("dangling quote at end of input")),
        }
    }

    fn number(&mut self, span: Span) -> TokenTree {
        let mut repr = String::new();
        // Integer part (also covers 0x/0b/0o bodies and type suffixes).
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                repr.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fraction: a `.` followed by a digit (not `..` or `.method()`).
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            repr.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c == '_' || c.is_alphanumeric() {
                    repr.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent sign: `1e-3` — the `e` was consumed above; a dangling
        // sign means we are mid-exponent.
        if (repr.ends_with('e') || repr.ends_with('E'))
            && matches!(self.peek(), Some('+') | Some('-'))
        {
            repr.push(self.bump().unwrap_or_default());
            while let Some(c) = self.peek() {
                if c == '_' || c.is_alphanumeric() {
                    repr.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        TokenTree::Literal(Literal { repr, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<TokenTree> {
        src.parse::<TokenStream>().unwrap().trees().to_vec()
    }

    #[test]
    fn lexes_idents_puncts_and_groups() {
        let ts = lex("fn main() { let x = a.b(1, 2); }");
        assert!(matches!(&ts[0], TokenTree::Ident(i) if *i == "fn"));
        assert!(matches!(&ts[1], TokenTree::Ident(i) if *i == "main"));
        assert!(matches!(&ts[2], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis));
        let TokenTree::Group(body) = &ts[3] else {
            panic!("expected body group");
        };
        assert_eq!(body.delimiter(), Delimiter::Brace);
        assert!(body.trees().len() > 5);
    }

    #[test]
    fn strings_and_comments_do_not_produce_false_tokens() {
        let ts = lex("let s = \"HashMap::iter() // not code\"; // HashMap\nlet t = 1;");
        let idents: Vec<String> = ts
            .iter()
            .filter_map(|t| match t {
                TokenTree::Ident(i) => Some(i.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let a = 1; // lint: sorted\n/* block\ncomment */ let b = 2;";
        let comments = lex_comments(src);
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.contains("lint: sorted"));
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let ts = lex("a /* x /* y */ z */ b");
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let ts = lex("let c: char = 'a'; fn f<'a>(x: &'a str) {}");
        // `'a'` must lex as a literal, `'a` as lifetime tokens.
        let lits: Vec<String> = ts
            .iter()
            .filter_map(|t| match t {
                TokenTree::Literal(l) => Some(l.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["'a'"]);
    }

    #[test]
    fn raw_strings_and_floats() {
        let ts = lex(r##"let s = r#"quote " inside"#; let f = 1.5e-3;"##);
        let lits: Vec<String> = ts
            .iter()
            .filter_map(|t| match t {
                TokenTree::Literal(l) => Some(l.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(lits.len(), 2);
        assert!(lits[0].contains("quote"));
        assert_eq!(lits[1], "1.5e-3");
    }

    #[test]
    fn spans_track_lines() {
        let ts = lex("a\nb\n  c");
        let spans: Vec<(usize, usize)> = ts
            .iter()
            .map(|t| (t.span().line, t.span().column))
            .collect();
        assert_eq!(spans, vec![(1, 0), (2, 0), (3, 2)]);
    }

    #[test]
    fn method_call_after_float_free_int() {
        // `1.max(2)` — the `.` is a method call, not a fraction.
        let ts = lex("let x = 1.max(2);");
        assert!(ts
            .iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if *i == "max")));
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!("fn f( {".parse::<TokenStream>().is_err());
        assert!("}".parse::<TokenStream>().is_err());
    }

    #[test]
    fn range_is_not_a_fraction() {
        let ts = lex("for i in 0..10 {}");
        let lits: Vec<String> = ts
            .iter()
            .filter_map(|t| match t {
                TokenTree::Literal(l) => Some(l.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["0", "10"]);
    }
}
