//! Vendored minimal `quote`.
//!
//! The real crate interpolates `#var` bindings; this subset only supports
//! literal token text — [`quote!`] stringifies its input and re-lexes it via
//! `proc_macro2::TokenStream::from_str`. That is all the lint's tests need
//! (building small token streams to feed pattern matchers). Interpolation
//! syntax (`#ident`, `#(...)*`) is NOT supported and will simply lex `#` as
//! a punct.

pub use proc_macro2;

/// Builds a [`proc_macro2::TokenStream`] from literal tokens.
///
/// Panics if the tokens do not re-lex, which cannot happen for input that
/// parsed as Rust tokens in the first place.
#[macro_export]
macro_rules! quote {
    ($($tt:tt)*) => {
        stringify!($($tt)*)
            .parse::<$crate::proc_macro2::TokenStream>()
            .expect("quote! input re-lexes")
    };
}

#[cfg(test)]
mod tests {
    use proc_macro2::{TokenStream, TokenTree};

    #[test]
    fn quote_round_trips_tokens() {
        let ts: TokenStream = quote! {
            fn f() { map.iter().count() }
        };
        let idents: Vec<String> = ts
            .trees()
            .iter()
            .filter_map(|t| match t {
                TokenTree::Ident(i) => Some(i.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["fn", "f"]);
    }

    #[test]
    fn quote_empty_is_empty() {
        let ts: TokenStream = quote! {};
        assert!(ts.is_empty());
    }
}
