//! Vendored minimal `serde_derive` — `#[derive(Serialize, Deserialize)]`.
//!
//! Written against the raw `proc_macro` API (no `syn`/`quote`, which are not
//! available offline). Supports the shapes this workspace actually derives:
//! non-generic structs (named, tuple/newtype, unit) and non-generic enums
//! (unit, newtype, tuple, and struct variants), producing the same JSON
//! encodings as real serde's defaults. Field `#[serde(...)]` attributes are
//! not supported (the workspace uses none).

#![allow(clippy::write_with_newline)]
use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits a token sequence on commas at angle-bracket depth 0 (commas inside
/// `(..)`/`[..]`/`{..}` are invisible because those are single groups).
fn split_top_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth: i64 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses the fields inside a brace group: returns field names in order.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_commas(group.into_iter().collect()) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue, // trailing comma
            other => return Err(format!("unexpected token in field position: {other:?}")),
        }
    }
    Ok(names)
}

/// Counts the fields of a tuple struct/variant paren group.
fn count_tuple_fields(group: TokenStream) -> usize {
    split_top_commas(group.into_iter().collect())
        .into_iter()
        .filter(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(chunk, &mut i);
            i < chunk.len()
        })
        .count()
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_commas(group.into_iter().collect()) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("unexpected token in variant position: {other:?}")),
        };
        i += 1;
        let fields = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---- Serialize --------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = serialize_fields_expr(fields, &|idx, _| format!("&self.{idx}"), &|n| {
                format!("&self.{n}")
            });
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert({vn:?}, {payload});\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n",
                            binds.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fs {
                            let _ = write!(
                                inner,
                                "__inner.insert({f:?}, ::serde::Serialize::serialize({f}));\n"
                            );
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {binds} }} => {{\n\
                                 {inner}\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert({vn:?}, ::serde::Value::Object(__inner));\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            );
        }
    }
    out
}

/// Expression serializing a set of fields, given accessors for tuple index /
/// field name.
fn serialize_fields_expr(
    fields: &Fields,
    tuple_access: &dyn Fn(usize, usize) -> String,
    named_access: &dyn Fn(&str) -> String,
) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => format!("::serde::Serialize::serialize({})", tuple_access(0, 1)),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize({})", tuple_access(k, *n)))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(fs) => {
            let mut s = String::from("{ let mut __m = ::serde::Map::new();\n");
            for f in fs {
                let _ = write!(
                    s,
                    "__m.insert({f:?}, ::serde::Serialize::serialize({}));\n",
                    named_access(f)
                );
            }
            s.push_str("::serde::Value::Object(__m) }");
            s
        }
    }
}

// ---- Deserialize ------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::__private::element(__a, {k}, {name:?})?"))
                        .collect();
                    format!(
                        "let __a = __v.as_array().ok_or_else(|| \
                             ::serde::Error::custom(concat!({name:?}, \": expected array\")))?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::__private::field(__o, {f:?}, {name:?})?"))
                        .collect();
                    format!(
                        "let __o = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(concat!({name:?}, \": expected object\")))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let ctx = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => {
                        let _ =
                            write!(arms, "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n");
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::deserialize(__payload)?)),\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::__private::element(__a, {k}, {ctx:?})?"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{vn:?} => {{\n\
                                 let __a = __payload.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(concat!({ctx:?}, \": expected array\")))?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}\n",
                            elems.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::__private::field(__o, {f:?}, {ctx:?})?")
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{vn:?} => {{\n\
                                 let __o = __payload.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(concat!({ctx:?}, \": expected object\")))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                             }}\n",
                            inits.join(", ")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (__name, __payload) = ::serde::__private::variant_payload(__v, {name:?})?;\n\
                         let _ = __payload;\n\
                         match __name {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            );
        }
    }
    out
}

/// Derives `serde::Serialize` (value-tree flavour; see the vendored `serde`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize` (value-tree flavour; see the vendored
/// `serde`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
