//! Vendored minimal `rand` — the subset of the rand 0.10 API used by this
//! workspace, implemented over a xoshiro256++ generator.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the handful of external crates it needs as small path
//! crates. This one provides:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator,
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace uses,
//! * [`RngExt::random`] for `u64`, `u32`, `usize`, `f64`, and `bool`.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — statistically strong
//! enough for simulation workloads and fully deterministic across platforms.
//! It is intentionally **not** a cryptographic RNG.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

mod sample {
    /// Types that can be drawn uniformly from an RNG. Sealed: only the
    /// primitive impls below exist.
    pub trait Uniform: Sized {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Uniform for u64 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Uniform for u32 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Uniform for usize {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Uniform for bool {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform in `[0, 1)` with 53 bits of precision (the standard mapping).
    impl Uniform for f64 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Extension methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    ///
    /// `f64` is uniform in `[0, 1)`; integer types cover their full range.
    fn random<T: sample::Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators (subset: [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn u64_hits_high_bits() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..64).any(|_| r.random::<u64>() > u64::MAX / 2));
    }
}
