//! Vendored minimal `syn` — an item-level parser for Rust source.
//!
//! [`parse_file`] lexes a file with the vendored `proc-macro2` and groups the
//! token stream into a tree of [`Item`]s: functions (with attributes and body
//! token groups), modules (recursed), impl/trait blocks (nested items),
//! structs and enums (field token groups), and a `Verbatim` catch-all for
//! everything else (`use`, `const`, `static`, `type`, macros). Expressions
//! inside fn bodies are deliberately **not** parsed into a syntax tree — the
//! consumer (`threesigma-lint`) pattern-matches over raw token trees, which
//! is both simpler and more robust for lint-style scanning.
//!
//! Known limitation, acceptable for this workspace: const-generic braces in
//! signatures (`fn f<const N: usize>() -> [u8; { N + 1 }]`) would be
//! misparsed as the fn body; no such signature exists in the repo and the
//! fixture tests pin the supported grammar.

use proc_macro2::{Delimiter, Group, Span, TokenStream, TokenTree};

/// Parse failure: the lexer rejected the source or an item was malformed.
#[derive(Debug, Clone)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// 1-based line the failure was detected on (0 when unknown).
    pub line: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// An outer (`#[...]`) or inner (`#![...]`) attribute.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// First path segment inside the brackets (`test`, `cfg`, `derive`).
    pub path: String,
    /// Every token between the brackets, rendered as text (`cfg ( test )`).
    pub text: String,
    /// Span of the `#`.
    pub span: Span,
}

impl Attribute {
    /// True for `#[cfg(test)]` and `#[cfg(any(test, ...))]`-style attributes.
    pub fn is_cfg_test(&self) -> bool {
        self.path == "cfg"
            && self
                .text
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|w| w == "test")
    }

    /// True for `#[test]` and path-suffixed variants like `#[tokio::test]`.
    pub fn is_test(&self) -> bool {
        self.path == "test"
            || self
                .text
                .rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                .find(|w| !w.is_empty())
                == Some("test")
    }
}

/// A free or associated function with its body as a raw token group.
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The function's name.
    pub name: String,
    /// Tokens between the name and the body brace (generics, params, return
    /// type, where clause).
    pub signature: Vec<TokenTree>,
    /// The `{ ... }` body; `None` for bodiless trait/extern declarations.
    pub body: Option<Group>,
    /// Span of the `fn` keyword.
    pub span: Span,
}

/// A `mod` item; `content` is `None` for out-of-line `mod foo;`.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The module's name.
    pub name: String,
    /// Parsed items for inline modules, `None` for `mod foo;`.
    pub content: Option<Vec<Item>>,
    /// Span of the `mod` keyword.
    pub span: Span,
}

/// An `impl` block with its associated items parsed recursively.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Header tokens between `impl` and the brace, rendered as text
    /// (`Ord for Node`).
    pub header: String,
    /// Associated items (functions, consts as Verbatim).
    pub items: Vec<Item>,
    /// Span of the `impl` keyword.
    pub span: Span,
}

/// A `trait` block; default methods appear as `Item::Fn` with bodies.
#[derive(Debug, Clone)]
pub struct ItemTrait {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The trait's name.
    pub name: String,
    /// Associated items.
    pub items: Vec<Item>,
    /// Span of the `trait` keyword.
    pub span: Span,
}

/// A `struct` or `union` definition.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The type's name.
    pub name: String,
    /// Field tokens: brace group for named fields, paren group for tuple
    /// structs, `None` for unit structs.
    pub fields: Option<Group>,
    /// Span of the `struct` keyword.
    pub span: Span,
}

/// An `enum` definition.
#[derive(Debug, Clone)]
pub struct ItemEnum {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The enum's name.
    pub name: String,
    /// The variant brace group.
    pub variants: Group,
    /// Span of the `enum` keyword.
    pub span: Span,
}

/// Any item this parser does not model structurally, with its raw tokens
/// preserved so consumers can still scan them (`const` initializers, `use`
/// trees, macro invocations).
#[derive(Debug, Clone)]
pub struct ItemVerbatim {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The item's raw tokens, including any trailing `;`.
    pub tokens: Vec<TokenTree>,
    /// Span of the first token.
    pub span: Span,
}

/// A parsed top-level or associated item.
#[derive(Debug, Clone)]
pub enum Item {
    /// A function.
    Fn(ItemFn),
    /// A module.
    Mod(ItemMod),
    /// An impl block.
    Impl(ItemImpl),
    /// A trait definition.
    Trait(ItemTrait),
    /// A struct or union.
    Struct(ItemStruct),
    /// An enum.
    Enum(ItemEnum),
    /// Anything else, tokens preserved.
    Verbatim(ItemVerbatim),
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner (`#![...]`) attributes at the top of the file.
    pub attrs: Vec<Attribute>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Parses an entire source file into items.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let stream: TokenStream = src.parse().map_err(|e: proc_macro2::LexError| Error {
        message: e.message,
        line: e.line,
    })?;
    let tokens = stream.trees();
    let mut pos = 0usize;
    let mut attrs = Vec::new();
    // Inner attributes: `#` `!` `[...]`.
    while pos + 2 < tokens.len() + 1 {
        match (&tokens[pos], tokens.get(pos + 1), tokens.get(pos + 2)) {
            (TokenTree::Punct(p), Some(TokenTree::Punct(bang)), Some(TokenTree::Group(g)))
                if p.as_char() == '#'
                    && bang.as_char() == '!'
                    && g.delimiter() == Delimiter::Bracket =>
            {
                attrs.push(attribute_from_group(g, p.span()));
                pos += 3;
            }
            _ => break,
        }
    }
    let items = parse_items(&tokens[pos..])?;
    Ok(File { attrs, items })
}

fn attribute_from_group(g: &Group, span: Span) -> Attribute {
    let path = g
        .trees()
        .iter()
        .find_map(|t| match t {
            TokenTree::Ident(i) => Some(i.to_string()),
            _ => None,
        })
        .unwrap_or_default();
    Attribute {
        path,
        text: g.stream().to_string(),
        span,
    }
}

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Parses a flat token slice into items until exhausted.
fn parse_items(tokens: &[TokenTree]) -> Result<Vec<Item>, Error> {
    let mut items = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        let (item, next) = parse_item(tokens, pos)?;
        items.push(item);
        debug_assert!(next > pos, "parser must make progress");
        pos = next;
    }
    Ok(items)
}

/// Parses one item starting at `pos`; returns the item and the index after it.
fn parse_item(tokens: &[TokenTree], mut pos: usize) -> Result<(Item, usize), Error> {
    let start = pos;
    let span = tokens[pos].span();

    // Outer attributes.
    let mut attrs = Vec::new();
    while let (TokenTree::Punct(p), Some(TokenTree::Group(g))) = (&tokens[pos], tokens.get(pos + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            attrs.push(attribute_from_group(g, p.span()));
            pos += 2;
            if pos >= tokens.len() {
                return Err(Error {
                    message: "attribute with no item".to_string(),
                    line: span.line,
                });
            }
        } else {
            break;
        }
    }

    // Visibility and fn-qualifier keywords.
    loop {
        let Some(word) = tokens.get(pos).and_then(ident_text) else {
            break;
        };
        match word.as_str() {
            "pub" => {
                pos += 1;
                // `pub(crate)` / `pub(in path)`.
                if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    pos += 1;
                }
            }
            "default" | "unsafe" | "async" => pos += 1,
            "extern" => {
                pos += 1;
                // Optional ABI string: `extern "C"`.
                if matches!(tokens.get(pos), Some(TokenTree::Literal(_))) {
                    pos += 1;
                }
            }
            "const" => {
                // Qualifier only when followed by `fn`/`unsafe`/`extern`/
                // `async`; otherwise this is a `const NAME: T = ...;` item.
                match tokens.get(pos + 1).and_then(ident_text).as_deref() {
                    Some("fn") | Some("unsafe") | Some("extern") | Some("async") => pos += 1,
                    _ => break,
                }
            }
            _ => break,
        }
    }

    let Some(keyword) = tokens.get(pos).and_then(ident_text) else {
        // Not keyword-led (e.g. stray tokens): consume as verbatim.
        return verbatim_item(tokens, start, pos, attrs, span);
    };

    match keyword.as_str() {
        "fn" => {
            let fn_span = tokens[pos].span();
            pos += 1;
            let name = tokens.get(pos).and_then(ident_text).ok_or_else(|| Error {
                message: "fn with no name".to_string(),
                line: fn_span.line,
            })?;
            pos += 1;
            let sig_start = pos;
            // Scan to the body brace or a `;` (bodiless declaration). Any
            // top-level brace group here is the body — see module docs for
            // the const-generic caveat.
            while pos < tokens.len() {
                match &tokens[pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let body = g.clone();
                        let signature = tokens[sig_start..pos].to_vec();
                        return Ok((
                            Item::Fn(ItemFn {
                                attrs,
                                name,
                                signature,
                                body: Some(body),
                                span: fn_span,
                            }),
                            pos + 1,
                        ));
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => {
                        let signature = tokens[sig_start..pos].to_vec();
                        return Ok((
                            Item::Fn(ItemFn {
                                attrs,
                                name,
                                signature,
                                body: None,
                                span: fn_span,
                            }),
                            pos + 1,
                        ));
                    }
                    _ => pos += 1,
                }
            }
            Err(Error {
                message: format!("fn `{name}` has no body or `;`"),
                line: fn_span.line,
            })
        }
        "mod" => {
            let mod_span = tokens[pos].span();
            pos += 1;
            let name = tokens.get(pos).and_then(ident_text).ok_or_else(|| Error {
                message: "mod with no name".to_string(),
                line: mod_span.line,
            })?;
            pos += 1;
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let content = parse_items(g.trees())?;
                    Ok((
                        Item::Mod(ItemMod {
                            attrs,
                            name,
                            content: Some(content),
                            span: mod_span,
                        }),
                        pos + 1,
                    ))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((
                    Item::Mod(ItemMod {
                        attrs,
                        name,
                        content: None,
                        span: mod_span,
                    }),
                    pos + 1,
                )),
                _ => Err(Error {
                    message: format!("mod `{name}` has no body or `;`"),
                    line: mod_span.line,
                }),
            }
        }
        "impl" => {
            let impl_span = tokens[pos].span();
            pos += 1;
            let header_start = pos;
            while pos < tokens.len() {
                match &tokens[pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let header =
                            TokenStream::from(tokens[header_start..pos].to_vec()).to_string();
                        let items = parse_items(g.trees())?;
                        return Ok((
                            Item::Impl(ItemImpl {
                                attrs,
                                header,
                                items,
                                span: impl_span,
                            }),
                            pos + 1,
                        ));
                    }
                    _ => pos += 1,
                }
            }
            Err(Error {
                message: "impl with no body".to_string(),
                line: impl_span.line,
            })
        }
        "trait" | "auto" => {
            let trait_span = tokens[pos].span();
            if keyword == "auto" {
                pos += 1; // `auto trait`
            }
            pos += 1;
            let name = tokens.get(pos).and_then(ident_text).ok_or_else(|| Error {
                message: "trait with no name".to_string(),
                line: trait_span.line,
            })?;
            pos += 1;
            while pos < tokens.len() {
                match &tokens[pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let items = parse_items(g.trees())?;
                        return Ok((
                            Item::Trait(ItemTrait {
                                attrs,
                                name,
                                items,
                                span: trait_span,
                            }),
                            pos + 1,
                        ));
                    }
                    _ => pos += 1,
                }
            }
            Err(Error {
                message: format!("trait `{name}` has no body"),
                line: trait_span.line,
            })
        }
        "struct" | "union" => {
            let struct_span = tokens[pos].span();
            pos += 1;
            let name = tokens.get(pos).and_then(ident_text).ok_or_else(|| Error {
                message: "struct with no name".to_string(),
                line: struct_span.line,
            })?;
            pos += 1;
            // Scan past generics/where to brace fields, tuple parens + `;`,
            // or a bare `;` (unit struct).
            while pos < tokens.len() {
                match &tokens[pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        return Ok((
                            Item::Struct(ItemStruct {
                                attrs,
                                name,
                                fields: Some(g.clone()),
                                span: struct_span,
                            }),
                            pos + 1,
                        ));
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        let fields = Some(g.clone());
                        pos += 1;
                        // Consume tokens (where clause) through the `;`.
                        while pos < tokens.len() {
                            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ';') {
                                pos += 1;
                                break;
                            }
                            pos += 1;
                        }
                        return Ok((
                            Item::Struct(ItemStruct {
                                attrs,
                                name,
                                fields,
                                span: struct_span,
                            }),
                            pos,
                        ));
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => {
                        return Ok((
                            Item::Struct(ItemStruct {
                                attrs,
                                name,
                                fields: None,
                                span: struct_span,
                            }),
                            pos + 1,
                        ));
                    }
                    _ => pos += 1,
                }
            }
            Err(Error {
                message: format!("struct `{name}` has no fields or `;`"),
                line: struct_span.line,
            })
        }
        "enum" => {
            let enum_span = tokens[pos].span();
            pos += 1;
            let name = tokens.get(pos).and_then(ident_text).ok_or_else(|| Error {
                message: "enum with no name".to_string(),
                line: enum_span.line,
            })?;
            pos += 1;
            while pos < tokens.len() {
                match &tokens[pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        return Ok((
                            Item::Enum(ItemEnum {
                                attrs,
                                name,
                                variants: g.clone(),
                                span: enum_span,
                            }),
                            pos + 1,
                        ));
                    }
                    _ => pos += 1,
                }
            }
            Err(Error {
                message: format!("enum `{name}` has no body"),
                line: enum_span.line,
            })
        }
        "macro_rules" => {
            // `macro_rules ! name { ... }`.
            pos += 1;
            while pos < tokens.len() {
                if matches!(&tokens[pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
                {
                    pos += 1;
                    break;
                }
                pos += 1;
            }
            verbatim_item(tokens, start, pos, attrs, span)
        }
        // `use`, `const`, `static`, `type`, `extern crate`: statement-style
        // items ending at the first top-level `;`.
        "use" | "const" | "static" | "type" | "crate" => {
            while pos < tokens.len() {
                if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ';') {
                    pos += 1;
                    break;
                }
                pos += 1;
            }
            verbatim_item(tokens, start, pos, attrs, span)
        }
        _ => {
            // Macro invocation (`lazy_static! { ... }`) or unknown grammar:
            // consume to the first top-level brace group or `;`.
            while pos < tokens.len() {
                match &tokens[pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        pos += 1;
                        break;
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => {
                        pos += 1;
                        break;
                    }
                    _ => pos += 1,
                }
            }
            verbatim_item(tokens, start, pos, attrs, span)
        }
    }
}

fn verbatim_item(
    tokens: &[TokenTree],
    start: usize,
    mut end: usize,
    attrs: Vec<Attribute>,
    span: Span,
) -> Result<(Item, usize), Error> {
    if end <= start {
        end = start + 1; // guarantee progress on degenerate input
    }
    Ok((
        Item::Verbatim(ItemVerbatim {
            attrs,
            tokens: tokens[start..end.min(tokens.len())].to_vec(),
            span,
        }),
        end,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|i| match i {
                Item::Fn(f) => format!("fn {}", f.name),
                Item::Mod(m) => format!("mod {}", m.name),
                Item::Impl(im) => format!("impl {}", im.header),
                Item::Trait(t) => format!("trait {}", t.name),
                Item::Struct(s) => format!("struct {}", s.name),
                Item::Enum(e) => format!("enum {}", e.name),
                Item::Verbatim(_) => "verbatim".to_string(),
            })
            .collect()
    }

    #[test]
    fn parses_mixed_items() {
        let src = r#"
            //! module docs are plain comments here
            use std::collections::HashMap;

            pub struct S { pub field: HashMap<u64, f64> }
            pub struct Unit;
            pub struct Tuple(u8, u16);

            enum E { A, B(u8) }

            pub fn free(x: u64) -> u64 { x + 1 }

            impl S {
                pub fn method(&self) -> usize { self.field.len() }
            }

            trait T {
                fn required(&self);
                fn defaulted(&self) -> u8 { 0 }
            }

            mod inner {
                pub fn nested() {}
            }

            const LIMIT: usize = 10;
        "#;
        let file = parse_file(src).unwrap();
        let got = names(&file.items);
        assert_eq!(
            got,
            vec![
                "verbatim",
                "struct S",
                "struct Unit",
                "struct Tuple",
                "enum E",
                "fn free",
                "impl S",
                "trait T",
                "mod inner",
                "verbatim",
            ]
        );
        let Item::Impl(im) = &file.items[6] else {
            panic!()
        };
        assert_eq!(names(&im.items), vec!["fn method"]);
        let Item::Trait(t) = &file.items[7] else {
            panic!()
        };
        let Item::Fn(req) = &t.items[0] else { panic!() };
        assert!(req.body.is_none());
        let Item::Fn(def) = &t.items[1] else { panic!() };
        assert!(def.body.is_some());
        let Item::Mod(m) = &file.items[8] else {
            panic!()
        };
        assert_eq!(names(m.content.as_ref().unwrap()), vec!["fn nested"]);
    }

    #[test]
    fn attrs_and_test_detection() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn works() { assert_eq!(1, 1); }
            }

            #[derive(Debug, Clone)]
            pub struct S;
        "#;
        let file = parse_file(src).unwrap();
        let Item::Mod(m) = &file.items[0] else {
            panic!()
        };
        assert!(m.attrs[0].is_cfg_test());
        let Item::Fn(f) = &m.content.as_ref().unwrap()[0] else {
            panic!()
        };
        assert!(f.attrs[0].is_test());
        let Item::Struct(s) = &file.items[1] else {
            panic!()
        };
        assert!(!s.attrs[0].is_cfg_test());
        assert!(!s.attrs[0].is_test());
    }

    #[test]
    fn fn_qualifiers_and_generics() {
        let src = r#"
            pub(crate) const fn quiet() -> u8 { 0 }
            pub async unsafe fn wild<'a, T: Clone>(x: &'a T) -> T where T: Send { x.clone() }
            extern "C" fn ccall() {}
            impl<'a, T> Wrapper<'a, T> where T: Ord {
                fn get(&self) -> &T { &self.0 }
            }
        "#;
        let file = parse_file(src).unwrap();
        let got = names(&file.items);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], "fn quiet");
        assert_eq!(got[1], "fn wild");
        assert_eq!(got[2], "fn ccall");
        assert!(got[3].starts_with("impl"));
    }

    #[test]
    fn fn_body_tokens_are_reachable() {
        let src = "fn f() { let m = std::collections::HashMap::new(); m.iter().count() }";
        let file = parse_file(src).unwrap();
        let Item::Fn(f) = &file.items[0] else {
            panic!()
        };
        let body = f.body.as_ref().unwrap();
        let text = body.stream().to_string();
        assert!(text.contains("HashMap"));
        assert!(text.contains("iter"));
    }

    #[test]
    fn macro_invocation_and_macro_rules_are_verbatim() {
        let src = r#"
            macro_rules! m { () => {}; }
            thread_local! { static X: u8 = 0; }
            fn after() {}
        "#;
        let file = parse_file(src).unwrap();
        let got = names(&file.items);
        assert_eq!(got, vec!["verbatim", "verbatim", "fn after"]);
    }

    #[test]
    fn inner_attributes_collected() {
        let src = "#![allow(dead_code)]\nfn f() {}";
        let file = parse_file(src).unwrap();
        assert_eq!(file.attrs.len(), 1);
        assert_eq!(file.attrs[0].path, "allow");
        assert_eq!(names(&file.items), vec!["fn f"]);
    }

    #[test]
    fn spans_survive_into_items() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let file = parse_file(src).unwrap();
        let Item::Fn(a) = &file.items[0] else {
            panic!()
        };
        let Item::Fn(b) = &file.items[1] else {
            panic!()
        };
        assert_eq!(a.span.line, 1);
        assert_eq!(b.span.line, 3);
    }
}
