//! Vendored minimal `serde_json` — JSON text over the vendored serde
//! [`Value`] tree.
//!
//! Provides the workspace's used subset: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and the [`Value`]/[`Map`] types (re-exported from the
//! vendored `serde`, so derived impls and `Value` share one data model).
//!
//! Fidelity notes:
//! * `u64`/`i64` round-trip exactly (integers never pass through `f64`).
//! * Floats print with Rust's shortest-round-trip `Display`, so text
//!   round-trips are bit-exact.
//! * Non-finite floats are written as `1e999` / `-1e999` (which parse back
//!   to the infinities); `NaN` is written as `null`.

#![allow(clippy::write_with_newline)]
use serde::{Deserialize, Serialize};
pub use serde::{Error, Map, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

// ---- writer -----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("null");
    } else if f == f64::INFINITY {
        out.push_str("1e999");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // Rust's Display is shortest-round-trip; integral values print
        // without a fraction ("1"), which parses back as an exact integer
        // and deserializes into f64 losslessly.
        let s = f.to_string();
        out.push_str(&s);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let mut m = Map::new();
        m.insert("id", Value::UInt(u64::MAX));
        m.insert("neg", Value::Int(-42));
        m.insert("pi", Value::Float(std::f64::consts::PI));
        m.insert("name", Value::String("a \"b\"\n\\c".to_string()));
        m.insert(
            "arr",
            Value::Array(vec![Value::Null, Value::Bool(true), Value::UInt(0)]),
        );
        m.insert("empty", Value::Array(vec![]));
        let v = Value::Object(m);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_are_shortest_round_trip() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 2.5e17, 123456.789] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn infinities_survive_text() {
        let text = to_string(&f64::INFINITY).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, f64::INFINITY);
        let back: f64 = from_str(&to_string(&f64::NEG_INFINITY).unwrap()).unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
    }

    #[test]
    fn integral_floats_round_trip_via_integer_text() {
        let text = to_string(&1.0f64).unwrap();
        assert_eq!(text, "1");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let mut inner = Map::new();
        inner.insert("a", Value::UInt(1));
        let v = Value::Object(inner);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }
}
