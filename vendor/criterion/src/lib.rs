//! Vendored minimal `criterion` — a wall-clock micro-benchmark harness.
//!
//! Offline replacement for the subset of the criterion API the workspace's
//! `micro_latency` bench uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`/`measurement_time`),
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. It reports median / min / max ns-per-iteration from `sample_size`
//! timed samples, after auto-calibrating the per-sample iteration count.
//! There is no statistical regression analysis or HTML report.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations and records the
    /// total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F, config: Config) {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time reliably, or the per-sample budget is hit.
    let budget =
        config.measurement_time.max(Duration::from_millis(100)) / config.sample_size as u32;
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= budget.min(Duration::from_millis(20)) || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = *samples_ns.last().expect("non-empty");
    println!(
        "{id:<40} time: [{} {} {}]  ({} iters/sample, {} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        iters,
        samples_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark registry/runner (minimal stand-in for criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f, self.config);
        self
    }

    /// Starts a named group with locally overridable settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.config,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), f, self.config);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
