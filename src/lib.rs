//! Facade crate for the 3Sigma reproduction workspace.
//!
//! Re-exports the public API of every workspace crate so that the
//! repository-level examples and integration tests have a single import
//! root. Library users should depend on the individual crates
//! (`threesigma`, `threesigma-predict`, ...) directly.

pub use threesigma as core;
pub use threesigma_cluster as cluster;
pub use threesigma_histogram as histogram;
pub use threesigma_milp as milp;
pub use threesigma_predict as predict;
pub use threesigma_workload as workload;
