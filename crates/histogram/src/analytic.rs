//! Analytic runtime distributions.
//!
//! The paper's worked example (§2.3, Fig. 5) reasons about uniform runtime
//! distributions, and the robustness study (§6.3, Fig. 9) feeds the scheduler
//! synthetic normal distributions `N(μ = runtime·(1 + shift), σ = runtime·CoV)`.
//! Log-normals parameterise the heavy-tailed per-class runtime models of the
//! workload generator, and a point mass is how point-estimate schedulers see
//! the world.
//!
//! All runtime distributions are truncated to a finite non-negative support
//! (`[lower_bound, upper_bound]`): a job cannot run for negative time and the
//! scheduler's under-estimate handling (§4.2.1) triggers off the finite
//! distribution maximum.

use serde::{Deserialize, Serialize};

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// A degenerate distribution: the job runs for exactly `value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointMass {
    /// The single supported runtime.
    pub value: f64,
}

impl PointMass {
    /// Creates a point mass at `value` (clamped to be non-negative).
    pub fn new(value: f64) -> Self {
        Self {
            value: value.max(0.0),
        }
    }
}

/// Uniform distribution over `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    /// Inclusive lower end of the support.
    pub lo: f64,
    /// Inclusive upper end of the support.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is negative/non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!((0.0..=hi).contains(&lo), "need 0 ≤ lo ≤ hi");
        Self { lo, hi }
    }

    pub(crate) fn cdf(&self, t: f64) -> f64 {
        if self.hi == self.lo {
            return if t >= self.hi { 1.0 } else { 0.0 };
        }
        ((t - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    pub(crate) fn quantile(&self, q: f64) -> f64 {
        self.lo + (self.hi - self.lo) * q.clamp(0.0, 1.0)
    }

    pub(crate) fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Normal distribution truncated to a non-negative support.
///
/// The truncation interval defaults to `[max(0, μ − 4σ), μ + 4σ]` and the
/// CDF is renormalised over it, so `cdf(lower) = 0` and `cdf(upper) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean of the underlying (untruncated) normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
    lo: f64,
    hi: f64,
}

impl Normal {
    /// Creates a truncated normal with the default `±4σ` support.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive or inputs are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "must be finite");
        assert!(sigma > 0.0, "sigma must be positive");
        let lo = (mu - 4.0 * sigma).max(0.0);
        let hi = (mu + 4.0 * sigma).max(lo + f64::MIN_POSITIVE);
        Self { mu, sigma, lo, hi }
    }

    fn raw_cdf(&self, t: f64) -> f64 {
        std_normal_cdf((t - self.mu) / self.sigma)
    }

    pub(crate) fn cdf(&self, t: f64) -> f64 {
        if t <= self.lo {
            return 0.0;
        }
        if t >= self.hi {
            return 1.0;
        }
        let base = self.raw_cdf(self.lo);
        let span = self.raw_cdf(self.hi) - base;
        if span <= 0.0 {
            return if t >= self.mu { 1.0 } else { 0.0 };
        }
        ((self.raw_cdf(t) - base) / span).clamp(0.0, 1.0)
    }

    pub(crate) fn lower(&self) -> f64 {
        self.lo
    }

    pub(crate) fn upper(&self) -> f64 {
        self.hi
    }
}

/// Log-normal distribution, truncated at its `99.95th` percentile.
///
/// `mu`/`sigma` parameterise the underlying normal of `ln T`; this is the
/// heavy-tailed shape the workload generator uses for per-class runtimes
/// (job runtimes are heavy-tailed in all three traces, §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of `ln T`.
    pub mu: f64,
    /// Standard deviation of `ln T`.
    pub sigma: f64,
    hi: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of `ln T`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive or inputs are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "must be finite");
        assert!(sigma > 0.0, "sigma must be positive");
        // 99.95th percentile of the underlying normal: z ≈ 3.2905.
        let hi = (mu + 3.2905 * sigma).exp();
        Self { mu, sigma, hi }
    }

    fn raw_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        std_normal_cdf((t.ln() - self.mu) / self.sigma)
    }

    pub(crate) fn cdf(&self, t: f64) -> f64 {
        if t >= self.hi {
            return 1.0;
        }
        let span = self.raw_cdf(self.hi);
        if span <= 0.0 {
            return 0.0;
        }
        (self.raw_cdf(t) / span).clamp(0.0, 1.0)
    }

    pub(crate) fn upper(&self) -> f64 {
        self.hi
    }

    /// Mean of the *untruncated* log-normal, `exp(μ + σ²/2)`.
    pub fn raw_mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn std_normal_cdf_is_symmetric() {
        for z in [0.1, 0.5, 1.3, 2.7] {
            let s = std_normal_cdf(z) + std_normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-9, "symmetry at {z}");
        }
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn uniform_cdf_and_quantile() {
        let u = Uniform::new(2.5, 7.5);
        assert_eq!(u.cdf(0.0), 0.0);
        assert_eq!(u.cdf(10.0), 1.0);
        assert!((u.cdf(5.0) - 0.5).abs() < 1e-12);
        assert!((u.quantile(0.5) - 5.0).abs() < 1e-12);
        assert!((u.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_uniform_behaves_like_point() {
        let u = Uniform::new(3.0, 3.0);
        assert_eq!(u.cdf(2.9), 0.0);
        assert_eq!(u.cdf(3.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(5.0, 1.0);
    }

    #[test]
    fn truncated_normal_covers_its_support() {
        let n = Normal::new(100.0, 10.0);
        assert_eq!(n.cdf(n.lower()), 0.0);
        assert_eq!(n.cdf(n.upper()), 1.0);
        assert!((n.cdf(100.0) - 0.5).abs() < 1e-6);
        assert!(n.cdf(90.0) < n.cdf(110.0));
    }

    #[test]
    fn normal_near_zero_truncates_at_zero() {
        let n = Normal::new(5.0, 10.0);
        assert_eq!(n.lower(), 0.0);
        assert_eq!(n.cdf(-1.0), 0.0);
        assert_eq!(n.cdf(0.0), 0.0);
        assert!(n.cdf(5.0) > 0.0);
    }

    #[test]
    fn lognormal_cdf_is_monotone_with_heavy_tail() {
        let ln = LogNormal::new(4.0, 1.5);
        let mut prev = 0.0;
        for t in [1.0, 10.0, 50.0, 200.0, 1000.0, 5000.0] {
            let c = ln.cdf(t);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(ln.cdf(ln.upper()), 1.0);
        // Heavy tail: the mean exceeds the median exp(mu).
        assert!(ln.raw_mean() > 4.0f64.exp());
    }

    #[test]
    fn point_mass_clamps_negative() {
        assert_eq!(PointMass::new(-3.0).value, 0.0);
        assert_eq!(PointMass::new(42.0).value, 42.0);
    }
}
