//! Small streaming statistics used across 3Sigma.
//!
//! 3σPredict keeps constant-memory state per feature value (§4.1
//! "Scalability"): streaming mean/variance for the *average* expert and the
//! NMAE accounting, and an exponentially weighted moving average for the
//! *rolling* expert. The trace-analysis harness (Fig. 2) additionally needs
//! coefficient-of-variation and quantile helpers.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Mean of the observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then_some(self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Coefficient of variation (σ/μ), or `None` if empty or μ = 0.
    pub fn cov(&self) -> Option<f64> {
        let mean = self.mean()?;
        if mean == 0.0 {
            return None;
        }
        Some(self.std_dev()? / mean.abs())
    }
}

/// Exponentially weighted moving average.
///
/// 3σPredict's *rolling* expert uses `alpha = 0.6` (§4.1): each new
/// observation contributes weight `alpha`, the previous average `1 − alpha`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with the given smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha ≤ 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Folds one observation into the average.
    pub fn push(&mut self, observation: f64) {
        self.value = Some(match self.value {
            None => observation,
            Some(prev) => self.alpha * observation + (1.0 - self.alpha) * prev,
        });
    }

    /// Current average, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Coefficient of variation of a sample (population σ over mean).
///
/// Returns `None` for empty input or zero mean.
pub fn coefficient_of_variation(values: &[f64]) -> Option<f64> {
    let mut m = StreamingMoments::new();
    for v in values {
        m.push(*v);
    }
    m.cov()
}

/// Linear-interpolation quantile of an already-sorted slice.
///
/// `q` is clamped to `[0, 1]`. Returns `None` for an empty slice.
///
/// # Panics
///
/// Debug builds assert the slice is sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_direct_computation() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = StreamingMoments::new();
        for v in vals {
            m.push(v);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((m.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert!((m.cov().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_moments_yield_none() {
        let m = StreamingMoments::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.variance(), None);
        assert_eq!(m.cov(), None);
    }

    #[test]
    fn zero_mean_has_no_cov() {
        let mut m = StreamingMoments::new();
        m.push(-1.0);
        m.push(1.0);
        assert_eq!(m.cov(), None);
    }

    #[test]
    fn ewma_first_observation_is_identity() {
        let mut e = Ewma::new(0.6);
        assert_eq!(e.value(), None);
        e.push(10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn ewma_weights_recent_observations() {
        let mut e = Ewma::new(0.6);
        e.push(10.0);
        e.push(20.0);
        // 0.6·20 + 0.4·10 = 16.
        assert!((e.value().unwrap() - 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&v, 1.0), Some(4.0));
        assert!((quantile_sorted(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn cov_of_constant_sample_is_zero() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), Some(0.0));
    }
}
