//! Streaming histograms and runtime-distribution algebra for 3Sigma.
//!
//! 3σPredict summarises the runtime history of every feature value as a
//! bounded-size streaming histogram (Ben-Haim & Tom-Tov, JMLR 2010) and hands
//! 3σSched an *empirical runtime distribution* derived from it. The scheduler
//! then needs a small algebra over such distributions:
//!
//! * `CDF(t)` / survival `1 − CDF(t)` — expected resource consumption (§3.2),
//! * conditional tails `P(T > t | T > elapsed)` — Eq. 2 renormalisation,
//! * discrete mass points — the expected-utility integral of Eq. 1 becomes a
//!   weighted sum,
//! * means/quantiles/upper bounds — point estimates, under-estimate handling.
//!
//! The crate also provides the analytic distributions (uniform, normal,
//! log-normal, point) used by the paper's worked example (§2.3, Fig. 5) and
//! by the distribution-perturbation study (§6.3, Fig. 9).
//!
//! # Example
//!
//! ```
//! use threesigma_histogram::{ConditionalDist, Dist, RuntimeDistribution};
//!
//! let dist = RuntimeDistribution::from_samples(&[60.0, 90.0, 120.0, 600.0], 80)
//!     .expect("non-empty samples");
//! // Probability the job still runs after 100 s (expected consumption):
//! let s = dist.survival(100.0);
//! assert!(s > 0.2 && s < 0.7);
//! // Eq. 2: condition on 130 s elapsed — the remaining mass shifts toward
//! // the 600 s mode, so late survival grows sharply.
//! let cond = ConditionalDist::new(&dist, 130.0);
//! assert!(cond.survival(300.0) > dist.survival(300.0) + 0.2);
//! ```

pub mod analytic;
pub mod dist;
pub mod stats;
pub mod streaming;

pub use analytic::{LogNormal, Normal, PointMass, Uniform};
pub use dist::{ConditionalDist, Dist, RuntimeDistribution};
pub use stats::{coefficient_of_variation, quantile_sorted, Ewma, StreamingMoments};
pub use streaming::StreamingHistogram;
