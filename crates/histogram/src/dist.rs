//! The runtime-distribution abstraction shared by 3σPredict and 3σSched.
//!
//! [`RuntimeDistribution`] unifies the empirical histograms produced by the
//! predictor with the analytic shapes used by the worked example and the
//! perturbation study, behind the small [`Dist`] algebra the scheduler needs.
//! [`ConditionalDist`] implements the Eq. 2 renormalisation for running jobs:
//! `P(T > t | T > elapsed) = S(t) / S(elapsed)`.

use serde::{Deserialize, Serialize};

use crate::analytic::{LogNormal, Normal, PointMass, Uniform};
use crate::streaming::StreamingHistogram;

/// Survival probabilities below this are treated as zero (distribution
/// exhausted — the under-estimate regime of §4.2.1).
pub const SURVIVAL_EPSILON: f64 = 1e-9;

/// Number of quantile-grid points used to discretise analytic distributions.
const DEFAULT_MASS_POINTS: usize = 64;

/// Common algebra over runtime distributions.
pub trait Dist {
    /// `P(T ≤ t)`.
    fn cdf(&self, t: f64) -> f64;

    /// `P(T > t)` — the probability the job still holds its resources at
    /// elapsed time `t` (§3.2).
    fn survival(&self, t: f64) -> f64 {
        (1.0 - self.cdf(t)).clamp(0.0, 1.0)
    }

    /// Expected runtime.
    fn mean(&self) -> f64;

    /// Smallest `t` with `cdf(t) ≥ q` (q clamped to `[0, 1]`).
    fn quantile(&self, q: f64) -> f64;

    /// Smallest supported runtime.
    fn lower_bound(&self) -> f64;

    /// Largest supported runtime — the "maximum observed runtime" that
    /// triggers under-estimate handling once exceeded.
    fn upper_bound(&self) -> f64;

    /// Discrete `(runtime, probability)` representation with at most
    /// `max_points` points; probabilities sum to 1. Eq. 1's integral is
    /// evaluated as a weighted sum over these points.
    fn mass_points(&self, max_points: usize) -> Vec<(f64, f64)>;
}

/// A runtime distribution: either empirical (from history) or analytic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuntimeDistribution {
    /// Exactly-known runtime (how point-estimate schedulers see jobs).
    Point(PointMass),
    /// Uniform over an interval (worked example of §2.3 / Fig. 5).
    Uniform(Uniform),
    /// Truncated normal (perturbation study of §6.3 / Fig. 9).
    Normal(Normal),
    /// Truncated log-normal (workload generator's per-class runtimes).
    LogNormal(LogNormal),
    /// Empirical histogram of observed runtimes (3σPredict's output).
    Empirical(StreamingHistogram),
}

impl RuntimeDistribution {
    /// Builds an empirical distribution from raw samples.
    ///
    /// Returns `None` when `samples` is empty.
    pub fn from_samples(samples: &[f64], max_bins: usize) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut hist = StreamingHistogram::new(max_bins);
        for s in samples {
            hist.insert(*s);
        }
        Some(Self::Empirical(hist))
    }

    /// A point distribution at `value`.
    pub fn point(value: f64) -> Self {
        Self::Point(PointMass::new(value))
    }

    /// Generic quantile by bisection over a monotone CDF.
    fn bisect_quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let (mut lo, mut hi) = (self.lower_bound(), self.upper_bound());
        if q <= 0.0 {
            return lo;
        }
        if q >= 1.0 {
            return hi;
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-9 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Quantile-grid mass points for analytic shapes.
    fn quantile_grid(&self, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(1);
        let p = 1.0 / n as f64;
        (0..n)
            .map(|i| (self.quantile((i as f64 + 0.5) * p), p))
            .collect()
    }
}

impl Dist for RuntimeDistribution {
    fn cdf(&self, t: f64) -> f64 {
        match self {
            Self::Point(p) => {
                if t >= p.value {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Uniform(u) => u.cdf(t),
            Self::Normal(n) => n.cdf(t),
            Self::LogNormal(l) => l.cdf(t),
            Self::Empirical(h) => {
                let count = h.count();
                if count == 0 {
                    return 0.0;
                }
                h.sum(t) / count as f64
            }
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Self::Point(p) => p.value,
            Self::Uniform(u) => u.mean(),
            Self::Empirical(h) => h.mean().unwrap_or(0.0),
            // Truncated analytic shapes: integrate the quantile function.
            Self::Normal(_) | Self::LogNormal(_) => {
                let pts = self.quantile_grid(256);
                pts.iter().map(|(t, p)| t * p).sum()
            }
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        match self {
            Self::Point(p) => p.value,
            Self::Uniform(u) => u.quantile(q),
            Self::Empirical(h) => h.quantile(q).unwrap_or(0.0),
            Self::Normal(_) | Self::LogNormal(_) => self.bisect_quantile(q),
        }
    }

    fn lower_bound(&self) -> f64 {
        match self {
            Self::Point(p) => p.value,
            Self::Uniform(u) => u.lo,
            Self::Normal(n) => n.cdf_lower(),
            Self::LogNormal(_) => 0.0,
            Self::Empirical(h) => h.min().unwrap_or(0.0),
        }
    }

    fn upper_bound(&self) -> f64 {
        match self {
            Self::Point(p) => p.value,
            Self::Uniform(u) => u.hi,
            Self::Normal(n) => n.cdf_upper(),
            Self::LogNormal(l) => l.cdf_upper(),
            Self::Empirical(h) => h.max().unwrap_or(0.0),
        }
    }

    fn mass_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        match self {
            Self::Point(p) => vec![(p.value, 1.0)],
            Self::Empirical(h) => {
                let pts = h.mass_points();
                if pts.is_empty() {
                    vec![(0.0, 1.0)]
                } else {
                    pts
                }
            }
            _ => self.quantile_grid(max_points.clamp(1, DEFAULT_MASS_POINTS)),
        }
    }
}

/// A running job's distribution conditioned on having run for `elapsed`.
///
/// Implements Eq. 2: `1 − CDF_upd(t) = (1 − CDF(t)) / (1 − CDF(elapsed))`.
/// When the original distribution is exhausted (`S(elapsed) ≈ 0`, i.e. the
/// job has outrun all history — an under-estimate), the conditional
/// degenerates to a point mass at `elapsed`; the scheduler layers
/// exponential-increment handling on top (§4.2.1).
#[derive(Debug, Clone)]
pub struct ConditionalDist<'a> {
    dist: &'a RuntimeDistribution,
    elapsed: f64,
    s_elapsed: f64,
}

impl<'a> ConditionalDist<'a> {
    /// Conditions `dist` on `T > elapsed`.
    pub fn new(dist: &'a RuntimeDistribution, elapsed: f64) -> Self {
        let elapsed = elapsed.max(0.0);
        let s_elapsed = dist.survival(elapsed);
        Self {
            dist,
            elapsed,
            s_elapsed,
        }
    }

    /// Elapsed time this distribution is conditioned on.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// True when the job has outrun the entire distribution support — the
    /// under-estimate regime.
    pub fn is_exhausted(&self) -> bool {
        self.s_elapsed <= SURVIVAL_EPSILON
    }

    /// Conditional survival `P(T > t | T > elapsed)` (total runtime `t`).
    pub fn survival(&self, t: f64) -> f64 {
        if t <= self.elapsed {
            return 1.0;
        }
        if self.is_exhausted() {
            return 0.0;
        }
        (self.dist.survival(t) / self.s_elapsed).clamp(0.0, 1.0)
    }

    /// Conditional CDF.
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }

    /// Expected *remaining* runtime beyond `elapsed`, by integrating the
    /// conditional survival over the remaining support.
    pub fn expected_remaining(&self) -> f64 {
        if self.is_exhausted() {
            return 0.0;
        }
        let hi = self.dist.upper_bound();
        if hi <= self.elapsed {
            return 0.0;
        }
        let steps = 128;
        let dt = (hi - self.elapsed) / steps as f64;
        // Midpoint rule over S_cond; S is monotone so this is well-behaved.
        (0..steps)
            .map(|i| self.survival(self.elapsed + (i as f64 + 0.5) * dt) * dt)
            .sum()
    }

    /// Largest supported total runtime (at least `elapsed`).
    pub fn upper_bound(&self) -> f64 {
        self.dist.upper_bound().max(self.elapsed)
    }

    /// Conditional mass points over total runtime; probabilities sum to 1.
    pub fn mass_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.is_exhausted() {
            return vec![(self.elapsed, 1.0)];
        }
        let mut pts: Vec<(f64, f64)> = self
            .dist
            .mass_points(max_points)
            .into_iter()
            .filter(|(t, _)| *t > self.elapsed)
            .collect();
        let total: f64 = pts.iter().map(|(_, p)| p).sum();
        if total <= 0.0 {
            return vec![(self.elapsed, 1.0)];
        }
        for (_, p) in &mut pts {
            *p /= total;
        }
        pts
    }
}

// Accessors for truncation bounds that are implementation details of the
// analytic shapes but needed by the enum dispatch above.
impl Normal {
    pub(crate) fn cdf_lower(&self) -> f64 {
        self.lower()
    }

    pub(crate) fn cdf_upper(&self) -> f64 {
        self.upper()
    }
}

impl LogNormal {
    pub(crate) fn cdf_upper(&self) -> f64 {
        self.upper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(lo: f64, hi: f64) -> RuntimeDistribution {
        RuntimeDistribution::Uniform(Uniform::new(lo, hi))
    }

    #[test]
    fn point_distribution_is_a_step() {
        let d = RuntimeDistribution::point(5.0);
        assert_eq!(d.cdf(4.999), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.mass_points(10), vec![(5.0, 1.0)]);
    }

    #[test]
    fn uniform_survival_matches_paper_example() {
        // Scenario 1 of Fig. 5: U(0, 10); survival at 2.5-step boundaries is
        // 1.0, 0.75, 0.5, 0.25, 0.
        let d = uniform(0.0, 10.0);
        for (t, s) in [
            (0.0, 1.0),
            (2.5, 0.75),
            (5.0, 0.5),
            (7.5, 0.25),
            (10.0, 0.0),
        ] {
            assert!((d.survival(t) - s).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn narrow_uniform_survival_matches_scenario_two() {
        // Scenario 2 of Fig. 5: U(2.5, 7.5); survival at 0, 2.5, 5 is
        // 1.0, 1.0, 0.5.
        let d = uniform(2.5, 7.5);
        assert!((d.survival(0.0) - 1.0).abs() < 1e-12);
        assert!((d.survival(2.5) - 1.0).abs() < 1e-12);
        assert!((d.survival(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.survival(7.5), 0.0);
    }

    #[test]
    fn normal_mean_approximates_mu_away_from_zero() {
        let d = RuntimeDistribution::Normal(Normal::new(100.0, 10.0));
        assert!((d.mean() - 100.0).abs() < 0.5);
        assert!((d.quantile(0.5) - 100.0).abs() < 0.5);
    }

    #[test]
    fn empirical_distribution_from_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = RuntimeDistribution::from_samples(&samples, 80).unwrap();
        assert!((d.mean() - 50.5).abs() < 0.5);
        assert!((d.cdf(50.0) - 0.5).abs() < 0.05);
        assert_eq!(d.lower_bound(), 1.0);
        assert_eq!(d.upper_bound(), 100.0);
    }

    #[test]
    fn from_empty_samples_is_none() {
        assert!(RuntimeDistribution::from_samples(&[], 80).is_none());
    }

    #[test]
    fn mass_points_sum_to_one_for_all_shapes() {
        let shapes = vec![
            RuntimeDistribution::point(3.0),
            uniform(1.0, 9.0),
            RuntimeDistribution::Normal(Normal::new(50.0, 5.0)),
            RuntimeDistribution::LogNormal(LogNormal::new(3.0, 1.0)),
            RuntimeDistribution::from_samples(&[1.0, 2.0, 2.0, 8.0], 4).unwrap(),
        ];
        for d in shapes {
            let total: f64 = d.mass_points(32).iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "{d:?}");
        }
    }

    #[test]
    fn conditional_renormalises_per_eq2() {
        // U(0, 10) conditioned on elapsed = 5: S(7.5 | 5) = 0.25/0.5 = 0.5.
        let d = uniform(0.0, 10.0);
        let c = ConditionalDist::new(&d, 5.0);
        assert!(!c.is_exhausted());
        assert!((c.survival(7.5) - 0.5).abs() < 1e-12);
        assert_eq!(c.survival(3.0), 1.0, "past time is certain");
        assert_eq!(c.survival(10.0), 0.0);
        assert!((c.expected_remaining() - 2.5).abs() < 0.1);
    }

    #[test]
    fn conditional_with_zero_elapsed_is_identity() {
        let d = uniform(2.0, 6.0);
        let c = ConditionalDist::new(&d, 0.0);
        for t in [1.0, 3.0, 5.0, 7.0] {
            assert!((c.survival(t) - d.survival(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn exhausted_conditional_is_point_at_elapsed() {
        let d = uniform(0.0, 10.0);
        let c = ConditionalDist::new(&d, 12.0);
        assert!(c.is_exhausted());
        assert_eq!(c.survival(12.0), 1.0);
        assert_eq!(c.survival(12.1), 0.0);
        assert_eq!(c.mass_points(16), vec![(12.0, 1.0)]);
        assert_eq!(c.expected_remaining(), 0.0);
    }

    #[test]
    fn conditional_mass_points_renormalise() {
        let d = uniform(0.0, 10.0);
        let c = ConditionalDist::new(&d, 5.0);
        let pts = c.mass_points(10);
        let total: f64 = pts.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pts.iter().all(|(t, _)| *t > 5.0));
    }
}
