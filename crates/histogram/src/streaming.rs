//! Ben-Haim & Tom-Tov streaming histogram.
//!
//! Maintains at most `max_bins` (centroid, count) pairs over a stream of
//! observations in constant memory. This is the sketch 3σPredict uses to keep
//! a runtime histogram per feature value (the paper caps it at 80 bins), and
//! the basis for the empirical [`RuntimeDistribution`] handed to 3σSched.
//!
//! [`RuntimeDistribution`]: crate::dist::RuntimeDistribution

use serde::{Deserialize, Serialize};

/// Default bin budget used by 3σPredict (the paper's maximum of 80 bins).
pub const DEFAULT_MAX_BINS: usize = 80;

/// One histogram bin: a centroid position and the mass merged into it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Centroid of the observations merged into this bin.
    pub centroid: f64,
    /// Number of observations merged into this bin.
    pub count: f64,
}

/// A bounded-size histogram over a stream of `f64` observations.
///
/// Inserting is `O(max_bins)` (binary search + possible merge), and the
/// structure never holds more than `max_bins` bins, so memory per feature
/// value is constant — the scalability property §4.1 relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingHistogram {
    bins: Vec<Bin>,
    max_bins: usize,
    count: u64,
    min: f64,
    max: f64,
    /// Times two bins were collapsed to stay within `max_bins` —
    /// observability for how lossy this sketch has been.
    merges: u64,
}

impl StreamingHistogram {
    /// Creates an empty histogram holding at most `max_bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins` is zero.
    pub fn new(max_bins: usize) -> Self {
        assert!(max_bins > 0, "histogram needs at least one bin");
        Self {
            bins: Vec::with_capacity(max_bins + 1),
            max_bins,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            merges: 0,
        }
    }

    /// Creates a histogram with the paper's default bin budget (80).
    pub fn with_default_bins() -> Self {
        Self::new(DEFAULT_MAX_BINS)
    }

    /// Number of observations inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no observation has been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation seen, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest observation seen, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// The current bins, sorted by centroid.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Times two bins were collapsed to respect the bin budget. A high
    /// merge count relative to [`count`](Self::count) means the sketch has
    /// been compressing aggressively and quantiles are coarser.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Mean of the inserted observations (exact for sums, since merging
    /// preserves centroid×count mass).
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let total: f64 = self.bins.iter().map(|b| b.count).sum();
        let sum: f64 = self.bins.iter().map(|b| b.centroid * b.count).sum();
        Some(sum / total)
    }

    /// Inserts one observation (Algorithm "Update" of Ben-Haim & Tom-Tov).
    pub fn insert(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "histogram values must be finite");
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match self.bins.binary_search_by(|b| b.centroid.total_cmp(&value)) {
            Ok(i) => self.bins[i].count += 1.0,
            Err(i) => {
                self.bins.insert(
                    i,
                    Bin {
                        centroid: value,
                        count: 1.0,
                    },
                );
                if self.bins.len() > self.max_bins {
                    self.merge_closest();
                }
            }
        }
    }

    /// Merges another histogram into this one (Algorithm "Merge").
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.is_empty() {
            return;
        }
        self.count += other.count;
        self.merges += other.merges;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for bin in &other.bins {
            match self
                .bins
                .binary_search_by(|b| b.centroid.total_cmp(&bin.centroid))
            {
                Ok(i) => self.bins[i].count += bin.count,
                Err(i) => self.bins.insert(i, *bin),
            }
        }
        while self.bins.len() > self.max_bins {
            self.merge_closest();
        }
    }

    fn merge_closest(&mut self) {
        self.merges += 1;
        let mut best = 0;
        let mut best_gap = f64::INFINITY;
        for i in 0..self.bins.len() - 1 {
            let gap = self.bins[i + 1].centroid - self.bins[i].centroid;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let (a, b) = (self.bins[best], self.bins[best + 1]);
        let count = a.count + b.count;
        self.bins[best] = Bin {
            centroid: (a.centroid * a.count + b.centroid * b.count) / count,
            count,
        };
        self.bins.remove(best + 1);
    }

    /// Estimated number of observations `≤ value` (Algorithm "Sum").
    ///
    /// Within `[min, max]` the estimate interpolates between bins treating
    /// each bin's mass as a trapezoid between adjacent centroids; outside
    /// that range it clamps to `0` or `count`. Virtual zero-mass bins at the
    /// exact observed `min` and `max` make the interpolation well-defined
    /// over the full observed support.
    pub fn sum(&self, value: f64) -> f64 {
        if self.is_empty() || value < self.min {
            return 0.0;
        }
        if value >= self.max {
            return self.count as f64;
        }
        let lo = Bin {
            centroid: self.min,
            count: 0.0,
        };
        let hi = Bin {
            centroid: self.max,
            count: 0.0,
        };
        let chain = std::iter::once(lo)
            .chain(self.bins.iter().copied())
            .chain(std::iter::once(hi));
        let mut acc = 0.0;
        let mut prev: Option<Bin> = None;
        for cur in chain {
            if let Some(p) = prev {
                if value < cur.centroid {
                    let width = cur.centroid - p.centroid;
                    let frac = if width > 0.0 {
                        (value - p.centroid) / width
                    } else {
                        0.0
                    };
                    let mb = p.count + (cur.count - p.count) * frac;
                    return acc + p.count / 2.0 + (p.count + mb) / 2.0 * frac;
                }
                acc += p.count;
            }
            prev = Some(cur);
        }
        self.count as f64
    }

    /// Estimated quantile: smallest `x` with `sum(x) ≥ q · count`.
    ///
    /// `q` is clamped to `[0, 1]`. Returns `None` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let (mut lo, mut hi) = (self.min, self.max);
        if target <= 0.0 {
            return Some(lo);
        }
        if target >= self.count as f64 {
            return Some(hi);
        }
        // The interpolated `sum` is monotone, so bisection converges fast.
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.sum(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-9 * (1.0 + hi.abs()) {
                break;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Normalised `(value, probability)` mass points — one per bin.
    ///
    /// This is the discrete form the scheduler integrates against (Eq. 1).
    pub fn mass_points(&self) -> Vec<(f64, f64)> {
        let total: f64 = self.bins.iter().map(|b| b.count).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        self.bins
            .iter()
            .map(|b| (b.centroid, b.count / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_empty() {
        let h = StreamingHistogram::new(8);
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.sum(10.0), 0.0);
    }

    #[test]
    fn exact_when_under_bin_budget() {
        let mut h = StreamingHistogram::new(10);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.insert(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bins().len(), 5);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert!((h.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_values_share_a_bin() {
        let mut h = StreamingHistogram::new(4);
        for _ in 0..100 {
            h.insert(7.0);
        }
        assert_eq!(h.bins().len(), 1);
        assert_eq!(h.bins()[0].count, 100.0);
        assert_eq!(h.quantile(0.5), Some(7.0));
    }

    #[test]
    fn respects_bin_budget() {
        let mut h = StreamingHistogram::new(8);
        for i in 0..1000 {
            h.insert(i as f64);
        }
        assert!(h.bins().len() <= 8);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn mean_is_preserved_by_merging() {
        let mut h = StreamingHistogram::new(4);
        let vals: Vec<f64> = (0..200).map(|i| (i as f64).sqrt()).collect();
        let exact: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        for v in &vals {
            h.insert(*v);
        }
        assert!((h.mean().unwrap() - exact).abs() < 1e-9);
    }

    #[test]
    fn sum_is_monotone_and_bounded() {
        let mut h = StreamingHistogram::new(16);
        for i in 0..500 {
            h.insert((i % 37) as f64 * 1.7);
        }
        let mut prev = -1.0;
        for step in -10..80 {
            let s = h.sum(step as f64);
            assert!(s >= prev - 1e-9, "sum must be monotone");
            assert!((0.0..=500.0 + 1e-9).contains(&s));
            prev = s;
        }
        assert_eq!(h.sum(-1.0), 0.0);
        assert_eq!(h.sum(1e9), 500.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = StreamingHistogram::new(32);
        for i in 1..=1000 {
            h.insert(i as f64);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - 500.0).abs() < 25.0, "median estimate {q50}");
        let q0 = h.quantile(0.0).unwrap();
        let q1 = h.quantile(1.0).unwrap();
        assert_eq!(q0, 1.0);
        assert_eq!(q1, 1000.0);
    }

    #[test]
    fn merge_count_tracks_compression() {
        let mut h = StreamingHistogram::new(4);
        for i in 0..4 {
            h.insert(i as f64);
        }
        assert_eq!(h.merge_count(), 0);
        for i in 4..20 {
            h.insert(i as f64);
        }
        // Every insert past the budget costs exactly one merge.
        assert_eq!(h.merge_count(), 16);

        let mut a = StreamingHistogram::new(4);
        for i in 0..10 {
            a.insert(i as f64);
        }
        let before = a.merge_count();
        a.merge(&h);
        assert!(a.merge_count() >= before + h.merge_count());
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = StreamingHistogram::new(8);
        let mut b = StreamingHistogram::new(8);
        for i in 0..50 {
            a.insert(i as f64);
        }
        for i in 50..100 {
            b.insert(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.min(), Some(0.0));
        assert_eq!(a.max(), Some(99.0));
        assert!(a.bins().len() <= 8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingHistogram::new(8);
        a.insert(3.0);
        let before = a.clone();
        a.merge(&StreamingHistogram::new(8));
        assert_eq!(a.count(), before.count());
        assert_eq!(a.bins(), before.bins());
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let mut h = StreamingHistogram::new(16);
        for i in 0..200 {
            h.insert((i * 7 % 53) as f64);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: StreamingHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.count(), 200);
    }

    #[test]
    fn sum_is_continuous_at_centroids() {
        let mut h = StreamingHistogram::new(8);
        for i in 0..300 {
            h.insert((i % 17) as f64 * 3.0);
        }
        for b in h.bins().to_vec() {
            let eps = 1e-6;
            let below = h.sum(b.centroid - eps);
            let above = h.sum(b.centroid + eps);
            assert!(
                (above - below).abs() < 1.0,
                "jump at centroid {}: {below} → {above}",
                b.centroid
            );
        }
    }

    #[test]
    fn merge_order_does_not_change_count_or_extremes() {
        let mut parts = Vec::new();
        for p in 0..4 {
            let mut h = StreamingHistogram::new(12);
            for i in 0..100 {
                h.insert((p * 100 + i) as f64);
            }
            parts.push(h);
        }
        let mut fwd = StreamingHistogram::new(12);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = StreamingHistogram::new(12);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.count(), rev.count());
        assert_eq!(fwd.min(), rev.min());
        assert_eq!(fwd.max(), rev.max());
        let (mf, mr) = (fwd.mean().unwrap(), rev.mean().unwrap());
        assert!((mf - mr).abs() < 1e-9);
    }

    #[test]
    fn mass_points_sum_to_one() {
        let mut h = StreamingHistogram::new(8);
        for i in 0..123 {
            h.insert((i * i % 97) as f64);
        }
        let total: f64 = h.mass_points().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
