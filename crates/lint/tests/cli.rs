//! Drives the built `threesigma-lint` binary end-to-end against synthetic
//! workspaces: exit 0 on a clean tree, exit 1 for each bad fixture dropped
//! into scope (and for stale allowlist entries), exit 2 on usage errors.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_threesigma-lint");

/// A throwaway workspace root with the leaf manifests the layering rule
/// always reads; removed on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("threesigma-lint-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let root = TempRoot(dir);
        for leaf in ["histogram", "milp", "obs"] {
            root.write(
                &format!("crates/{leaf}/Cargo.toml"),
                "[package]\nname = \"leaf\"\n\n[dependencies]\n",
            );
        }
        root
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
        fs::write(path, contents).expect("write fixture");
    }

    fn check(&self) -> (i32, String) {
        self.check_args(&[])
    }

    fn check_args(&self, extra: &[&str]) -> (i32, String) {
        let out = Command::new(BIN)
            .args(["check", "--root"])
            .arg(&self.0)
            .args(extra)
            .output()
            .expect("binary runs");
        (
            out.status.code().expect("exit code"),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn clean_workspace_exits_zero() {
    let root = TempRoot::new("clean");
    root.write(
        "crates/core/src/sched/fx.rs",
        include_str!("fixtures/float_ord_good.rs"),
    );
    root.write(
        "crates/predict/src/fx.rs",
        include_str!("fixtures/thread_rng_good.rs"),
    );
    let (code, stdout) = root.check();
    assert_eq!(code, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("no violations"), "{stdout}");
}

#[test]
fn each_bad_fixture_exits_nonzero() {
    let cases: [(&str, &str, &str, &str); 9] = [
        (
            "hash-iter",
            include_str!("fixtures/hash_iter_bad.rs"),
            "crates/core/src/sched/fx.rs",
            "hash_iter",
        ),
        (
            "time-source",
            include_str!("fixtures/time_source_bad.rs"),
            "crates/core/src/sched/fx.rs",
            "time_source",
        ),
        (
            "thread-rng",
            include_str!("fixtures/thread_rng_bad.rs"),
            "crates/predict/src/fx.rs",
            "thread_rng",
        ),
        (
            "panic",
            include_str!("fixtures/panic_bad.rs"),
            "crates/cluster/src/fx.rs",
            "panic",
        ),
        (
            "float-ord",
            include_str!("fixtures/float_ord_bad.rs"),
            "crates/core/src/sched/fx.rs",
            "float_ord",
        ),
        (
            "layering",
            include_str!("fixtures/layering_bad.toml"),
            "crates/histogram/Cargo.toml",
            "layering",
        ),
        (
            "snapshot-exhaustiveness",
            include_str!("fixtures/snapshot_pair_bad.rs"),
            "crates/predict/src/predictor.rs",
            "snapshot_pair",
        ),
        (
            "wal-ack-ordering",
            include_str!("fixtures/wal_ack_bad.rs"),
            "crates/cli/src/serve.rs",
            "wal_ack",
        ),
        (
            "metrics-consistency",
            include_str!("fixtures/metrics_bad.rs"),
            "crates/obs/src/fx.rs",
            "metrics",
        ),
    ];
    for (rule, fixture, rel, tag) in cases {
        let root = TempRoot::new(tag);
        root.write(rel, fixture);
        let (code, stdout) = root.check();
        assert_eq!(
            code, 1,
            "fixture {tag} should fail the check; stdout:\n{stdout}"
        );
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "fixture {tag} should report rule {rule}; stdout:\n{stdout}"
        );
    }
}

#[test]
fn good_protocol_fixtures_exit_zero() {
    let root = TempRoot::new("protocol-good");
    root.write(
        "crates/predict/src/predictor.rs",
        include_str!("fixtures/snapshot_pair_good.rs"),
    );
    root.write(
        "crates/cli/src/serve.rs",
        include_str!("fixtures/wal_ack_good.rs"),
    );
    root.write(
        "crates/obs/src/fx.rs",
        include_str!("fixtures/metrics_good.rs"),
    );
    let (code, stdout) = root.check();
    assert_eq!(code, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("no violations"), "{stdout}");
}

#[test]
fn json_format_renders_findings_and_keeps_exit_codes() {
    let root = TempRoot::new("json");
    root.write(
        "crates/cli/src/serve.rs",
        include_str!("fixtures/wal_ack_bad.rs"),
    );
    let (code, stdout) = root.check_args(&["--format", "json"]);
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(
        stdout.starts_with('{') && stdout.ends_with("}\n"),
        "{stdout}"
    );
    assert!(stdout.contains("\"clean\": false"), "{stdout}");
    assert!(
        stdout.contains("\"rule\": \"wal-ack-ordering\""),
        "{stdout}"
    );

    let clean = TempRoot::new("json-clean");
    clean.write(
        "crates/cli/src/serve.rs",
        include_str!("fixtures/wal_ack_good.rs"),
    );
    let (code, stdout) = clean.check_args(&["--format", "json"]);
    assert_eq!(code, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("\"clean\": true"), "{stdout}");
    assert!(stdout.contains("\"violations\": []"), "{stdout}");
}

#[test]
fn stale_exclusion_entry_exits_nonzero() {
    let root = TempRoot::new("stale-exclusion");
    root.write(
        "crates/lint/snapshot_exclusions.txt",
        "snapshot-exhaustiveness | Predictor | vanished_field | was audited once\n",
    );
    let (code, stdout) = root.check();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("[stale-exclusion]"), "{stdout}");
}

#[test]
fn stale_allowlist_entry_exits_nonzero() {
    let root = TempRoot::new("stale");
    root.write(
        "crates/lint/panic_allowlist.txt",
        "panic | crates/cluster/src/gone.rs | vanished_fn | unwrap()\n",
    );
    let (code, stdout) = root.check();
    assert_eq!(code, 1, "stdout:\n{stdout}");
    assert!(stdout.contains("[stale-allowlist]"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    let no_command = Command::new(BIN).output().expect("binary runs");
    assert_eq!(no_command.status.code(), Some(2));
    let bad_flag = Command::new(BIN)
        .args(["check", "--frobnicate"])
        .output()
        .expect("binary runs");
    assert_eq!(bad_flag.status.code(), Some(2));
}
