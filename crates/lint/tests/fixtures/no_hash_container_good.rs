//! Good: the ordered rewrite — BTreeMap/BTreeSet everywhere, plus hash
//! containers inside test code, which the rule never scans.

use std::collections::{BTreeMap, BTreeSet};

pub struct Session {
    index_of: BTreeMap<u64, usize>,
}

pub fn decide(live: BTreeSet<u64>) -> usize {
    let mut retries: BTreeMap<usize, f64> = BTreeMap::new();
    retries.insert(0, 1.0);
    live.len() + retries.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_state_may_hash() {
        let mut seen = std::collections::HashSet::new();
        seen.insert(1u64);
        assert_eq!(seen.len(), 1);
    }
}
