//! Known-bad: the wire is acknowledged before the journal append lands
//! (`accepted` precedes `.append(..)`), and a rejection goes unjournaled
//! with no `// lint: no-journal` escape hatch.

pub struct WireStats {
    rejected_parse: u64,
}

pub struct WireMetrics {
    rejected_parse: Gauge,
}

impl WireMetrics {
    pub fn publish(&self, wire: &WireStats) {
        self.rejected_parse.set(wire.rejected_parse);
    }
}

impl Frontend {
    pub fn handle_line(&mut self, line_no: u64, spec: JobSpec) -> Result<(), WalError> {
        self.responder.accepted(line_no, spec.id);
        self.durable.append(WalRecord::Job(spec))?;
        Ok(())
    }

    pub fn reject(&mut self, line_no: u64, reason: RejectReason) {
        self.responder.rejected(line_no, reason);
    }
}
