//! Known-good: timing routed through the sanctioned clock module.
use crate::clock::Stopwatch;

pub fn cycle_budget_exceeded() -> bool {
    let sw = Stopwatch::start();
    sw.elapsed().as_millis() > 5
}
