//! Known-bad: NaN-unstable ordering feeding a scheduling choice.
pub fn pick(mut xs: Vec<(u64, f64)>) -> Option<u64> {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    xs.first().map(|(id, _)| *id)
}
