//! Known-bad: every panicking construct the rule must catch.
pub fn extract(xs: &[f64], i: usize) -> f64 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("second element");
    if i > xs.len() {
        panic!("index out of range");
    }
    first + second + xs[i]
}
