//! Known-good: every `Predictor` field crosses the snapshot/restore
//! boundary, including the historical-best NMAE.

pub struct Snapshot {
    pub clock: u64,
    pub best_nmae: f64,
    pub entries: Vec<(usize, String)>,
}

pub struct Predictor {
    clock: u64,
    entries: Vec<(usize, String)>,
    best_nmae_seen: f64,
}

impl Predictor {
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            clock: self.clock,
            best_nmae: self.best_nmae_seen,
            entries: self.entries.clone(),
        }
    }

    pub fn restore(&mut self, snapshot: Snapshot) {
        self.clock = snapshot.clock;
        self.best_nmae_seen = snapshot.best_nmae;
        self.entries = snapshot.entries;
    }
}
