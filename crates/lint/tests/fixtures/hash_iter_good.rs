//! Known-good: ordered containers, collect-and-sort over a hash map with a
//! justification comment, and lookups (not iteration) on hash receivers.
use std::collections::{BTreeMap, HashMap};

pub struct Sched {
    pub running: BTreeMap<u64, f64>,
}

impl Sched {
    pub fn decide(&self, weights: &HashMap<u64, f64>) -> f64 {
        let mut total = 0.0;
        for v in self.running.values() {
            total += v;
        }
        let mut ids: Vec<u64> = weights.keys().copied().collect(); // lint: sorted — sorted below
        ids.sort_unstable();
        for id in ids {
            total += weights.get(&id).copied().unwrap_or(0.0);
        }
        total
    }
}
