//! Known-good: the hot path degrades through Option/defaults; array
//! literals and `unwrap_or` must not be mistaken for panics, and test code
//! is exempt.
pub fn extract(xs: &[f64], i: usize) -> Option<f64> {
    let ws = [0.25, 0.75];
    let first = xs.first()?;
    let second = xs.get(1)?;
    let blend: f64 = ws.iter().sum();
    Some(first + second + blend + xs.get(i).copied().unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = vec![1.0, 2.0];
        assert_eq!(extract(&xs, 1).unwrap(), 1.0 + 2.0 + 1.0 + 2.0);
        assert_eq!(xs[0], 1.0);
    }
}
