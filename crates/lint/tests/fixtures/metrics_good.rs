//! Known-good: every metric name is snake_case and registered exactly once.

pub struct Metrics {
    cycles: Counter,
    depth: Gauge,
}

impl Metrics {
    pub fn register(rec: &Recorder) -> Self {
        Self {
            cycles: rec.counter("serve_cycles_total", "Completed serve cycles"),
            depth: rec.gauge("serve_queue_depth", "Pending jobs after the last cycle"),
        }
    }
}
