//! Known-good: total ordering over the float key.
pub fn pick(mut xs: Vec<(u64, f64)>) -> Option<u64> {
    xs.sort_by(|a, b| a.1.total_cmp(&b.1));
    xs.first().map(|(id, _)| *id)
}
