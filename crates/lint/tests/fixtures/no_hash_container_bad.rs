//! Bad: hash containers in the service loop, in every position the scanner
//! covers — import, struct field, fn signature, local binding.

use std::collections::HashMap;

pub struct Session {
    index_of: HashMap<u64, usize>,
}

// lint: sorted
pub fn decide(live: HashSet<u64>) -> usize {
    let mut retries: HashMap<usize, f64> = HashMap::new();
    retries.insert(0, 1.0);
    live.len() + retries.len()
}
