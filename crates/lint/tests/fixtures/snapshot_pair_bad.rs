//! Known-bad: `best_nmae_seen` is learned state but is neither serialized
//! by `snapshot` nor rebuilt by `restore` — the PR 8 "best-NMAE silently
//! missing from `Snapshot`" regression shape.

pub struct Snapshot {
    pub clock: u64,
    pub entries: Vec<(usize, String)>,
}

pub struct Predictor {
    clock: u64,
    entries: Vec<(usize, String)>,
    best_nmae_seen: f64,
}

impl Predictor {
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            clock: self.clock,
            entries: self.entries.clone(),
        }
    }

    pub fn restore(&mut self, snapshot: Snapshot) {
        self.clock = snapshot.clock;
        self.entries = snapshot.entries;
    }
}
