//! Known-bad: nondeterministic iteration over hash containers in
//! decision-path code — a field, a parameter, and a local binding.
use std::collections::{HashMap, HashSet};

pub struct Sched {
    pub running: HashMap<u64, f64>,
}

impl Sched {
    pub fn decide(&self, live: &HashSet<u64>) -> f64 {
        let mut total = 0.0;
        for v in self.running.values() {
            total += v;
        }
        for id in live {
            total += *id as f64;
        }
        let mut seen: HashSet<u64> = HashSet::new();
        seen.retain(|_| true);
        total
    }
}
