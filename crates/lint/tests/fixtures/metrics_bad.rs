//! Known-bad: `serve_cycles_total` is registered twice, and the queue-depth
//! gauge name is not snake_case.

pub struct Metrics {
    cycles: Counter,
    cycles_again: Counter,
    depth: Gauge,
}

impl Metrics {
    pub fn register(rec: &Recorder) -> Self {
        Self {
            cycles: rec.counter("serve_cycles_total", "Completed serve cycles"),
            cycles_again: rec.counter("serve_cycles_total", "Registered a second time"),
            depth: rec.gauge("servQueueDepth", "Pending jobs after the last cycle"),
        }
    }
}
