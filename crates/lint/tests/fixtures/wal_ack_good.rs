//! Known-good: the journal append dominates the acceptance ack, and the
//! typed-rejection path carries the `// lint: no-journal` escape hatch.

pub struct WireStats {
    rejected_parse: u64,
}

pub struct WireMetrics {
    rejected_parse: Gauge,
}

impl WireMetrics {
    pub fn publish(&self, wire: &WireStats) {
        self.rejected_parse.set(wire.rejected_parse);
    }
}

impl Frontend {
    pub fn handle_line(&mut self, line_no: u64, spec: JobSpec) -> Result<(), WalError> {
        self.durable.append(WalRecord::Job(spec.clone()))?;
        self.responder.accepted(line_no, spec.id);
        Ok(())
    }

    pub fn reject(&mut self, line_no: u64, reason: RejectReason) {
        // lint: no-journal
        self.responder.rejected(line_no, reason);
    }
}
