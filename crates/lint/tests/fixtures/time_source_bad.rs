//! Known-bad: direct wall-clock reads in decision-path code.
use std::time::{Instant, SystemTime};

pub fn cycle_budget_exceeded() -> bool {
    let start = Instant::now();
    let _wall = SystemTime::now();
    start.elapsed().as_millis() > 5
}
