//! Fixture suite: each rule must trip on its known-bad snippet and stay
//! silent on the idiomatic rewrite, scope filtering must hold, and the
//! shipped workspace (including its allowlist) must check clean.

use std::path::{Path, PathBuf};

use threesigma_lint::{allowlist, check_file, check_workspace, config, facts, rules, scan};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn read_workspace_file(rel: &str) -> String {
    std::fs::read_to_string(workspace_root().join(rel)).expect("workspace file reads")
}

fn parse(rel: &str, src: &str) -> scan::ParsedFile {
    scan::parse_source(rel, src).expect("fixture must parse")
}

fn patterns(violations: &[threesigma_lint::Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.pattern.as_str()).collect()
}

#[test]
fn hash_iter_trips_on_bad_fixture() {
    let p = parse(
        "crates/core/src/sched/fx.rs",
        include_str!("fixtures/hash_iter_bad.rs"),
    );
    let found = rules::hash_iter(&p);
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().all(|v| v.rule == "hash-iter"));
    let pats = patterns(&found);
    assert!(pats.contains(&"running.values()"), "{pats:?}");
    assert!(pats.contains(&"for .. in live"), "{pats:?}");
    assert!(pats.contains(&"seen.retain()"), "{pats:?}");
    assert!(found.iter().all(|v| v.func == "decide"));
}

#[test]
fn hash_iter_passes_good_fixture() {
    let p = parse(
        "crates/core/src/sched/fx.rs",
        include_str!("fixtures/hash_iter_good.rs"),
    );
    let found = rules::hash_iter(&p);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn no_hash_container_trips_on_every_position_despite_justification() {
    let p = parse(
        "crates/cluster/src/serve.rs",
        include_str!("fixtures/no_hash_container_bad.rs"),
    );
    let found = rules::no_hash_container(&p);
    // One each for: the `use` import, the struct field, the fn signature,
    // and two in the body (`retries` type + `HashMap::new()`). The
    // `// lint: sorted` comment above `decide` must not clear anything.
    assert_eq!(found.len(), 5, "{found:?}");
    assert!(found.iter().all(|v| v.rule == "no-hash-container"));
    let pats = patterns(&found);
    assert!(pats.contains(&"HashMap"), "{pats:?}");
    assert!(pats.contains(&"HashSet"), "{pats:?}");
    assert!(
        found.iter().any(|v| v.func == "<field index_of>"),
        "{found:?}"
    );
    assert!(found.iter().any(|v| v.func == "decide"), "{found:?}");
}

#[test]
fn no_hash_container_passes_good_fixture_and_only_runs_in_serve_scope() {
    let src = include_str!("fixtures/no_hash_container_good.rs");
    let p = parse("crates/cluster/src/engine.rs", src);
    let found = rules::no_hash_container(&p);
    assert!(found.is_empty(), "{found:?}");
    // The bad fixture parsed outside the engine/serve scope is only subject
    // to the softer hash-iter rule, which the driver applies separately.
    let bad = include_str!("fixtures/no_hash_container_bad.rs");
    let elsewhere = check_file(&parse("crates/core/src/sched/fx.rs", bad));
    assert!(
        elsewhere.iter().all(|v| v.rule != "no-hash-container"),
        "{elsewhere:?}"
    );
    let in_scope = check_file(&parse("crates/cluster/src/engine.rs", bad));
    assert!(
        in_scope.iter().any(|v| v.rule == "no-hash-container"),
        "{in_scope:?}"
    );
}

#[test]
fn time_source_trips_on_bad_fixture() {
    let p = parse(
        "crates/core/src/sched/fx.rs",
        include_str!("fixtures/time_source_bad.rs"),
    );
    let found = rules::time_source(&p);
    let pats = patterns(&found);
    assert!(pats.contains(&"Instant::now"), "{pats:?}");
    assert!(pats.contains(&"SystemTime"), "{pats:?}");
}

#[test]
fn time_source_passes_good_fixture_and_clock_module() {
    let p = parse(
        "crates/core/src/sched/fx.rs",
        include_str!("fixtures/time_source_good.rs"),
    );
    assert!(rules::time_source(&p).is_empty());
    // The bad fixture parsed *as* the sanctioned clock module is exempt.
    let clock = parse(
        "crates/core/src/sched/clock.rs",
        include_str!("fixtures/time_source_bad.rs"),
    );
    assert!(rules::time_source(&clock).is_empty());
}

#[test]
fn thread_rng_trips_on_bad_fixture_only() {
    let bad = parse(
        "crates/predict/src/fx.rs",
        include_str!("fixtures/thread_rng_bad.rs"),
    );
    let found = rules::os_seeded_rng(&bad);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "thread-rng");
    let good = parse(
        "crates/predict/src/fx.rs",
        include_str!("fixtures/thread_rng_good.rs"),
    );
    assert!(rules::os_seeded_rng(&good).is_empty());
}

#[test]
fn panic_rule_trips_on_every_bad_construct() {
    let p = parse(
        "crates/cluster/src/fx.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    let found = rules::panic_safety(&p);
    assert_eq!(found.len(), 4, "{found:?}");
    let pats = patterns(&found);
    assert!(pats.contains(&"unwrap()"), "{pats:?}");
    assert!(pats.contains(&"expect("), "{pats:?}");
    assert!(pats.contains(&"panic!"), "{pats:?}");
    assert!(pats.contains(&"xs["), "{pats:?}");
}

#[test]
fn panic_rule_passes_good_fixture_including_test_code() {
    let p = parse(
        "crates/cluster/src/fx.rs",
        include_str!("fixtures/panic_good.rs"),
    );
    let found = rules::panic_safety(&p);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn float_ord_trips_on_bad_fixture_only() {
    let bad = parse(
        "crates/core/src/sched/fx.rs",
        include_str!("fixtures/float_ord_bad.rs"),
    );
    let found = rules::float_ordering(&bad);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "float-ord");
    let good = parse(
        "crates/core/src/sched/fx.rs",
        include_str!("fixtures/float_ord_good.rs"),
    );
    assert!(rules::float_ordering(&good).is_empty());
}

#[test]
fn layering_trips_on_contract_violations_only() {
    let found = rules::layering(
        "crates/histogram/Cargo.toml",
        include_str!("fixtures/layering_bad.toml"),
        &["serde"],
    );
    assert_eq!(found.len(), 2, "{found:?}");
    let pats = patterns(&found);
    assert!(pats.contains(&"rand"), "{pats:?}");
    assert!(pats.contains(&"threesigma-obs"), "{pats:?}");
    // dev-dependencies are outside the contract's scope.
    let good = rules::layering(
        "crates/histogram/Cargo.toml",
        include_str!("fixtures/layering_good.toml"),
        &["serde"],
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn scope_config_limits_where_rules_run() {
    // The panic fixture only counts in hot-path scopes: flagged when it
    // lives under crates/cluster/src, ignored under crates/obs/src.
    let src = include_str!("fixtures/panic_bad.rs");
    let hot = check_file(&parse("crates/cluster/src/fx.rs", src));
    assert!(hot.iter().any(|v| v.rule == "panic"), "{hot:?}");
    let leaf = check_file(&parse("crates/obs/src/fx.rs", src));
    assert!(leaf.iter().all(|v| v.rule != "panic"), "{leaf:?}");
}

#[test]
fn allowlist_suppresses_matches_and_reports_stale_entries() {
    let p = parse(
        "crates/cluster/src/fx.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    let entries = allowlist::parse(
        "panic | crates/cluster/src/fx.rs | extract | unwrap()\n\
         panic | crates/cluster/src/fx.rs | extract | xs[\n\
         panic | crates/cluster/src/fx.rs | deleted_fn | unwrap()\n",
    )
    .expect("allowlist parses");
    let (kept, stale) = allowlist::apply(&entries, rules::panic_safety(&p));
    let pats = patterns(&kept);
    assert_eq!(pats, vec!["expect(", "panic!"], "{kept:?}");
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert_eq!(stale[0].func, "deleted_fn");
}

#[test]
fn named_fields_survive_generics_and_fn_pointer_types() {
    let p = parse(
        "crates/core/src/x.rs",
        "pub struct S<T: Ord> {\n\
         \x20   pub map: BTreeMap<String, Vec<(u64, T)>>,\n\
         \x20   hook: fn(usize) -> bool,\n\
         \x20   pub tail: f64,\n\
         }\n",
    );
    let s = p.structs.iter().find(|s| s.name == "S").expect("struct S");
    let names: Vec<&str> = s.fields.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["map", "hook", "tail"], "{:?}", s.fields);
    // Lines are 1-based and point at the field, not the struct keyword.
    assert_eq!(s.fields[0].1, 2, "{:?}", s.fields);
    assert_eq!(s.fields[2].1, 4, "{:?}", s.fields);
}

#[test]
fn snapshot_exhaustiveness_trips_on_bad_pair_fixture_only() {
    let bad = vec![parse(
        "crates/predict/src/predictor.rs",
        include_str!("fixtures/snapshot_pair_bad.rs"),
    )];
    let found = facts::snapshot_exhaustiveness(&bad, config::SNAPSHOT_PAIRS);
    // One read-side and one write-side finding for the dropped field.
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|v| v.rule == "snapshot-exhaustiveness"));
    assert!(
        found.iter().all(|v| v.pattern == "best_nmae_seen"),
        "{found:?}"
    );
    let good = vec![parse(
        "crates/predict/src/predictor.rs",
        include_str!("fixtures/snapshot_pair_good.rs"),
    )];
    let found = facts::snapshot_exhaustiveness(&good, config::SNAPSHOT_PAIRS);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn wal_ack_ordering_trips_on_bad_fixture_only() {
    let bad = vec![parse(
        "crates/cli/src/serve.rs",
        include_str!("fixtures/wal_ack_bad.rs"),
    )];
    let found = facts::wal_ack_ordering(&bad);
    // `accepted` fires before the append; `rejected` has no escape hatch.
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|v| v.rule == "wal-ack-ordering"));
    let pats = patterns(&found);
    assert!(pats.contains(&"accepted("), "{pats:?}");
    assert!(pats.contains(&"rejected("), "{pats:?}");
    let good = vec![parse(
        "crates/cli/src/serve.rs",
        include_str!("fixtures/wal_ack_good.rs"),
    )];
    assert!(facts::wal_ack_ordering(&good).is_empty());
}

#[test]
fn metrics_consistency_trips_on_bad_fixture_only() {
    let bad = vec![parse(
        "crates/obs/src/fx.rs",
        include_str!("fixtures/metrics_bad.rs"),
    )];
    let found = facts::metrics_consistency(&bad, &[]);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|v| v.rule == "metrics-consistency"));
    let pats = patterns(&found);
    assert!(pats.contains(&"serve_cycles_total"), "duplicate: {pats:?}");
    assert!(pats.contains(&"servQueueDepth"), "snake_case: {pats:?}");
    let good = vec![parse(
        "crates/obs/src/fx.rs",
        include_str!("fixtures/metrics_good.rs"),
    )];
    assert!(facts::metrics_consistency(&good, &[]).is_empty());
}

#[test]
fn every_shipped_snapshot_pair_resolves() {
    // The rule must go red (not silent) if a pair's struct or fns are
    // renamed; here we prove the shipped pair table still resolves, so the
    // only findings on the real tree are field-level (all audited in the
    // exclusions file).
    let files: Vec<scan::ParsedFile> = config::SNAPSHOT_PAIRS
        .iter()
        .map(|pair| parse(pair.file_suffix, &read_workspace_file(pair.file_suffix)))
        .collect();
    let found = facts::snapshot_exhaustiveness(&files, config::SNAPSHOT_PAIRS);
    let unresolved: Vec<_> = found
        .iter()
        .filter(|v| v.pattern.starts_with("struct ") || v.pattern.starts_with("fns for "))
        .collect();
    assert!(unresolved.is_empty(), "{unresolved:?}");
}

#[test]
fn deleting_a_snapshot_field_read_turns_the_real_tree_red() {
    let rel = "crates/predict/src/predictor.rs";
    let src = read_workspace_file(rel);
    let clean = facts::snapshot_exhaustiveness(&[parse(rel, &src)], config::SNAPSHOT_PAIRS);
    assert!(
        clean.iter().all(|v| v.pattern != "best_nmae_seen"),
        "{clean:?}"
    );
    // The PR 8 regression shape: the field read silently vanishes from
    // `snapshot()` while the struct keeps the field.
    let mutated = src.replace("best_nmae: self.best_nmae_seen,", "best_nmae: None,");
    assert_ne!(src, mutated, "mutation target must exist");
    let found = facts::snapshot_exhaustiveness(&[parse(rel, &mutated)], config::SNAPSHOT_PAIRS);
    assert!(
        found.iter().any(|v| v.pattern == "best_nmae_seen"),
        "{found:?}"
    );
}

#[test]
fn reordering_journal_append_after_ack_turns_the_real_tree_red() {
    let rel = "crates/cli/src/serve.rs";
    let src = read_workspace_file(rel);
    assert!(facts::wal_ack_ordering(&[parse(rel, &src)]).is_empty());
    // Renaming the append is ordering-equivalent to moving it after the
    // ack: the ack is no longer dominated by a journal write.
    let mutated = src.replace(".append(WalRecord::Job", ".append_later(WalRecord::Job");
    assert_ne!(src, mutated, "mutation target must exist");
    let found = facts::wal_ack_ordering(&[parse(rel, &mutated)]);
    assert!(found.iter().any(|v| v.pattern == "accepted("), "{found:?}");
}

#[test]
fn workspace_json_report_is_byte_deterministic() {
    let root = workspace_root();
    let a = check_workspace(&root).expect("first run");
    let b = check_workspace(&root).expect("second run");
    assert_eq!(
        threesigma_lint::render_json(&a),
        threesigma_lint::render_json(&b)
    );
}

#[test]
fn shipped_workspace_checks_clean_with_no_stale_allowlist() {
    let root = workspace_root();
    let report = check_workspace(&root).expect("workspace check runs");
    assert!(report.files_scanned > 40, "{} files", report.files_scanned);
    assert!(
        report.stale_allowlist.is_empty(),
        "stale allowlist entries: {:?}",
        report.stale_allowlist
    );
    assert!(
        report.stale_exclusions.is_empty(),
        "stale exclusion entries: {:?}",
        report.stale_exclusions
    );
    assert!(
        report.reachable_fns.is_some(),
        "the real tree must declare decision roots"
    );
    assert!(
        report.violations.is_empty(),
        "workspace violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.clean());
}
