//! Phase 1 of the workspace check: a crate-level call graph over every
//! non-test function, plus reachability from the decision-path roots.
//!
//! Resolution is deliberately conservative and name-based (the vendored
//! `syn` does not type-check), erring toward over-approximation *inside*
//! the workspace and under-approximation outside it:
//!
//! * `Type::name(..)` — resolves to functions named `name` in `impl`/`trait`
//!   blocks whose header mentions `Type` as a word; lowercase qualifiers
//!   (`module::name(..)`) also match free functions in files whose stem is
//!   the qualifier. A qualifier naming nothing in the workspace (std,
//!   external) contributes no edge.
//! * `Self::name(..)` — resolves within the caller's own `impl` context.
//! * `.name(..)` — method call: resolves to every associated function named
//!   `name` in any `impl`/`trait` block (dynamic dispatch and trait objects
//!   make anything tighter unsound here).
//! * `name(..)` — bare call: resolves to free functions named `name` only.
//! * `name!(..)` — macro invocations never form edges.
//!
//! All containers are ordered (`BTreeMap`/`BTreeSet`), so graph construction
//! and traversal are deterministic: two runs over the same tree render
//! byte-identical findings.

use std::collections::{BTreeMap, BTreeSet};

use proc_macro2::Delimiter;

use crate::config::RootSpec;
use crate::scan::{FnSite, ParsedFile, Tok};

/// Keywords that may precede a parenthesis without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "in", "as", "move", "else", "let",
    "mut", "ref", "break", "continue", "where", "impl", "dyn",
];

/// One call-graph node (a non-test function).
#[derive(Debug)]
struct Symbol {
    file: String,
    func: String,
    line: usize,
    impl_ctx: Option<String>,
}

/// The workspace call graph with its reachable set.
#[derive(Debug)]
pub struct CallGraph {
    /// Root symbol indices (decision-path entry points).
    roots: Vec<usize>,
    /// `(file, fn line)` keys of every function reachable from a root.
    reachable: BTreeSet<(String, usize)>,
}

impl CallGraph {
    /// True when the workspace declared at least one decision-path root.
    /// Synthetic fixture trees without roots fall back to path scoping.
    pub fn has_roots(&self) -> bool {
        !self.roots.is_empty()
    }

    /// Number of functions reachable from the roots.
    pub fn reachable_len(&self) -> usize {
        self.reachable.len()
    }

    /// True when the fn at (`rel`, `site.line`) is reachable from a root.
    pub fn is_reachable(&self, rel: &str, site: &FnSite) -> bool {
        self.reachable.contains(&(rel.to_string(), site.line))
    }
}

fn header_words(header: &str) -> BTreeSet<&str> {
    header
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
        .collect()
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
}

/// Builds the call graph over `files` and computes reachability from the
/// roots described by `root_specs`.
pub fn build(files: &[ParsedFile], root_specs: &[RootSpec]) -> CallGraph {
    let mut syms = Vec::new();
    // name -> indices of (free fns, associated fns) carrying that name.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut method_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for file in files {
        for f in file.fns.iter().filter(|f| !f.is_test) {
            let id = syms.len();
            syms.push(Symbol {
                file: file.rel.clone(),
                func: f.func.clone(),
                line: f.line,
                impl_ctx: f.impl_ctx.clone(),
            });
            match &syms[id].impl_ctx {
                Some(_) => method_by_name.entry(&f.func).or_default().push(id),
                None => free_by_name.entry(&f.func).or_default().push(id),
            }
        }
    }
    // Stable index from (file, line) to symbol id, for per-fn edge walks.
    let by_site: BTreeMap<(&str, usize), usize> = syms
        .iter()
        .enumerate()
        .map(|(i, s)| ((s.file.as_str(), s.line), i))
        .collect();

    let table = SymbolTable {
        syms: &syms,
        free_by_name: &free_by_name,
        method_by_name: &method_by_name,
    };
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); syms.len()];
    for file in files {
        for f in file.fns.iter().filter(|f| !f.is_test) {
            let Some(&caller) = by_site.get(&(file.rel.as_str(), f.line)) else {
                continue;
            };
            let mut set = BTreeSet::new();
            collect_edges(&f.body, caller, f.impl_ctx.as_deref(), &table, &mut set);
            edges[caller] = set;
        }
    }

    let mut roots = Vec::new();
    for (i, s) in syms.iter().enumerate() {
        for spec in root_specs {
            if s.func != spec.func {
                continue;
            }
            let file_ok = spec
                .file_suffix
                .map(|suf| s.file.ends_with(suf))
                .unwrap_or(true);
            let impl_ok = spec
                .impl_word
                .map(|w| {
                    s.impl_ctx
                        .as_deref()
                        .map(|h| header_words(h).contains(w))
                        .unwrap_or(false)
                })
                .unwrap_or(true);
            if file_ok && impl_ok {
                roots.push(i);
                break;
            }
        }
    }

    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut frontier: Vec<usize> = roots.clone();
    while let Some(u) = frontier.pop() {
        for &v in &edges[u] {
            if seen.insert(v) {
                frontier.push(v);
            }
        }
    }
    let reachable = seen
        .iter()
        .map(|&i| (syms[i].file.clone(), syms[i].line))
        .collect();
    CallGraph { roots, reachable }
}

/// The phase-1 symbol lookup tables shared by the edge-resolution passes.
struct SymbolTable<'a> {
    syms: &'a [Symbol],
    free_by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    method_by_name: &'a BTreeMap<&'a str, Vec<usize>>,
}

fn push_qualified(
    q: &str,
    name: &str,
    caller: usize,
    caller_ctx: Option<&str>,
    table: &SymbolTable<'_>,
    out: &mut BTreeSet<usize>,
) {
    let syms = table.syms;
    if q == "Self" {
        // Resolve within the caller's own impl context and file.
        if let Some(ids) = table.method_by_name.get(name) {
            for &id in ids {
                if syms[id].file == syms[caller].file && syms[id].impl_ctx.as_deref() == caller_ctx
                {
                    out.insert(id);
                }
            }
        }
        return;
    }
    if let Some(ids) = table.method_by_name.get(name) {
        for &id in ids {
            let hit = syms[id]
                .impl_ctx
                .as_deref()
                .map(|h| header_words(h).contains(q))
                .unwrap_or(false);
            if hit {
                out.insert(id);
            }
        }
    }
    // Module-qualified free call: `options::generate(..)`.
    if q.chars().next().is_some_and(|c| c.is_lowercase()) {
        if let Some(ids) = table.free_by_name.get(name) {
            for &id in ids {
                if file_stem(&syms[id].file) == q {
                    out.insert(id);
                }
            }
        }
    }
}

fn collect_edges(
    toks: &[Tok],
    caller: usize,
    caller_ctx: Option<&str>,
    table: &SymbolTable<'_>,
    out: &mut BTreeSet<usize>,
) {
    for i in 0..toks.len() {
        let (Some(Tok::Ident(name, _)), Some(next)) = (toks.get(i), toks.get(i + 1)) else {
            continue;
        };
        // `name!(..)` is a macro, `name::<..>` handled at the turbofish's
        // closing position; only direct `name(` shapes form edges here.
        if !matches!(next, Tok::Open(Delimiter::Parenthesis, _)) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // Qualified: `Q :: name (` — look back over the `::`.
        if i >= 3 {
            if let (Some(Tok::Ident(q, _)), Some(Tok::Punct(':', _)), Some(Tok::Punct(':', _))) =
                (toks.get(i - 3), toks.get(i - 2), toks.get(i - 1))
            {
                push_qualified(q, name, caller, caller_ctx, table, out);
                continue;
            }
        }
        match toks.get(i.wrapping_sub(1)) {
            // `.name(` — method call on some receiver.
            Some(Tok::Punct('.', _)) if i > 0 => {
                if let Some(ids) = table.method_by_name.get(name.as_str()) {
                    out.extend(ids.iter().copied());
                }
            }
            // `:: name (` with a non-ident qualifier (generic path tail):
            // skip rather than guess.
            Some(Tok::Punct(':', _)) => {}
            // Bare call: free functions only.
            _ => {
                if let Some(ids) = table.free_by_name.get(name.as_str()) {
                    out.extend(ids.iter().copied());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DECISION_ROOTS;
    use crate::scan::parse_source;

    fn graph(sources: &[(&str, &str)]) -> CallGraph {
        let files: Vec<ParsedFile> = sources
            .iter()
            .map(|(rel, src)| parse_source(rel, src).expect("fixture parses"))
            .collect();
        build(&files, DECISION_ROOTS)
    }

    fn reach(g: &CallGraph, files: &[ParsedFile], rel: &str, func: &str) -> bool {
        let f = files
            .iter()
            .find(|p| p.rel == rel)
            .and_then(|p| p.fns.iter().find(|f| f.func == func))
            .expect("fn exists");
        g.is_reachable(rel, f)
    }

    #[test]
    fn reachability_follows_calls_from_scheduler_root() {
        let srcs = [
            (
                "crates/core/src/sched/threesigma.rs",
                "impl Scheduler for ThreeSigmaScheduler {\n\
                     fn schedule(&mut self) { helper(); self.rank(); }\n\
                 }\n\
                 impl ThreeSigmaScheduler {\n\
                     fn rank(&self) { util::score(); }\n\
                 }\n\
                 fn helper() {}\n\
                 fn orphan() {}\n",
            ),
            (
                "crates/core/src/sched/util.rs",
                "pub fn score() {}\npub fn unused() {}\n",
            ),
        ];
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(rel, src)| parse_source(rel, src).unwrap())
            .collect();
        let g = build(&files, DECISION_ROOTS);
        assert!(g.has_roots());
        let ts = "crates/core/src/sched/threesigma.rs";
        let util = "crates/core/src/sched/util.rs";
        assert!(reach(&g, &files, ts, "schedule"));
        assert!(reach(&g, &files, ts, "helper"), "bare call resolves");
        assert!(reach(&g, &files, ts, "rank"), "method call resolves");
        assert!(reach(&g, &files, util, "score"), "module-qualified call");
        assert!(!reach(&g, &files, ts, "orphan"));
        assert!(!reach(&g, &files, util, "unused"));
    }

    #[test]
    fn test_code_and_external_calls_form_no_nodes_or_edges() {
        let g = graph(&[(
            "crates/core/src/sched/x.rs",
            "fn schedule() { BTreeMap::new(); std::mem::take(&mut 1); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn schedule() { panic!() }\n\
             }\n",
        )]);
        // The free `schedule` has no Scheduler impl context, so no roots:
        // qualified calls into std resolved to nothing and test fns are
        // invisible.
        assert!(!g.has_roots());
        assert_eq!(g.reachable_len(), 0);
    }

    #[test]
    fn solver_and_pump_roots_recognised() {
        let g = graph(&[
            (
                "crates/milp/src/tiers.rs",
                "impl Solver for BranchAndBound { fn solve(&self) {} }\n",
            ),
            (
                "crates/cluster/src/serve.rs",
                "impl ServeSession { fn pump_until(&mut self) {} }\n",
            ),
            ("crates/cluster/src/engine.rs", "pub fn run_observed() {}\n"),
        ]);
        assert!(g.has_roots());
        assert_eq!(g.reachable_len(), 3);
    }
}
