//! Lint scopes: which directories each rule family applies to.
//!
//! Paths are workspace-relative prefixes. A file is "in scope" when its
//! workspace-relative path starts with one of the prefixes; `tests/`,
//! `benches/`, `examples/`, and `fixtures/` path components are always
//! excluded, as is `#[cfg(test)]`/`#[test]` code (handled at the AST layer).

/// Decision-path scopes: code whose iteration order, clock reads, or float
/// comparisons feed scheduling decisions and simtest digests. The
/// hash-iteration, time-source, and float-ordering rules apply here.
pub const DECISION_SCOPES: &[&str] = &[
    "crates/core/src/sched",
    "crates/cluster/src",
    "crates/milp/src",
    "crates/predict/src",
    "crates/simtest/src",
];

/// Hot-path scopes: code that must degrade through typed errors rather than
/// panic (the AST-aware replacement for the old CI grep). The panic-safety
/// rule applies here.
pub const HOT_PATH_SCOPES: &[&str] = &["crates/cluster/src", "crates/core/src/sched"];

/// Service-loop scopes: the long-running engine/serve modules, where hash
/// containers are banned outright — not just their iteration. The serve
/// loop's retirement digest and snapshot restart-equivalence contract
/// require every container it touches to have a total iteration order, so
/// the no-hash-container rule applies here with no justification escape
/// hatch.
pub const NO_HASH_CONTAINER_SCOPES: &[&str] = &[
    "crates/cluster/src/engine.rs",
    "crates/cluster/src/serve.rs",
];

/// The only modules allowed to read wall-clock time (`Instant::now`). Both
/// wrap the clock behind a `Stopwatch` so budget checks stay greppable and
/// mockable; `milp` gets its own copy because it is a zero-dependency leaf.
pub const CLOCK_ALLOWLIST: &[&str] =
    &["crates/core/src/sched/clock.rs", "crates/milp/src/clock.rs"];

/// Justification comment that clears a hash-iteration finding when placed on
/// the offending line or the line directly above it.
pub const JUSTIFICATION: &str = "lint: sorted";

/// A leaf crate's dependency contract, checked from its `Cargo.toml`.
pub struct LeafContract {
    /// Workspace-relative manifest path.
    pub manifest: &'static str,
    /// The complete set of allowed `[dependencies]` keys.
    pub allowed: &'static [&'static str],
}

/// Leaf crates must stay obs-free and dependency-clean so they can be reused
/// (and reasoned about) in isolation.
pub const LEAF_CONTRACTS: &[LeafContract] = &[
    LeafContract {
        manifest: "crates/histogram/Cargo.toml",
        allowed: &["serde"],
    },
    LeafContract {
        manifest: "crates/milp/Cargo.toml",
        allowed: &[],
    },
    LeafContract {
        manifest: "crates/obs/Cargo.toml",
        allowed: &[],
    },
];

/// Workspace-relative path of the checked-in panic allowlist.
pub const PANIC_ALLOWLIST_PATH: &str = "crates/lint/panic_allowlist.txt";

/// True when `rel` (workspace-relative, `/`-separated) falls under any of
/// the scope prefixes and is not test/bench/example/fixture support code.
pub fn in_scope(rel: &str, scopes: &[&str]) -> bool {
    if rel
        .split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
    {
        return false;
    }
    scopes.iter().any(|s| rel.starts_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching() {
        assert!(in_scope("crates/cluster/src/engine.rs", DECISION_SCOPES));
        assert!(in_scope(
            "crates/core/src/sched/threesigma.rs",
            DECISION_SCOPES
        ));
        assert!(!in_scope("crates/core/src/dist.rs", DECISION_SCOPES));
        assert!(!in_scope("crates/cluster/tests/sim.rs", DECISION_SCOPES));
        assert!(!in_scope(
            "crates/lint/tests/fixtures/bad_hash_iter.rs",
            DECISION_SCOPES
        ));
    }
}
