//! Lint scopes: which directories each rule family applies to.
//!
//! Paths are workspace-relative prefixes. A file is "in scope" when its
//! workspace-relative path starts with one of the prefixes; `tests/`,
//! `benches/`, `examples/`, and `fixtures/` path components are always
//! excluded, as is `#[cfg(test)]`/`#[test]` code (handled at the AST layer).

/// Decision-path scopes: code whose iteration order, clock reads, or float
/// comparisons feed scheduling decisions and simtest digests. The
/// hash-iteration, time-source, and float-ordering rules apply here.
pub const DECISION_SCOPES: &[&str] = &[
    "crates/core/src/sched",
    "crates/cluster/src",
    "crates/milp/src",
    "crates/predict/src",
    "crates/simtest/src",
];

/// Hot-path scopes: code that must degrade through typed errors rather than
/// panic (the AST-aware replacement for the old CI grep). The panic-safety
/// rule applies here.
pub const HOT_PATH_SCOPES: &[&str] = &["crates/cluster/src", "crates/core/src/sched"];

/// Service-loop scopes: the long-running engine/serve modules, where hash
/// containers are banned outright — not just their iteration. The serve
/// loop's retirement digest and snapshot restart-equivalence contract
/// require every container it touches to have a total iteration order, so
/// the no-hash-container rule applies here with no justification escape
/// hatch.
pub const NO_HASH_CONTAINER_SCOPES: &[&str] = &[
    "crates/cluster/src/engine.rs",
    "crates/cluster/src/serve.rs",
];

/// The only modules allowed to read wall-clock time (`Instant::now`). Both
/// wrap the clock behind a `Stopwatch` so budget checks stay greppable and
/// mockable; `milp` gets its own copy because it is a zero-dependency leaf.
pub const CLOCK_ALLOWLIST: &[&str] =
    &["crates/core/src/sched/clock.rs", "crates/milp/src/clock.rs"];

/// Justification comment that clears a hash-iteration finding when placed on
/// the offending line or the line directly above it.
pub const JUSTIFICATION: &str = "lint: sorted";

/// Escape-hatch comment for wire acknowledgments that are deliberately not
/// journaled (typed rejections: nothing was admitted, so there is nothing
/// to replay). Placed on the ack line or the line directly above it.
pub const NO_JOURNAL_JUSTIFICATION: &str = "lint: no-journal";

/// A decision-path root: an entry point whose transitive callees form the
/// scope of the reachability-driven rules (hash-iter, float-ord, panic,
/// time-source).
pub struct RootSpec {
    /// The function's name.
    pub func: &'static str,
    /// Required workspace-relative file suffix, if the root is file-bound.
    pub file_suffix: Option<&'static str>,
    /// Required word in the enclosing `impl`/`trait` header, if trait-bound.
    pub impl_word: Option<&'static str>,
}

/// The decision-path roots: every `Scheduler::schedule` impl, every milp
/// `Solver` impl, the option generators, and the engine/serve pumps. The
/// reachability rules apply to everything these can transitively call.
pub const DECISION_ROOTS: &[RootSpec] = &[
    RootSpec {
        func: "schedule",
        file_suffix: None,
        impl_word: Some("Scheduler"),
    },
    RootSpec {
        func: "solve",
        file_suffix: None,
        impl_word: Some("Solver"),
    },
    RootSpec {
        func: "solve_with_warm_start",
        file_suffix: None,
        impl_word: Some("Solver"),
    },
    RootSpec {
        func: "generate",
        file_suffix: Some("core/src/sched/options.rs"),
        impl_word: None,
    },
    RootSpec {
        func: "generate_sharded",
        file_suffix: Some("core/src/sched/options.rs"),
        impl_word: None,
    },
    RootSpec {
        func: "run_observed",
        file_suffix: Some("cluster/src/engine.rs"),
        impl_word: None,
    },
    RootSpec {
        func: "pump_until",
        file_suffix: Some("cluster/src/serve.rs"),
        impl_word: None,
    },
];

/// Crates whose reachable functions the panic rule covers (typed-error
/// discipline); the solver and leaf crates keep their own error idioms.
pub const PANIC_DOMAINS: &[&str] = &["crates/cluster/src", "crates/core/src"];

/// True when `rel` participates in the reachability-driven determinism rules
/// (everything but the linter itself, whose sources quote rule patterns).
pub fn in_reach_domain(rel: &str) -> bool {
    rel.starts_with("crates/") && !rel.starts_with("crates/lint/")
}

/// One state-struct/snapshot pairing for the snapshot-exhaustiveness rule:
/// every named field of `strukt` (in the file ending with `file_suffix`)
/// must be mentioned in at least one read fn and one write fn, or carry an
/// audited entry in the exclusions file.
pub struct SnapshotPair {
    /// The state struct's name.
    pub strukt: &'static str,
    /// Workspace-relative suffix of the file declaring the struct.
    pub file_suffix: &'static str,
    /// Snapshot-side fns as (fn name, enclosing impl word).
    pub reads: &'static [(&'static str, &'static str)],
    /// Restore-side fns as (fn name, enclosing impl word).
    pub writes: &'static [(&'static str, &'static str)],
}

/// The audited snapshot/restore pairings. `WireStats` is a republish pair:
/// its counters must all reach the exposition in `WireMetrics::publish`
/// (the PR 8 delta-vs-`set_total` bug class).
pub const SNAPSHOT_PAIRS: &[SnapshotPair] = &[
    SnapshotPair {
        strukt: "Predictor",
        file_suffix: "crates/predict/src/predictor.rs",
        reads: &[("snapshot", "Predictor")],
        writes: &[("restore", "Predictor")],
    },
    SnapshotPair {
        strukt: "EstimateCache",
        file_suffix: "crates/core/src/sched/options.rs",
        reads: &[("stats", "EstimateCache"), ("epoch", "EstimateCache")],
        writes: &[("restore_stats", "EstimateCache")],
    },
    SnapshotPair {
        strukt: "ThreeSigmaScheduler",
        file_suffix: "crates/core/src/sched/threesigma.rs",
        reads: &[("serve_snapshot", "ThreeSigmaScheduler")],
        writes: &[("serve_restore", "ThreeSigmaScheduler")],
    },
    SnapshotPair {
        strukt: "ServeSession",
        file_suffix: "crates/cluster/src/serve.rs",
        reads: &[("snapshot", "ServeSession")],
        writes: &[("restore", "ServeSession")],
    },
    SnapshotPair {
        strukt: "WireStats",
        file_suffix: "crates/cli/src/serve.rs",
        reads: &[("publish", "WireMetrics")],
        writes: &[("publish", "WireMetrics")],
    },
];

/// Workspace-relative path of the audited exclusions file for the
/// snapshot-exhaustiveness and metrics-consistency rules.
pub const SNAPSHOT_EXCLUSIONS_PATH: &str = "crates/lint/snapshot_exclusions.txt";

/// The file whose wire acknowledgments the wal-ack-ordering rule audits.
pub const ACK_FILE_SUFFIX: &str = "crates/cli/src/serve.rs";

/// Methods that emit a wire acknowledgment.
pub const ACK_METHODS: &[&str] = &["accepted", "rejected"];

/// The journal-append method that must dominate every acknowledgment.
pub const JOURNAL_METHOD: &str = "append";

/// Docs scanned by the metrics-consistency citation check (workspace-root
/// relative). Missing files are skipped (synthetic fixture trees).
pub const METRIC_DOC_FILES: &[&str] = &["DESIGN.md", "README.md"];

/// Prefixes that mark a documentation token as a metric-name citation.
pub const METRIC_DOC_PREFIXES: &[&str] = &["sched_", "serve_", "wal_", "predict_"];

/// A leaf crate's dependency contract, checked from its `Cargo.toml`.
pub struct LeafContract {
    /// Workspace-relative manifest path.
    pub manifest: &'static str,
    /// The complete set of allowed `[dependencies]` keys.
    pub allowed: &'static [&'static str],
}

/// Leaf crates must stay obs-free and dependency-clean so they can be reused
/// (and reasoned about) in isolation.
pub const LEAF_CONTRACTS: &[LeafContract] = &[
    LeafContract {
        manifest: "crates/histogram/Cargo.toml",
        allowed: &["serde"],
    },
    LeafContract {
        manifest: "crates/milp/Cargo.toml",
        allowed: &[],
    },
    LeafContract {
        manifest: "crates/obs/Cargo.toml",
        allowed: &[],
    },
];

/// Workspace-relative path of the checked-in panic allowlist.
pub const PANIC_ALLOWLIST_PATH: &str = "crates/lint/panic_allowlist.txt";

/// True when `rel` (workspace-relative, `/`-separated) falls under any of
/// the scope prefixes and is not test/bench/example/fixture support code.
pub fn in_scope(rel: &str, scopes: &[&str]) -> bool {
    if rel
        .split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
    {
        return false;
    }
    scopes.iter().any(|s| rel.starts_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching() {
        assert!(in_scope("crates/cluster/src/engine.rs", DECISION_SCOPES));
        assert!(in_scope(
            "crates/core/src/sched/threesigma.rs",
            DECISION_SCOPES
        ));
        assert!(!in_scope("crates/core/src/dist.rs", DECISION_SCOPES));
        assert!(!in_scope("crates/cluster/tests/sim.rs", DECISION_SCOPES));
        assert!(!in_scope(
            "crates/lint/tests/fixtures/bad_hash_iter.rs",
            DECISION_SCOPES
        ));
    }
}
