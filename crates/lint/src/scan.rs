//! Source-file model: parse a file with the vendored `syn`, walk its items
//! tracking test context, and flatten fn bodies into linear token vectors
//! that the rules pattern-match over.

use std::collections::BTreeSet;

use proc_macro2::{Delimiter, Span, TokenTree};
use syn::{Attribute, Item};

/// A flattened token: groups become `Open`/`Close` markers so rules can
/// match linear windows while still tracking nesting depth.
#[derive(Debug, Clone)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String, Span),
    /// A punctuation character.
    Punct(char, Span),
    /// A literal (string, char, number), kept as raw text.
    Lit(String, Span),
    /// An opening delimiter.
    Open(Delimiter, Span),
    /// A closing delimiter (span of the opening one).
    Close(Delimiter, Span),
}

impl Tok {
    /// The token's span.
    pub fn span(&self) -> Span {
        match self {
            Tok::Ident(_, s)
            | Tok::Punct(_, s)
            | Tok::Lit(_, s)
            | Tok::Open(_, s)
            | Tok::Close(_, s) => *s,
        }
    }

    /// The identifier text, if this is an ident.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s, _) => Some(s),
            _ => None,
        }
    }
}

/// Flattens token trees into the linear [`Tok`] form.
pub fn flatten(trees: &[TokenTree], out: &mut Vec<Tok>) {
    for t in trees {
        match t {
            TokenTree::Group(g) => {
                out.push(Tok::Open(g.delimiter(), g.span()));
                flatten(g.trees(), out);
                out.push(Tok::Close(g.delimiter(), g.span()));
            }
            TokenTree::Ident(i) => out.push(Tok::Ident(i.to_string(), i.span())),
            TokenTree::Punct(p) => out.push(Tok::Punct(p.as_char(), p.span())),
            TokenTree::Literal(l) => out.push(Tok::Lit(l.to_string(), l.span())),
        }
    }
}

/// One function's worth of scannable tokens.
#[derive(Debug, Clone)]
pub struct FnSite {
    /// The function's name (allowlist key).
    pub func: String,
    /// True when the fn is `#[test]` or inside `#[cfg(test)]` context.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword (call-graph node key).
    pub line: usize,
    /// The enclosing `impl`/`trait` header text (`Scheduler for Fifo`,
    /// `Predictor`), or `None` for free functions.
    pub impl_ctx: Option<String>,
    /// Flattened signature tokens (params, return type).
    pub sig: Vec<Tok>,
    /// Flattened body tokens; empty for bodiless declarations.
    pub body: Vec<Tok>,
}

/// A non-test struct definition with its named fields (snapshot pairing).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields in declaration order: (name, 1-based line).
    pub fields: Vec<(String, usize)>,
}

/// A parsed, walked source file ready for rule scans.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Every function (at any nesting depth) with its test context.
    pub fns: Vec<FnSite>,
    /// Non-test struct definitions with their named fields.
    pub structs: Vec<StructDef>,
    /// Names of struct fields typed `HashMap`/`HashSet` in non-test code.
    pub hash_fields: BTreeSet<String>,
    /// Flattened tokens of non-fn, non-test items (`use`, `const`, macros).
    pub item_toks: Vec<Tok>,
    /// Lines carrying a `lint: sorted` justification comment.
    pub justified_lines: BTreeSet<usize>,
    /// Lines carrying a `lint: no-journal` escape-hatch comment.
    pub no_journal_lines: BTreeSet<usize>,
}

impl ParsedFile {
    /// True when `line` carries a justification comment on it or directly
    /// above it.
    pub fn is_justified(&self, line: usize) -> bool {
        self.justified_lines.contains(&line)
            || (line > 0 && self.justified_lines.contains(&(line - 1)))
    }

    /// True when `line` carries a `lint: no-journal` escape hatch on it or
    /// directly above it.
    pub fn is_no_journal(&self, line: usize) -> bool {
        self.no_journal_lines.contains(&line)
            || (line > 0 && self.no_journal_lines.contains(&(line - 1)))
    }

    /// A copy keeping only the functions `keep` accepts (scope filtering for
    /// the reachability-driven rules); item-level tokens are preserved.
    pub fn filtered(&self, keep: impl Fn(&FnSite) -> bool) -> ParsedFile {
        ParsedFile {
            rel: self.rel.clone(),
            fns: self.fns.iter().filter(|f| keep(f)).cloned().collect(),
            structs: self.structs.clone(),
            hash_fields: self.hash_fields.clone(),
            item_toks: self.item_toks.clone(),
            justified_lines: self.justified_lines.clone(),
            no_journal_lines: self.no_journal_lines.clone(),
        }
    }
}

/// Parses `src` (at workspace-relative path `rel`) into a [`ParsedFile`].
pub fn parse_source(rel: &str, src: &str) -> Result<ParsedFile, syn::Error> {
    let file = syn::parse_file(src)?;
    let comments = proc_macro2::lex_comments(src);
    let justified_lines = comments
        .iter()
        .filter(|c| c.text.contains(crate::config::JUSTIFICATION))
        .map(|c| c.line)
        .collect();
    let no_journal_lines = comments
        .iter()
        .filter(|c| c.text.contains(crate::config::NO_JOURNAL_JUSTIFICATION))
        .map(|c| c.line)
        .collect();
    let mut parsed = ParsedFile {
        rel: rel.to_string(),
        fns: Vec::new(),
        structs: Vec::new(),
        hash_fields: BTreeSet::new(),
        item_toks: Vec::new(),
        justified_lines,
        no_journal_lines,
    };
    walk_items(&file.items, false, None, &mut parsed);
    Ok(parsed)
}

fn attrs_mark_test(attrs: &[Attribute]) -> bool {
    attrs.iter().any(|a| a.is_test() || a.is_cfg_test())
}

fn walk_items(items: &[Item], in_test: bool, impl_ctx: Option<&str>, out: &mut ParsedFile) {
    for item in items {
        match item {
            Item::Fn(f) => {
                let is_test = in_test || attrs_mark_test(&f.attrs);
                let mut sig = Vec::new();
                flatten(&f.signature, &mut sig);
                let mut body = Vec::new();
                if let Some(b) = &f.body {
                    flatten(b.trees(), &mut body);
                }
                out.fns.push(FnSite {
                    func: f.name.clone(),
                    is_test,
                    line: f.span.line,
                    impl_ctx: impl_ctx.map(str::to_string),
                    sig,
                    body,
                });
            }
            Item::Mod(m) => {
                if let Some(content) = &m.content {
                    walk_items(content, in_test || attrs_mark_test(&m.attrs), None, out);
                }
            }
            Item::Impl(i) => {
                walk_items(
                    &i.items,
                    in_test || attrs_mark_test(&i.attrs),
                    Some(&i.header),
                    out,
                );
            }
            Item::Trait(t) => {
                walk_items(
                    &t.items,
                    in_test || attrs_mark_test(&t.attrs),
                    Some(&t.name),
                    out,
                );
            }
            Item::Struct(s) => {
                if !(in_test || attrs_mark_test(&s.attrs)) {
                    if let Some(fields) = &s.fields {
                        let mut toks = Vec::new();
                        flatten(fields.trees(), &mut toks);
                        for name in colon_typed_hash_names(&toks) {
                            out.hash_fields.insert(name);
                        }
                        out.structs.push(StructDef {
                            name: s.name.clone(),
                            line: s.span.line,
                            fields: named_fields(&toks),
                        });
                    }
                }
            }
            Item::Enum(_) => {}
            Item::Verbatim(v) => {
                if !(in_test || attrs_mark_test(&v.attrs)) {
                    flatten(&v.tokens, &mut out.item_toks);
                }
            }
        }
    }
}

/// Extracts named fields from a struct's flattened field tokens: each
/// top-level comma-separated segment contributes the ident directly before
/// its first top-level `:`. Tuple-struct segments (no top-level `:`) yield
/// nothing.
pub fn named_fields(toks: &[Tok]) -> Vec<(String, usize)> {
    let mut fields = Vec::new();
    let mut group_depth = 0i32;
    let mut angle_depth = 0i32;
    let mut last_ident: Option<(String, usize)> = None;
    let mut in_type = false; // past the segment's `name :`
    for (i, t) in toks.iter().enumerate() {
        match t {
            Tok::Open(..) => group_depth += 1,
            Tok::Close(..) => group_depth -= 1,
            Tok::Punct('<', _) if group_depth == 0 => angle_depth += 1,
            // `->` in fn-pointer types is not a closing angle.
            Tok::Punct('>', _)
                if group_depth == 0
                    && angle_depth > 0
                    && !matches!(toks.get(i.wrapping_sub(1)), Some(Tok::Punct('-', _))) =>
            {
                angle_depth -= 1;
            }
            Tok::Punct(',', _) if group_depth == 0 && angle_depth == 0 => {
                in_type = false;
                last_ident = None;
            }
            Tok::Punct(':', _) if group_depth == 0 && angle_depth == 0 && !in_type => {
                // Skip `::` path separators.
                let double = matches!(toks.get(i + 1), Some(Tok::Punct(':', _)))
                    || matches!(toks.get(i.wrapping_sub(1)), Some(Tok::Punct(':', _)));
                if !double {
                    if let Some((name, line)) = last_ident.take() {
                        fields.push((name, line));
                        in_type = true;
                    }
                }
            }
            Tok::Ident(name, span) if group_depth == 0 && !in_type => {
                last_ident = Some((name.clone(), span.line));
            }
            _ => {}
        }
    }
    fields
}

/// Scans `name : Type` segments (struct fields, fn params) and returns the
/// names whose type mentions `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet`.
pub fn colon_typed_hash_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            Tok::Open(..) => depth += 1,
            Tok::Close(..) => depth -= 1,
            Tok::Ident(name, _) => {
                // `name :` not followed by another `:` (skip paths `a::b`),
                // and not preceded by `:` (skip path tails).
                let colon_next = matches!(toks.get(i + 1), Some(Tok::Punct(':', _)))
                    && !matches!(toks.get(i + 2), Some(Tok::Punct(':', _)));
                let after_colon = i > 0 && matches!(&toks[i - 1], Tok::Punct(':', _));
                if colon_next && !after_colon {
                    let start_depth = depth;
                    let mut j = i + 2;
                    let mut d = depth;
                    let mut is_hash = false;
                    while j < toks.len() {
                        match &toks[j] {
                            Tok::Open(..) => d += 1,
                            Tok::Close(..) => {
                                d -= 1;
                                if d < start_depth {
                                    break;
                                }
                            }
                            Tok::Punct(',', _) if d == start_depth => break,
                            Tok::Punct('<', _) => d += 1,
                            Tok::Punct('>', _) => d = (d - 1).max(start_depth),
                            Tok::Ident(ty, _)
                                if matches!(
                                    ty.as_str(),
                                    "HashMap" | "HashSet" | "FxHashMap" | "FxHashSet"
                                ) =>
                            {
                                is_hash = true;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if is_hash {
                        names.insert(name.clone());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    names
}

/// Collects `let [mut] name = ...;` / `let name: Ty = ...;` bindings whose
/// statement mentions `HashMap`/`HashSet` before the terminating `;`.
pub fn let_bound_hash_names(body: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut i = 0usize;
    while i < body.len() {
        if body[i].ident() == Some("let") {
            let mut j = i + 1;
            if body.get(j).and_then(Tok::ident) == Some("mut") {
                j += 1;
            }
            if let Some(Tok::Ident(name, _)) = body.get(j) {
                // Scan the statement: to the `;` at this nesting level.
                let mut d = 0i32;
                let mut k = j + 1;
                let mut is_hash = false;
                while k < body.len() {
                    match &body[k] {
                        Tok::Open(..) => d += 1,
                        Tok::Close(..) => {
                            d -= 1;
                            if d < 0 {
                                break;
                            }
                        }
                        Tok::Punct(';', _) if d == 0 => break,
                        Tok::Ident(ty, _)
                            if matches!(
                                ty.as_str(),
                                "HashMap" | "HashSet" | "FxHashMap" | "FxHashSet"
                            ) =>
                        {
                            is_hash = true;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if is_hash {
                    names.insert(name.clone());
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse_source("crates/x/src/lib.rs", src).unwrap()
    }

    #[test]
    fn fn_walk_tracks_test_context() {
        let p = parsed(
            r#"
            fn hot() {}
            #[test]
            fn direct_test() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
            impl S {
                fn method(&self) {}
            }
            "#,
        );
        let flags: Vec<(String, bool)> =
            p.fns.iter().map(|f| (f.func.clone(), f.is_test)).collect();
        assert_eq!(
            flags,
            vec![
                ("hot".to_string(), false),
                ("direct_test".to_string(), true),
                ("helper".to_string(), true),
                ("t".to_string(), true),
                ("method".to_string(), false),
            ]
        );
    }

    #[test]
    fn hash_fields_collected() {
        let p = parsed(
            "struct S { running: HashMap<u64, R>, order: BTreeMap<u64, R>, tags: HashSet<u32> }",
        );
        let got: Vec<&str> = p.hash_fields.iter().map(|s| s.as_str()).collect();
        assert_eq!(got, vec!["running", "tags"]);
    }

    #[test]
    fn let_bindings_collected() {
        let mut body = Vec::new();
        let src = "fn f() { let mut seen = HashSet::new(); let n: usize = 3; let m: HashMap<u8, u8> = Default::default(); }";
        let p = parsed(src);
        body.extend(p.fns[0].body.iter().cloned());
        let got: Vec<String> = let_bound_hash_names(&body).into_iter().collect();
        assert_eq!(got, vec!["m".to_string(), "seen".to_string()]);
    }

    #[test]
    fn param_hash_names_from_signature() {
        let p = parsed("fn f(live: &HashSet<u64>, count: usize) {}");
        let got: Vec<String> = colon_typed_hash_names(&p.fns[0].sig).into_iter().collect();
        assert_eq!(got, vec!["live".to_string()]);
    }

    #[test]
    fn justified_lines_found() {
        let p = parsed("fn f() {\n    // lint: sorted — keys sorted below\n    x.iter();\n}");
        assert!(p.is_justified(2));
        assert!(p.is_justified(3));
        assert!(!p.is_justified(5));
    }
}
