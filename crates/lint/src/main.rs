//! CLI for the workspace linter: `cargo run -p threesigma-lint -- check`.
//!
//! Exit codes: 0 clean, 1 violations (or stale allowlist entries), 2 the
//! check itself failed (usage, I/O, or parse error).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(override_path: Option<&str>) -> PathBuf {
    match override_path {
        Some(p) => PathBuf::from(p),
        // crates/lint → workspace root is two levels up; this works both for
        // `cargo run -p threesigma-lint` (any cwd) and a copied binary.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root_override = None;
    let mut command = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_override = Some(p.as_str()),
                    None => {
                        eprintln!("--root requires a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "check" if command.is_none() => command = Some("check"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: threesigma-lint check [--root <workspace>]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command != Some("check") {
        eprintln!("usage: threesigma-lint check [--root <workspace>]");
        return ExitCode::from(2);
    }

    let root = workspace_root(root_override);
    match threesigma_lint::check_workspace(&root) {
        Ok(report) => {
            if report.clean() {
                println!(
                    "threesigma-lint: {} files scanned, no violations",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                for e in &report.stale_allowlist {
                    println!(
                        "[stale-allowlist] crates/lint/panic_allowlist.txt:{}: entry `{e}` \
                         matches no site; remove it",
                        e.line
                    );
                }
                println!(
                    "threesigma-lint: {} violation(s), {} stale allowlist entr(ies) across {} files",
                    report.violations.len(),
                    report.stale_allowlist.len(),
                    report.files_scanned
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("threesigma-lint: {e}");
            ExitCode::from(2)
        }
    }
}
