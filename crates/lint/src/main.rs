//! CLI for the workspace linter: `cargo run -p threesigma-lint -- check`.
//!
//! Exit codes: 0 clean, 1 violations (or stale allowlist entries), 2 the
//! check itself failed (usage, I/O, or parse error).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(override_path: Option<&str>) -> PathBuf {
    match override_path {
        Some(p) => PathBuf::from(p),
        // crates/lint → workspace root is two levels up; this works both for
        // `cargo run -p threesigma-lint` (any cwd) and a copied binary.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from(".")),
    }
}

const USAGE: &str = "usage: threesigma-lint check [--root <workspace>] [--format human|json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root_override = None;
    let mut command = None;
    let mut format = "human";
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_override = Some(p.as_str()),
                    None => {
                        eprintln!("--root requires a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("human") => format = "human",
                    Some("json") => format = "json",
                    _ => {
                        eprintln!("--format requires `human` or `json`");
                        return ExitCode::from(2);
                    }
                }
            }
            "check" if command.is_none() => command = Some("check"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command != Some("check") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = workspace_root(root_override);
    match threesigma_lint::check_workspace(&root) {
        Ok(report) => {
            if format == "json" {
                print!("{}", threesigma_lint::render_json(&report));
                return if report.clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                };
            }
            if report.clean() {
                match report.reachable_fns {
                    Some(n) => println!(
                        "threesigma-lint: {} files scanned, {n} reachable fns, no violations",
                        report.files_scanned
                    ),
                    None => println!(
                        "threesigma-lint: {} files scanned (no decision roots; legacy path \
                         scoping), no violations",
                        report.files_scanned
                    ),
                }
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                for e in &report.stale_allowlist {
                    println!(
                        "[stale-allowlist] {}:{}: entry `{e}` matches no site; remove it",
                        threesigma_lint::config::PANIC_ALLOWLIST_PATH,
                        e.line
                    );
                }
                for e in &report.stale_exclusions {
                    println!(
                        "[stale-exclusion] {}:{}: entry `{e}` matches no finding; remove it",
                        threesigma_lint::config::SNAPSHOT_EXCLUSIONS_PATH,
                        e.line
                    );
                }
                println!(
                    "threesigma-lint: {} violation(s), {} stale allowlist entr(ies), {} stale \
                     exclusion(s) across {} files",
                    report.violations.len(),
                    report.stale_allowlist.len(),
                    report.stale_exclusions.len(),
                    report.files_scanned
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("threesigma-lint: {e}");
            ExitCode::from(2)
        }
    }
}
