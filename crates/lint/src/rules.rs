//! The rule implementations. Each rule takes a [`ParsedFile`] (already
//! scope-filtered by the driver) and returns violations; test code is never
//! scanned (the walker marks it).

use proc_macro2::Delimiter;

use crate::scan::{colon_typed_hash_names, let_bound_hash_names, ParsedFile, Tok};
use crate::Violation;

/// Methods whose call on a hash container observes nondeterministic order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Idents that may legally precede a `[` without it being an index
/// expression (array literals/types after keywords).
const NON_INDEX_PREDECESSORS: &[&str] = &[
    "return", "break", "in", "let", "else", "mut", "ref", "as", "dyn", "impl", "move", "match",
    "if", "while", "loop", "use", "where", "const", "static",
];

fn violation(
    rule: &'static str,
    file: &str,
    line: usize,
    func: &str,
    pattern: String,
    message: String,
) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        func: func.to_string(),
        pattern,
        message,
    }
}

/// Determinism: no iteration over `HashMap`/`HashSet` in decision-path code
/// unless the site carries a `// lint: sorted` justification.
pub fn hash_iter(file: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in file.fns.iter().filter(|f| !f.is_test) {
        let mut names = file.hash_fields.clone();
        names.extend(colon_typed_hash_names(&f.sig));
        names.extend(let_bound_hash_names(&f.body));
        if names.is_empty() {
            continue;
        }
        let toks = &f.body;
        for i in 0..toks.len() {
            // `name.iter()` / `name.keys()` / ... on a known hash name.
            if let (
                Some(Tok::Ident(name, _)),
                Some(Tok::Punct('.', _)),
                Some(Tok::Ident(method, span)),
                Some(Tok::Open(Delimiter::Parenthesis, _)),
            ) = (
                toks.get(i),
                toks.get(i + 1),
                toks.get(i + 2),
                toks.get(i + 3),
            ) {
                // Distinguish the receiver: a bare `name` matches local
                // bindings and (destructured) fields; `self.name` matches
                // fields; `other.name` is some other struct's field whose
                // type we don't know — skip it rather than false-positive on
                // a name collision.
                let after_dot = i > 0 && matches!(&toks[i - 1], Tok::Punct('.', _));
                let self_recv = after_dot && i > 1 && toks[i - 2].ident() == Some("self");
                let known_hash = if after_dot {
                    self_recv && file.hash_fields.contains(name)
                } else {
                    names.contains(name)
                };
                if known_hash
                    && HASH_ITER_METHODS.contains(&method.as_str())
                    && !file.is_justified(span.line)
                {
                    out.push(violation(
                        "hash-iter",
                        &file.rel,
                        span.line,
                        &f.func,
                        format!("{name}.{method}()"),
                        format!(
                            "nondeterministic iteration `{name}.{method}()` over a hash \
                             container in decision-path code; use BTreeMap/collect-and-sort \
                             or justify with `// lint: sorted`"
                        ),
                    ));
                }
            }
            // `for pat in [&[mut]] [self.]name { ... }`.
            if toks.get(i).and_then(Tok::ident) == Some("in") {
                let mut j = i + 1;
                if matches!(toks.get(j), Some(Tok::Punct('&', _))) {
                    j += 1;
                }
                if toks.get(j).and_then(Tok::ident) == Some("mut") {
                    j += 1;
                }
                if toks.get(j).and_then(Tok::ident) == Some("self")
                    && matches!(toks.get(j + 1), Some(Tok::Punct('.', _)))
                {
                    j += 2;
                }
                if let (Some(Tok::Ident(name, span)), Some(Tok::Open(Delimiter::Brace, _))) =
                    (toks.get(j), toks.get(j + 1))
                {
                    if names.contains(name) && !file.is_justified(span.line) {
                        out.push(violation(
                            "hash-iter",
                            &file.rel,
                            span.line,
                            &f.func,
                            format!("for .. in {name}"),
                            format!(
                                "nondeterministic `for` loop over hash container `{name}` in \
                                 decision-path code; use BTreeMap/collect-and-sort or justify \
                                 with `// lint: sorted`"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

fn scan_time_tokens(file: &ParsedFile, toks: &[Tok], func: &str, out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if let (
            Some(Tok::Ident(a, span)),
            Some(Tok::Punct(':', _)),
            Some(Tok::Punct(':', _)),
            Some(Tok::Ident(b, _)),
        ) = (
            toks.get(i),
            toks.get(i + 1),
            toks.get(i + 2),
            toks.get(i + 3),
        ) {
            if a == "Instant" && b == "now" {
                out.push(violation(
                    "time-source",
                    &file.rel,
                    span.line,
                    func,
                    "Instant::now".to_string(),
                    "direct clock read in decision-path code; route timing through the \
                     clock module's Stopwatch"
                        .to_string(),
                ));
            }
        }
        if let Some(Tok::Ident(id, span)) = toks.get(i) {
            if id == "SystemTime" {
                out.push(violation(
                    "time-source",
                    &file.rel,
                    span.line,
                    func,
                    "SystemTime".to_string(),
                    "wall-clock time has no place in decision-path code; derive times from \
                     the simulation clock"
                        .to_string(),
                ));
            }
        }
    }
}

/// Determinism: no direct `Instant::now`/`SystemTime` outside the clock
/// allowlist modules.
pub fn time_source(file: &ParsedFile) -> Vec<Violation> {
    if crate::config::CLOCK_ALLOWLIST
        .iter()
        .any(|p| file.rel == *p)
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in file.fns.iter().filter(|f| !f.is_test) {
        scan_time_tokens(file, &f.sig, &f.func, &mut out);
        scan_time_tokens(file, &f.body, &f.func, &mut out);
    }
    scan_time_tokens(file, &file.item_toks, "<file>", &mut out);
    out
}

/// Determinism: `rand::thread_rng` seeds from the OS; every RNG in this
/// workspace must be seeded explicitly.
pub fn os_seeded_rng(file: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let scan = |toks: &[Tok], func: &str, out: &mut Vec<Violation>| {
        for t in toks {
            if let Tok::Ident(id, span) = t {
                if id == "thread_rng" {
                    out.push(violation(
                        "thread-rng",
                        &file.rel,
                        span.line,
                        func,
                        "thread_rng".to_string(),
                        "OS-seeded RNG breaks replay; construct an explicitly seeded rng"
                            .to_string(),
                    ));
                }
            }
        }
    };
    for f in file.fns.iter().filter(|f| !f.is_test) {
        scan(&f.body, &f.func, &mut out);
    }
    scan(&file.item_toks, "<file>", &mut out);
    out
}

/// Service-loop strictness: `HashMap`/`HashSet` may not appear at all in
/// the engine/serve modules — not as an import, field, local, parameter, or
/// turbofished constructor. The softer [`hash_iter`] rule only flags
/// iteration and accepts a `// lint: sorted` justification; the serve
/// loop's retirement digest and snapshot restart-equivalence contract
/// cannot tolerate either loophole, so this rule bans the identifiers
/// outright with no escape hatch.
pub fn no_hash_container(file: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let flag = |id: &str, line: usize, func: &str, out: &mut Vec<Violation>| {
        out.push(violation(
            "no-hash-container",
            &file.rel,
            line,
            func,
            id.to_string(),
            format!(
                "{id} is banned in the service loop (unordered iteration breaks the \
                 serve digest and snapshot equivalence); use BTreeMap/BTreeSet"
            ),
        ));
    };
    let scan = |toks: &[Tok], func: &str, out: &mut Vec<Violation>| {
        for t in toks {
            if let Tok::Ident(id, span) = t {
                if id == "HashMap" || id == "HashSet" {
                    flag(id, span.line, func, out);
                }
            }
        }
    };
    for f in file.fns.iter().filter(|f| !f.is_test) {
        scan(&f.sig, &f.func, &mut out);
        scan(&f.body, &f.func, &mut out);
    }
    scan(&file.item_toks, "<file>", &mut out);
    // Struct fields are not flattened into `item_toks`; the walker records
    // hash-typed field names separately, so report those too.
    for field in &file.hash_fields {
        flag("HashMap/HashSet", 1, &format!("<field {field}>"), &mut out);
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Panic-safety: hot-path code must degrade through typed errors, never
/// panic. Sites the team has audited live in the checked-in allowlist.
pub fn panic_safety(file: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in file.fns.iter().filter(|f| !f.is_test) {
        let toks = &f.body;
        for i in 0..toks.len() {
            match toks.get(i) {
                Some(Tok::Punct('.', _)) => {
                    if let (Some(Tok::Ident(m, span)), Some(Tok::Open(Delimiter::Parenthesis, _))) =
                        (toks.get(i + 1), toks.get(i + 2))
                    {
                        let empty_args =
                            matches!(toks.get(i + 3), Some(Tok::Close(Delimiter::Parenthesis, _)));
                        if m == "unwrap" && empty_args {
                            out.push(violation(
                                "panic",
                                &file.rel,
                                span.line,
                                &f.func,
                                "unwrap()".to_string(),
                                "`.unwrap()` in hot-path code; return a typed error or \
                                 allowlist the audited site"
                                    .to_string(),
                            ));
                        } else if m == "expect" {
                            out.push(violation(
                                "panic",
                                &file.rel,
                                span.line,
                                &f.func,
                                "expect(".to_string(),
                                "`.expect(..)` in hot-path code; return a typed error or \
                                 allowlist the audited site"
                                    .to_string(),
                            ));
                        }
                    }
                }
                Some(Tok::Ident(m, span))
                    if matches!(
                        m.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    ) && matches!(toks.get(i + 1), Some(Tok::Punct('!', _))) =>
                {
                    out.push(violation(
                        "panic",
                        &file.rel,
                        span.line,
                        &f.func,
                        format!("{m}!"),
                        format!(
                            "`{m}!` in hot-path code; return a typed error or allowlist the \
                             audited site"
                        ),
                    ));
                }
                Some(Tok::Open(Delimiter::Bracket, span)) if i > 0 => {
                    let indexing = match &toks[i - 1] {
                        Tok::Ident(w, _) => !NON_INDEX_PREDECESSORS.contains(&w.as_str()),
                        Tok::Close(Delimiter::Parenthesis, _)
                        | Tok::Close(Delimiter::Bracket, _) => true,
                        _ => false,
                    };
                    if indexing {
                        let recv = match &toks[i - 1] {
                            Tok::Ident(w, _) => w.clone(),
                            _ => "<expr>".to_string(),
                        };
                        out.push(violation(
                            "panic",
                            &file.rel,
                            span.line,
                            &f.func,
                            format!("{recv}["),
                            format!(
                                "slice indexing `{recv}[..]` can panic in hot-path code; use \
                                 `.get(..)` or allowlist the audited site"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Float-ordering: comparisons that feed scheduling order must use
/// `total_cmp`, not `partial_cmp` (the NaN-deadline class of bug).
pub fn float_ordering(file: &ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in file.fns.iter().filter(|f| !f.is_test) {
        let toks = &f.body;
        for i in 0..toks.len() {
            if let (
                Some(Tok::Punct('.', _)),
                Some(Tok::Ident(m, span)),
                Some(Tok::Open(Delimiter::Parenthesis, _)),
            ) = (toks.get(i), toks.get(i + 1), toks.get(i + 2))
            {
                if m == "partial_cmp" {
                    out.push(violation(
                        "float-ord",
                        &file.rel,
                        span.line,
                        &f.func,
                        "partial_cmp(".to_string(),
                        "`.partial_cmp(..)` yields unstable order under NaN; use \
                         `.total_cmp(..)` (map non-float keys onto floats first if needed)"
                            .to_string(),
                    ));
                }
            }
        }
    }
    out
}

/// Layering: leaf crate manifests must not grow dependencies beyond their
/// contract. `manifest_src` is the raw `Cargo.toml` text.
pub fn layering(manifest_rel: &str, manifest_src: &str, allowed: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in manifest_src.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(key) = line.split('=').next().map(str::trim) else {
            continue;
        };
        // `serde.workspace = true` names the dependency `serde`.
        let key = key.split('.').next().unwrap_or(key).trim_matches('"');
        if !key.is_empty() && !allowed.contains(&key) {
            out.push(violation(
                "layering",
                manifest_rel,
                idx + 1,
                "<manifest>",
                key.to_string(),
                format!(
                    "leaf crate gained dependency `{key}` (allowed: [{}]); leaf crates stay \
                     dependency-clean so they can be reasoned about in isolation",
                    allowed.join(", ")
                ),
            ));
        }
    }
    out
}
