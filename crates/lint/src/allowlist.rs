//! The checked-in panic allowlist: audited hot-path sites the panic rule
//! accepts. Entries are keyed by (rule, file, enclosing fn, pattern
//! substring) rather than line numbers so they survive unrelated edits; an
//! entry that no longer matches any real site is a *stale-entry* error, so
//! the list can only shrink as sites are fixed.

use crate::Violation;

/// One allowlist line.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule name (`panic`).
    pub rule: String,
    /// Workspace-relative file path (suffix match).
    pub file: String,
    /// Enclosing function name (exact match).
    pub func: String,
    /// Substring of the violation's pattern (`unwrap()`, `expect(`, `buf[`).
    pub pattern: String,
    /// 1-based line in the allowlist file, for stale-entry reporting.
    pub line: usize,
}

impl std::fmt::Display for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} | {} | {} | {}",
            self.rule, self.file, self.func, self.pattern
        )
    }
}

/// Parses the allowlist text: one `rule | file | fn | pattern` entry per
/// line, `#` comments and blank lines ignored.
pub fn parse(src: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        if parts.len() != 4 || parts.iter().any(|p| p.is_empty()) {
            return Err(format!(
                "allowlist line {}: expected `rule | file | fn | pattern`, got `{line}`",
                idx + 1
            ));
        }
        entries.push(Entry {
            rule: parts[0].to_string(),
            file: parts[1].to_string(),
            func: parts[2].to_string(),
            pattern: parts[3].to_string(),
            line: idx + 1,
        });
    }
    Ok(entries)
}

fn matches(entry: &Entry, v: &Violation) -> bool {
    v.rule == entry.rule
        && (v.file == entry.file || v.file.ends_with(&entry.file))
        && v.func == entry.func
        && v.pattern.contains(&entry.pattern)
}

fn matches_exclusion(entry: &Entry, v: &Violation) -> bool {
    // Exclusion lines are `rule | scope | name | rationale`: `scope` is the
    // pairing struct name or the doc file, `name` the field/metric, and the
    // rationale is free text (the audit record, not a matching key).
    v.rule == entry.rule
        && (v.func == entry.file || v.file.ends_with(&entry.file))
        && v.pattern == entry.func
}

/// Filters excluded snapshot/metrics findings out; same stale-entry
/// semantics as [`apply`], but matched against the exclusion-file key shape
/// (`rule | scope | name | rationale`).
pub fn apply_exclusions(
    entries: &[Entry],
    violations: Vec<Violation>,
) -> (Vec<Violation>, Vec<Entry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for v in violations {
        let mut excluded = false;
        for (i, e) in entries.iter().enumerate() {
            if matches_exclusion(e, &v) {
                used[i] = true;
                excluded = true;
            }
        }
        if !excluded {
            kept.push(v);
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, stale)
}

/// Filters allowlisted violations out; returns the surviving violations and
/// any entries that matched nothing (stale).
pub fn apply(entries: &[Entry], violations: Vec<Violation>) -> (Vec<Violation>, Vec<Entry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for v in violations {
        let mut allowlisted = false;
        for (i, e) in entries.iter().enumerate() {
            if matches(e, &v) {
                used[i] = true;
                allowlisted = true;
            }
        }
        if !allowlisted {
            kept.push(v);
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, func: &str, pattern: &str) -> Violation {
        Violation {
            rule: "panic",
            file: file.to_string(),
            line: 10,
            func: func.to_string(),
            pattern: pattern.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn parse_accepts_comments_and_rejects_malformed() {
        let src = "# header\n\npanic | a/b.rs | f | unwrap()\n";
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].func, "f");
        assert!(parse("panic | missing | fields").is_err());
    }

    #[test]
    fn apply_filters_and_reports_stale() {
        let entries = parse(
            "panic | sched/options.rs | generate | expect(\n\
             panic | sched/options.rs | gone_fn | unwrap()\n",
        )
        .unwrap();
        let violations = vec![
            v("crates/core/src/sched/options.rs", "generate", "expect("),
            v("crates/core/src/sched/options.rs", "other", "unwrap()"),
        ];
        let (kept, stale) = apply(&entries, violations);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].func, "other");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].func, "gone_fn");
    }
}
