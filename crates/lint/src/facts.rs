//! Phase 2 cross-item rules: facts that span functions, structs, and docs.
//!
//! * **snapshot-exhaustiveness** — every named field of a state struct
//!   paired with a snapshot type must be mentioned in the pair's snapshot
//!   fn(s) and restore fn(s), or carry an audited entry in
//!   `snapshot_exclusions.txt` (the PR 8 "best-NMAE silently missing from
//!   `Snapshot`" bug class).
//! * **wal-ack-ordering** — in the serve front-end, any wire acknowledgment
//!   must be dominated in-function by a journal `.append(..)` call
//!   (journal-before-ack, DESIGN §11), with a `// lint: no-journal` escape
//!   hatch for typed-rejection paths that admit nothing.
//! * **metrics-consistency** — every metric name is registered exactly
//!   once, is `snake_case`, and every `sched_`/`serve_`/`wal_`/`predict_`
//!   name cited in the docs exists in code.

use std::collections::BTreeMap;

use proc_macro2::Delimiter;

use crate::config::{self, SnapshotPair};
use crate::scan::{FnSite, ParsedFile, Tok};
use crate::Violation;

/// True when `body` mentions `field` as a field access (`recv.field`) or a
/// struct-literal / pattern binding (`field: ..`).
fn mentions_field(body: &[Tok], field: &str) -> bool {
    for i in 0..body.len() {
        let Some(Tok::Ident(name, _)) = body.get(i) else {
            continue;
        };
        if name != field {
            continue;
        }
        if i > 0 && matches!(body[i - 1], Tok::Punct('.', _)) {
            return true;
        }
        // `field : ..` but not a `::` path segment.
        if matches!(body.get(i + 1), Some(Tok::Punct(':', _)))
            && !matches!(body.get(i + 2), Some(Tok::Punct(':', _)))
            && !(i > 0 && matches!(body[i - 1], Tok::Punct(':', _)))
        {
            return true;
        }
    }
    false
}

fn impl_mentions(site: &FnSite, word: &str) -> bool {
    site.impl_ctx
        .as_deref()
        .map(|h| {
            h.split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|w| w == word)
        })
        .unwrap_or(false)
}

/// Resolves a pair's fn specs in `file`; the second element counts specs
/// that matched no fn.
fn pair_fns<'a>(file: &'a ParsedFile, specs: &[(&str, &str)]) -> (Vec<&'a FnSite>, usize) {
    let mut found = Vec::new();
    let mut missing = 0usize;
    for &(name, impl_word) in specs {
        let matches: Vec<&FnSite> = file
            .fns
            .iter()
            .filter(|f| !f.is_test && f.func == name && impl_mentions(f, impl_word))
            .collect();
        if matches.is_empty() {
            missing += 1;
        }
        found.extend(matches);
    }
    (found, missing)
}

/// Runs the snapshot-exhaustiveness rule over `files` for the given pairs.
/// A pair whose file is absent from `files` is skipped (synthetic trees);
/// a present file whose struct or fns cannot be resolved is a violation, so
/// renames cannot silently disable the rule.
pub fn snapshot_exhaustiveness(files: &[ParsedFile], pairs: &[SnapshotPair]) -> Vec<Violation> {
    let mut out = Vec::new();
    for pair in pairs {
        let Some(file) = files.iter().find(|p| p.rel.ends_with(pair.file_suffix)) else {
            continue;
        };
        let Some(def) = file.structs.iter().find(|s| s.name == pair.strukt) else {
            out.push(Violation {
                rule: "snapshot-exhaustiveness",
                file: file.rel.clone(),
                line: 1,
                func: pair.strukt.to_string(),
                pattern: format!("struct {}", pair.strukt),
                message: format!(
                    "state struct `{}` not found in {}; update the pair table in \
                     crates/lint/src/config.rs if it moved",
                    pair.strukt, file.rel
                ),
            });
            continue;
        };
        let (reads, reads_missing) = pair_fns(file, pair.reads);
        let (writes, writes_missing) = pair_fns(file, pair.writes);
        if reads_missing > 0 || writes_missing > 0 {
            out.push(Violation {
                rule: "snapshot-exhaustiveness",
                file: file.rel.clone(),
                line: def.line,
                func: pair.strukt.to_string(),
                pattern: format!("fns for {}", pair.strukt),
                message: format!(
                    "snapshot/restore fns for `{}` not all found (reads {:?}, writes {:?}); \
                     update the pair table in crates/lint/src/config.rs if they moved",
                    pair.strukt, pair.reads, pair.writes
                ),
            });
            continue;
        }
        for (field, line) in &def.fields {
            let read_ok = reads.iter().any(|f| mentions_field(&f.body, field));
            let write_ok = writes.iter().any(|f| mentions_field(&f.body, field));
            if !read_ok {
                out.push(Violation {
                    rule: "snapshot-exhaustiveness",
                    file: file.rel.clone(),
                    line: *line,
                    func: pair.strukt.to_string(),
                    pattern: field.clone(),
                    message: format!(
                        "field `{field}` of `{}` is never read in its snapshot fn(s) {:?}; \
                         serialize it or record an audited exclusion in {}",
                        pair.strukt,
                        pair.reads.iter().map(|r| r.0).collect::<Vec<_>>(),
                        config::SNAPSHOT_EXCLUSIONS_PATH,
                    ),
                });
            }
            if !write_ok && pair.reads != pair.writes {
                out.push(Violation {
                    rule: "snapshot-exhaustiveness",
                    file: file.rel.clone(),
                    line: *line,
                    func: pair.strukt.to_string(),
                    pattern: field.clone(),
                    message: format!(
                        "field `{field}` of `{}` is never written in its restore fn(s) {:?}; \
                         restore it or record an audited exclusion in {}",
                        pair.strukt,
                        pair.writes.iter().map(|w| w.0).collect::<Vec<_>>(),
                        config::SNAPSHOT_EXCLUSIONS_PATH,
                    ),
                });
            }
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.pattern == b.pattern && a.message == b.message);
    out
}

/// Runs the wal-ack-ordering rule: in the ack file, every `.accepted(..)` /
/// `.rejected(..)` call must be preceded (in the same fn body) by a journal
/// `.append(..)` call, or carry a `// lint: no-journal` escape hatch.
pub fn wal_ack_ordering(files: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(file) = files
        .iter()
        .find(|p| p.rel.ends_with(config::ACK_FILE_SUFFIX))
    else {
        return out;
    };
    for f in file.fns.iter().filter(|f| !f.is_test) {
        // The ack methods' own definitions contain no ack *calls*; no
        // special-casing needed.
        let toks = &f.body;
        let mut journal_seen = false;
        for i in 0..toks.len() {
            let (Some(Tok::Punct('.', _)), Some(Tok::Ident(m, span)), Some(open)) =
                (toks.get(i), toks.get(i + 1), toks.get(i + 2))
            else {
                continue;
            };
            if !matches!(open, Tok::Open(Delimiter::Parenthesis, _)) {
                continue;
            }
            if m == config::JOURNAL_METHOD {
                journal_seen = true;
            } else if config::ACK_METHODS.contains(&m.as_str())
                && !journal_seen
                && !file.is_no_journal(span.line)
            {
                out.push(Violation {
                    rule: "wal-ack-ordering",
                    file: file.rel.clone(),
                    line: span.line,
                    func: f.func.clone(),
                    pattern: format!("{m}("),
                    message: format!(
                        "wire acknowledgment `.{m}(..)` is not dominated by a journal \
                         `.append(..)` in this fn; journal-before-ack (DESIGN §11) or mark a \
                         deliberately unjournaled rejection with `// lint: no-journal`"
                    ),
                });
            }
        }
    }
    out
}

/// One metric registration site.
#[derive(Debug)]
struct RegSite {
    file: String,
    line: usize,
    func: String,
}

fn registrations(files: &[ParsedFile]) -> BTreeMap<String, Vec<RegSite>> {
    let mut regs: BTreeMap<String, Vec<RegSite>> = BTreeMap::new();
    for file in files {
        for f in file.fns.iter().filter(|f| !f.is_test) {
            let toks = &f.body;
            for i in 0..toks.len() {
                let (
                    Some(Tok::Punct('.', _)),
                    Some(Tok::Ident(m, _)),
                    Some(Tok::Open(Delimiter::Parenthesis, _)),
                    Some(Tok::Lit(lit, span)),
                    Some(Tok::Punct(',', _)),
                ) = (
                    toks.get(i),
                    toks.get(i + 1),
                    toks.get(i + 2),
                    toks.get(i + 3),
                    toks.get(i + 4),
                )
                else {
                    continue;
                };
                // `.counter("name", help)` registers; the 1-arg form is the
                // snapshot read accessor and never reaches this arm.
                if !matches!(m.as_str(), "counter" | "gauge" | "histogram" | "timer") {
                    continue;
                }
                let Some(name) = lit.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
                    continue;
                };
                regs.entry(name.to_string()).or_default().push(RegSite {
                    file: file.rel.clone(),
                    line: span.line,
                    func: f.func.clone(),
                });
            }
        }
    }
    regs
}

fn is_snake_case(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Runs the metrics-consistency rule: single snake_case registration per
/// name, and doc-cited metric names must exist. `docs` are (workspace-rel
/// path, contents) pairs.
pub fn metrics_consistency(files: &[ParsedFile], docs: &[(String, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let regs = registrations(files);
    for (name, sites) in &regs {
        if !is_snake_case(name) {
            let s = &sites[0];
            out.push(Violation {
                rule: "metrics-consistency",
                file: s.file.clone(),
                line: s.line,
                func: s.func.clone(),
                pattern: name.clone(),
                message: format!(
                    "metric name `{name}` is not snake_case; the exposition convention is \
                     `[a-z][a-z0-9_]*`"
                ),
            });
        }
        if sites.len() > 1 {
            for s in &sites[1..] {
                out.push(Violation {
                    rule: "metrics-consistency",
                    file: s.file.clone(),
                    line: s.line,
                    func: s.func.clone(),
                    pattern: name.clone(),
                    message: format!(
                        "metric `{name}` is registered {} times (first at {}:{}); every name \
                         must be registered exactly once",
                        sites.len(),
                        sites[0].file,
                        sites[0].line
                    ),
                });
            }
        }
    }
    for (doc_rel, text) in docs {
        let mut cited: BTreeMap<&str, usize> = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let bytes = line.as_bytes();
            let mut start = 0usize;
            while start < bytes.len() {
                let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
                if !is_word(bytes[start]) {
                    start += 1;
                    continue;
                }
                let mut end = start;
                while end < bytes.len() && is_word(bytes[end]) {
                    end += 1;
                }
                let word = &line[start..end];
                let tail = &line[end..];
                start = end;
                if !config::METRIC_DOC_PREFIXES
                    .iter()
                    .any(|p| word.starts_with(p) && word.len() > p.len())
                {
                    continue;
                }
                // Identifier-shaped non-metrics: function references
                // (`serve_snapshot()`), file names (`serve_part1.jsonl`),
                // paths (`wal::..`), and names with fewer than two
                // underscores (all exported metrics have at least two).
                if word.matches('_').count() < 2 {
                    continue;
                }
                if tail.starts_with('(') || tail.starts_with("::") {
                    continue;
                }
                if [".rs", ".jsonl", ".txt", ".json", ".toml", ".md"]
                    .iter()
                    .any(|ext| tail.starts_with(ext))
                {
                    continue;
                }
                if regs.contains_key(word) {
                    continue;
                }
                cited.entry(word).or_insert(idx + 1);
            }
        }
        for (word, line) in cited {
            out.push(Violation {
                rule: "metrics-consistency",
                file: doc_rel.clone(),
                line,
                func: "<doc>".to_string(),
                pattern: word.to_string(),
                message: format!(
                    "{doc_rel} cites metric `{word}` but no such name is registered; fix the \
                     doc, register the metric, or record an audited exclusion in {}",
                    config::SNAPSHOT_EXCLUSIONS_PATH
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn files(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources
            .iter()
            .map(|(rel, src)| parse_source(rel, src).expect("fixture parses"))
            .collect()
    }

    #[test]
    fn mentions_field_sees_access_and_struct_literal() {
        let fs = files(&[(
            "crates/x/src/lib.rs",
            "fn f(&self) -> S { S { a: self.b, c } }",
        )]);
        let body = &fs[0].fns[0].body;
        assert!(mentions_field(body, "a"));
        assert!(mentions_field(body, "b"));
        assert!(
            !mentions_field(body, "c"),
            "shorthand is not proof of a read"
        );
        assert!(!mentions_field(body, "d"));
    }

    #[test]
    fn doc_citation_requires_registration() {
        let fs = files(&[(
            "crates/obs/src/x.rs",
            r#"fn register(rec: &Recorder) { rec.counter("serve_cycles_total", "help"); }"#,
        )]);
        let docs = vec![(
            "DESIGN.md".to_string(),
            "exports `serve_cycles_total` and `serve_ghost_total`; see serve_snapshot() \
             and serve_part1.jsonl"
                .to_string(),
        )];
        let found = metrics_consistency(&fs, &docs);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].pattern, "serve_ghost_total");
        assert_eq!(found[0].func, "<doc>");
    }
}
