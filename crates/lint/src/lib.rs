//! `threesigma-lint`: AST-based determinism, panic-safety, float-ordering,
//! and layering lints for the workspace.
//!
//! The binary (`cargo run -p threesigma-lint -- check`) parses every
//! non-test source file under `crates/*/src` with the vendored `syn`,
//! flattens fn bodies into token vectors, and pattern-matches the invariants
//! grep cannot see (receiver types, test context, enclosing functions):
//!
//! * **hash-iter** — no `HashMap`/`HashSet` iteration in decision-path
//!   crates unless justified with `// lint: sorted`.
//! * **no-hash-container** — no `HashMap`/`HashSet` at all in the
//!   engine/serve service-loop modules, with no escape hatch.
//! * **time-source** — no `Instant::now`/`SystemTime` outside the clock
//!   modules.
//! * **thread-rng** — no OS-seeded RNG anywhere.
//! * **panic** — no `unwrap`/`expect`/`panic!`-family/slice-indexing in
//!   hot-path code, modulo the checked-in allowlist.
//! * **float-ord** — no `partial_cmp` in decision-path comparisons.
//! * **layering** — leaf crates keep their dependency contracts.
//!
//! See `DESIGN.md` ("Static analysis") for rule rationale and the escape
//! hatches.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod allowlist;
pub mod config;
pub mod rules;
pub mod scan;

/// One finding: a rule, a source location, and the matched pattern (the
/// allowlist key).
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (`hash-iter`, `no-hash-container`, `time-source`,
    /// `thread-rng`, `panic`, `float-ord`, `layering`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Enclosing function, or `<file>`/`<manifest>` for item-level hits.
    pub func: String,
    /// The matched pattern text (allowlist matching key).
    pub pattern: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} (fn {}): {}",
            self.rule, self.file, self.line, self.func, self.message
        )
    }
}

/// Outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived the allowlist, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched no site (treated as failures).
    pub stale_allowlist: Vec<allowlist::Entry>,
    /// Number of source files parsed.
    pub files_scanned: usize,
}

impl Report {
    /// True when there is nothing to report.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allowlist.is_empty()
    }
}

/// Runs every rule over one parsed file, applying the scope config.
pub fn check_file(parsed: &scan::ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if config::in_scope(&parsed.rel, config::DECISION_SCOPES) {
        out.extend(rules::hash_iter(parsed));
        out.extend(rules::time_source(parsed));
        out.extend(rules::float_ordering(parsed));
    }
    if config::in_scope(&parsed.rel, config::NO_HASH_CONTAINER_SCOPES) {
        out.extend(rules::no_hash_container(parsed));
    }
    if config::in_scope(&parsed.rel, config::HOT_PATH_SCOPES) {
        out.extend(rules::panic_safety(parsed));
    }
    if config::in_scope(&parsed.rel, &["crates/"]) {
        out.extend(rules::os_seeded_rng(parsed));
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if matches!(name.as_str(), "tests" | "benches" | "examples" | "fixtures") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Checks the whole workspace rooted at `root`. `Err` means the check could
/// not run (I/O or parse failure — exit code 2 territory), not that
/// violations were found.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }

    let mut report = Report::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let parsed = scan::parse_source(&rel, &src).map_err(|e| format!("parse {rel}: {e}"))?;
        report.files_scanned += 1;
        report.violations.extend(check_file(&parsed));
    }

    for contract in config::LEAF_CONTRACTS {
        let path = root.join(contract.manifest);
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        report
            .violations
            .extend(rules::layering(contract.manifest, &src, contract.allowed));
    }

    let allowlist_path = root.join(config::PANIC_ALLOWLIST_PATH);
    let entries = match std::fs::read_to_string(&allowlist_path) {
        Ok(src) => allowlist::parse(&src)?,
        Err(_) => Vec::new(), // missing allowlist = empty allowlist
    };
    let (kept, stale) = allowlist::apply(&entries, std::mem::take(&mut report.violations));
    report.violations = kept;
    report.stale_allowlist = stale;

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
