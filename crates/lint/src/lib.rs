//! `threesigma-lint`: a two-phase workspace analyzer for determinism,
//! panic-safety, snapshot/WAL protocol, and metrics invariants.
//!
//! The binary (`cargo run -p threesigma-lint -- check`) parses every
//! non-test source file under `crates/*/src` with the vendored `syn`.
//! Phase 1 builds a symbol table and crate-level call graph ([`graph`]) and
//! computes the functions reachable from the decision-path roots
//! (`Scheduler::schedule` impls, milp `Solver::solve` impls, the option
//! generators, and the engine/serve pumps). Phase 2 runs the rules:
//!
//! * **hash-iter** — no `HashMap`/`HashSet` iteration in decision-path
//!   reachable code unless justified with `// lint: sorted`.
//! * **no-hash-container** — no `HashMap`/`HashSet` at all in the
//!   engine/serve service-loop modules, with no escape hatch.
//! * **time-source** — no `Instant::now`/`SystemTime` in reachable code
//!   outside the clock modules.
//! * **thread-rng** — no OS-seeded RNG anywhere.
//! * **panic** — no `unwrap`/`expect`/`panic!`-family/slice-indexing in
//!   reachable cluster/core code, modulo the checked-in allowlist.
//! * **float-ord** — no `partial_cmp` in reachable comparisons.
//! * **layering** — leaf crates keep their dependency contracts.
//! * **snapshot-exhaustiveness** — paired state structs serialize and
//!   restore every field, modulo `snapshot_exclusions.txt`.
//! * **wal-ack-ordering** — journal-append dominates every wire ack in the
//!   serve front-end, modulo `// lint: no-journal`.
//! * **metrics-consistency** — metric names register exactly once, are
//!   snake_case, and doc-cited names exist.
//!
//! The reachability rules fall back to the legacy path-prefix scopes when a
//! tree declares no roots (synthetic fixture workspaces). See `DESIGN.md`
//! §12 for rule rationale and the escape hatches.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod allowlist;
pub mod config;
pub mod facts;
pub mod graph;
pub mod rules;
pub mod scan;

/// One finding: a rule, a source location, and the matched pattern (the
/// allowlist key).
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (`hash-iter`, `no-hash-container`, `time-source`,
    /// `thread-rng`, `panic`, `float-ord`, `layering`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Enclosing function, or `<file>`/`<manifest>` for item-level hits.
    pub func: String,
    /// The matched pattern text (allowlist matching key).
    pub pattern: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} (fn {}): {}",
            self.rule, self.file, self.line, self.func, self.message
        )
    }
}

/// Outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived the allowlist, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Panic-allowlist entries that matched no site (treated as failures).
    pub stale_allowlist: Vec<allowlist::Entry>,
    /// Snapshot/metrics exclusion entries that matched no raw finding
    /// (treated as failures; the exclusion file can only shrink).
    pub stale_exclusions: Vec<allowlist::Entry>,
    /// Number of source files parsed.
    pub files_scanned: usize,
    /// Number of functions reachable from the decision-path roots, or
    /// `None` when the tree declared no roots (legacy path scoping used).
    pub reachable_fns: Option<usize>,
}

impl Report {
    /// True when there is nothing to report.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
            && self.stale_allowlist.is_empty()
            && self.stale_exclusions.is_empty()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as deterministic machine-readable JSON (the CI
/// `lint-findings.json` artifact). Iteration order is the report's own
/// sorted order, so two runs over the same tree are byte-identical.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    match report.reachable_fns {
        Some(n) => out.push_str(&format!("  \"reachable_fns\": {n},\n")),
        None => out.push_str("  \"reachable_fns\": null,\n"),
    }
    out.push_str(&format!("  \"clean\": {},\n", report.clean()));
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"func\": \"{}\", \
             \"pattern\": \"{}\", \"message\": \"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            json_escape(&v.func),
            json_escape(&v.pattern),
            json_escape(&v.message),
        ));
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    for (key, source, entries) in [
        (
            "stale_allowlist",
            config::PANIC_ALLOWLIST_PATH,
            &report.stale_allowlist,
        ),
        (
            "stale_exclusions",
            config::SNAPSHOT_EXCLUSIONS_PATH,
            &report.stale_exclusions,
        ),
    ] {
        out.push_str(&format!("  \"{key}\": ["));
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"source\": \"{}\", \"line\": {}, \"entry\": \"{}\"}}",
                json_escape(source),
                e.line,
                json_escape(&e.to_string()),
            ));
        }
        if !entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        if key == "stale_allowlist" {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Runs every rule over one parsed file, applying the scope config.
pub fn check_file(parsed: &scan::ParsedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if config::in_scope(&parsed.rel, config::DECISION_SCOPES) {
        out.extend(rules::hash_iter(parsed));
        out.extend(rules::time_source(parsed));
        out.extend(rules::float_ordering(parsed));
    }
    if config::in_scope(&parsed.rel, config::NO_HASH_CONTAINER_SCOPES) {
        out.extend(rules::no_hash_container(parsed));
    }
    if config::in_scope(&parsed.rel, config::HOT_PATH_SCOPES) {
        out.extend(rules::panic_safety(parsed));
    }
    if config::in_scope(&parsed.rel, &["crates/"]) {
        out.extend(rules::os_seeded_rng(parsed));
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if matches!(name.as_str(), "tests" | "benches" | "examples" | "fixtures") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Checks the whole workspace rooted at `root`. `Err` means the check could
/// not run (I/O or parse failure — exit code 2 territory), not that
/// violations were found.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }

    let mut report = Report::default();
    let mut parsed_files: Vec<scan::ParsedFile> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let parsed = scan::parse_source(&rel, &src).map_err(|e| format!("parse {rel}: {e}"))?;
        report.files_scanned += 1;
        parsed_files.push(parsed);
    }

    // Phase 1: call graph + reachability from the decision-path roots.
    let cg = graph::build(&parsed_files, config::DECISION_ROOTS);

    // Phase 2a: the reachability-driven determinism/panic rules. Trees
    // without any root (synthetic fixture workspaces) keep the legacy
    // path-prefix scoping so partial trees still get checked.
    if cg.has_roots() {
        report.reachable_fns = Some(cg.reachable_len());
        for parsed in &parsed_files {
            let reach = parsed.filtered(|f| cg.is_reachable(&parsed.rel, f));
            if config::in_reach_domain(&parsed.rel) {
                report.violations.extend(rules::hash_iter(&reach));
                report.violations.extend(rules::time_source(&reach));
                report.violations.extend(rules::float_ordering(&reach));
            }
            if config::in_scope(&parsed.rel, config::PANIC_DOMAINS) {
                report.violations.extend(rules::panic_safety(&reach));
            }
            // The structural rules keep their path scoping: banned
            // containers and OS-seeded RNG are wrong wherever they appear,
            // not just on paths a scheduler can currently reach.
            if config::in_scope(&parsed.rel, config::NO_HASH_CONTAINER_SCOPES) {
                report.violations.extend(rules::no_hash_container(parsed));
            }
            if config::in_scope(&parsed.rel, &["crates/"]) {
                report.violations.extend(rules::os_seeded_rng(parsed));
            }
        }
    } else {
        for parsed in &parsed_files {
            report.violations.extend(check_file(parsed));
        }
    }

    // Phase 2b: cross-item facts rules.
    report.violations.extend(facts::snapshot_exhaustiveness(
        &parsed_files,
        config::SNAPSHOT_PAIRS,
    ));
    report
        .violations
        .extend(facts::wal_ack_ordering(&parsed_files));
    let mut docs = Vec::new();
    for doc in config::METRIC_DOC_FILES {
        if let Ok(text) = std::fs::read_to_string(root.join(doc)) {
            docs.push((doc.to_string(), text));
        }
    }
    report
        .violations
        .extend(facts::metrics_consistency(&parsed_files, &docs));

    for contract in config::LEAF_CONTRACTS {
        let path = root.join(contract.manifest);
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        report
            .violations
            .extend(rules::layering(contract.manifest, &src, contract.allowed));
    }

    let allowlist_path = root.join(config::PANIC_ALLOWLIST_PATH);
    let entries = match std::fs::read_to_string(&allowlist_path) {
        Ok(src) => allowlist::parse(&src)?,
        Err(_) => Vec::new(), // missing allowlist = empty allowlist
    };
    let (kept, stale) = allowlist::apply(&entries, std::mem::take(&mut report.violations));
    report.violations = kept;
    report.stale_allowlist = stale;

    let exclusions_path = root.join(config::SNAPSHOT_EXCLUSIONS_PATH);
    let exclusions = match std::fs::read_to_string(&exclusions_path) {
        Ok(src) => allowlist::parse(&src)?,
        Err(_) => Vec::new(), // missing exclusions = empty exclusions
    };
    let (kept, stale) =
        allowlist::apply_exclusions(&exclusions, std::mem::take(&mut report.violations));
    report.violations = kept;
    report.stale_exclusions = stale;

    report.violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.pattern, &a.message)
            .cmp(&(&b.file, b.line, b.rule, &b.pattern, &b.message))
    });
    Ok(report)
}
