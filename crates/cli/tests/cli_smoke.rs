//! Smoke tests driving the compiled `threesigma` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_threesigma"))
}

#[test]
fn help_succeeds_and_mentions_subcommands() {
    let out = bin().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for word in ["generate", "run", "compare", "analyze"] {
        assert!(text.contains(word), "usage should mention {word}");
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_scheduler_fails_with_message() {
    let out = bin()
        .args([
            "run",
            "--env",
            "google",
            "--scheduler",
            "wizard",
            "--hours",
            "0.05",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("scheduler"));
}

#[test]
fn generate_run_analyze_pipeline() {
    let dir = std::env::temp_dir().join(format!("threesigma_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");

    let out = bin()
        .args([
            "generate",
            "--env",
            "google",
            "--hours",
            "0.1",
            "--pretrain",
            "100",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = bin()
        .args([
            "run",
            "--trace",
            trace.to_str().unwrap(),
            "--scheduler",
            "3sigma",
            "--cycle",
            "30",
            "--out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("3Sigma"));
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert!(json.get("outcomes").is_some());

    let out = bin()
        .args(["analyze", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("percentiles"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; covered in release by the CI simtest job"
)]
fn simtest_replay_is_byte_identical() {
    let run = || {
        bin()
            .args(["simtest", "--seed", "3"])
            .output()
            .expect("binary runs")
    };
    let (a, b) = (run(), run());
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "simtest replay must be byte-identical");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("digest "), "{text}");
    assert!(text.contains("verdict PASS"), "{text}");
}
