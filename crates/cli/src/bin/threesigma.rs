//! The `threesigma` binary: see `threesigma help`.

use std::process::ExitCode;

use threesigma_cli::{dispatch, Args, CliError};

fn main() -> ExitCode {
    let parsed = Args::parse(std::env::args().skip(1));
    let result = match &parsed {
        Ok(args) => dispatch(args),
        Err(e) => Err(e.clone()),
    };
    match result {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(CliError::MissingCommand) => {
            eprintln!("{}", threesigma_cli::commands::USAGE);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
