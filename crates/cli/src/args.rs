//! Minimal `--flag value` argument parsing.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: one subcommand plus `--key value` options
/// (and bare `--switch` booleans).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// CLI usage errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A required option is absent.
    MissingOption(&'static str),
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A snapshot (or data-dir) file was produced by a newer build than
    /// this one; restoring it could silently misread committed state.
    SnapshotVersion {
        /// Offending snapshot file or data directory.
        path: String,
        /// Format version recorded in the file.
        found: u32,
        /// Newest format version this build reads.
        supported: u32,
    },
    /// Underlying I/O failure.
    Io(String),
    /// A check-style subcommand (e.g. `simtest`) found a failure; the
    /// message carries everything needed to reproduce it.
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no subcommand given; try `threesigma help`"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown subcommand `{c}`; try `threesigma help`")
            }
            CliError::MissingOption(o) => write!(f, "missing required option --{o}"),
            CliError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} {value}: expected {expected}"),
            CliError::SnapshotVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "snapshot {path}: format version {found} is newer than the newest \
                 supported version {supported}; refusing to restore"
            ),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I, S>(raw: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        args.options.insert(key.to_owned(), value);
                    }
                    _ => args.switches.push(key.to_owned()),
                }
            } else if args.command.is_empty() {
                args.command = a;
            }
        }
        if args.command.is_empty() {
            return Err(CliError::MissingCommand);
        }
        Ok(args)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A required string option.
    pub fn require(&self, key: &'static str) -> Result<&str, CliError> {
        self.get(key).ok_or(CliError::MissingOption(key))
    }

    /// A parsed numeric/typed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                option: key.to_owned(),
                value: v.to_owned(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// True when a bare `--switch` was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_switches() {
        let a = Args::parse(["run", "--env", "google", "--rc", "--hours", "2.5"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("env"), Some("google"));
        assert!(a.switch("rc"));
        assert!(!a.switch("verbose"));
        assert_eq!(a.parse_or("hours", 1.0).unwrap(), 2.5);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(
            Args::parse(Vec::<String>::new()).unwrap_err(),
            CliError::MissingCommand
        );
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(["generate"]).unwrap();
        assert_eq!(a.get_or("env", "google"), "google");
        assert_eq!(a.parse_or("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn bad_numeric_value_is_reported() {
        let a = Args::parse(["run", "--hours", "soon"]).unwrap();
        let err = a.parse_or("hours", 1.0).unwrap_err();
        assert!(matches!(err, CliError::BadValue { .. }));
    }

    #[test]
    fn required_option_errors_when_missing() {
        let a = Args::parse(["run"]).unwrap();
        assert_eq!(
            a.require("trace").unwrap_err(),
            CliError::MissingOption("trace")
        );
    }

    #[test]
    fn trailing_switch_is_a_switch() {
        let a = Args::parse(["run", "--rc"]).unwrap();
        assert!(a.switch("rc"));
    }
}
