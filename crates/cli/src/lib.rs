//! Command-line interface to the 3Sigma reproduction.
//!
//! The `threesigma` binary exposes the workflow a cluster operator or
//! researcher needs without writing Rust:
//!
//! ```sh
//! threesigma generate --env google --hours 2 --out trace.json
//! threesigma run --trace trace.json --scheduler 3sigma
//! threesigma compare --env google --hours 1
//! threesigma analyze --env mustang --jobs 8000
//! ```
//!
//! Argument parsing is hand-rolled over `std` to keep the dependency
//! surface identical to the library crates.

pub mod args;
pub mod commands;
pub mod serve;

pub use args::{Args, CliError};
pub use commands::dispatch;
