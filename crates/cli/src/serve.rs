//! `threesigma serve` — a long-running scheduling service over a JSONL
//! job stream.
//!
//! Jobs arrive one per line (stdin, a file, or a single TCP connection),
//! tagged with a `tenant`. The session schedules them with the full
//! 3σPredict → 3σSched pipeline under *bounded* memory: the predictor's
//! per-feature-value state, the estimate cache, and the per-job outcome
//! tables are all capped, and every cap is exported as an obs gauge.
//!
//! `--snapshot-out` writes a quiescent [`FullSnapshot`] (engine session +
//! scheduler/predictor state); `--restore` resumes from one. A restored
//! process that streams the remainder of an input reproduces the
//! uninterrupted run's summary digest and stable metrics JSON byte for
//! byte — that equivalence is this mode's correctness contract (and the
//! CI `serve-smoke` check).

use std::io::BufRead;

use serde::{Deserialize, Serialize};
use threesigma::{EstimateSource, SchedConfig, SchedSnapshot, ThreeSigmaScheduler};
use threesigma_cluster::{
    Attributes, ClusterSpec, JobKind, JobSpec, ServeConfig, ServeSession, ServeSnapshot,
};
use threesigma_obs::Recorder;
use threesigma_predict::PredictorConfig;

use crate::args::{Args, CliError};

/// On-disk `--snapshot-out` / `--restore` format: the engine-side session
/// snapshot and the scheduler/predictor snapshot, composed at the CLI
/// layer so both halves restart from the same quiescent instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullSnapshot {
    /// Cluster/session state (`threesigma_cluster::serve`).
    pub engine: ServeSnapshot,
    /// Predictor sketches, expert scores, cache bookkeeping, totals.
    pub sched: SchedSnapshot,
}

/// Keys of the wire format that are job fields rather than attributes.
const WIRE_FIELDS: &[&str] = &[
    "id",
    "tenant",
    "submit_time",
    "tasks",
    "duration",
    "deadline",
];

fn bad_line(line_no: usize, why: impl std::fmt::Display) -> CliError {
    CliError::Failed(format!("input line {line_no}: {why}"))
}

/// Parses one JSONL wire job into a [`JobSpec`].
///
/// Required fields: `id` (u64), `tenant` (string), `submit_time` (seconds,
/// finite ≥ 0), `tasks` (u32 ≥ 1), `duration` (seconds, finite > 0).
/// Optional: `deadline` (absolute seconds → SLO job; absent → best-effort)
/// and any further *string* fields, which become predictor attributes.
/// `tenant` is stored as the `tenant` attribute and also mirrored into
/// `user` (the feature set's per-principal key) unless the line sets an
/// explicit `user`.
fn parse_wire_job(line: &str, line_no: usize) -> Result<JobSpec, CliError> {
    let value: serde_json::Value =
        serde_json::from_str(line).map_err(|e| bad_line(line_no, format!("not JSON: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| bad_line(line_no, "expected a JSON object"))?;
    let field = |key: &'static str| {
        obj.get(key)
            .ok_or_else(|| bad_line(line_no, format!("missing required field `{key}`")))
    };
    let id = field("id")?
        .as_u64()
        .ok_or_else(|| bad_line(line_no, "`id` must be a non-negative integer"))?;
    let tenant = field("tenant")?
        .as_str()
        .ok_or_else(|| bad_line(line_no, "`tenant` must be a string"))?;
    let submit_time = field("submit_time")?
        .as_f64()
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or_else(|| bad_line(line_no, "`submit_time` must be a finite number >= 0"))?;
    let tasks = field("tasks")?
        .as_u64()
        .filter(|n| *n >= 1 && *n <= u64::from(u32::MAX))
        .ok_or_else(|| bad_line(line_no, "`tasks` must be an integer >= 1"))?;
    let duration = field("duration")?
        .as_f64()
        .filter(|d| d.is_finite() && *d > 0.0)
        .ok_or_else(|| bad_line(line_no, "`duration` must be a finite number > 0"))?;
    let kind = match obj.get("deadline") {
        Some(v) => {
            let deadline = v
                .as_f64()
                .filter(|d| d.is_finite() && *d > submit_time)
                .ok_or_else(|| {
                    bad_line(line_no, "`deadline` must be a finite number > submit_time")
                })?;
            JobKind::Slo { deadline }
        }
        None => JobKind::BestEffort,
    };
    let mut attrs = Attributes::new().with("tenant", tenant);
    for (key, value) in obj.iter() {
        if WIRE_FIELDS.contains(&key.as_str()) {
            continue;
        }
        let text = value
            .as_str()
            .ok_or_else(|| bad_line(line_no, format!("attribute `{key}` must be a string")))?;
        attrs.set(key, text);
    }
    if attrs.get("user").is_none() {
        attrs.set("user", tenant);
    }
    Ok(JobSpec::new(id, submit_time, tasks as u32, duration, kind).with_attributes(attrs))
}

fn positive_dim(args: &Args, key: &'static str, default: usize) -> Result<usize, CliError> {
    let n: usize = args.parse_or(key, default)?;
    if n == 0 {
        return Err(CliError::BadValue {
            option: key.into(),
            value: "0".into(),
            expected: "a count >= 1",
        });
    }
    Ok(n)
}

/// `0 = unbounded` knob convention shared by the serve caps.
fn cap(args: &Args, key: &str, default: usize) -> Result<Option<usize>, CliError> {
    let n: usize = args.parse_or(key, default)?;
    Ok((n > 0).then_some(n))
}

fn io_err(e: impl std::fmt::Display) -> CliError {
    CliError::Io(e.to_string())
}

fn sim_err(e: threesigma_cluster::SimError) -> CliError {
    CliError::Failed(e.to_string())
}

/// The line source: stdin, a file, or one accepted TCP connection.
fn open_input(args: &Args) -> Result<Box<dyn BufRead>, CliError> {
    if let Some(addr) = args.get("listen") {
        let listener = std::net::TcpListener::bind(addr).map_err(io_err)?;
        // One connection per process: the client streams JSONL and closes;
        // EOF drains the session, writes the snapshot, and exits. A
        // supervisor restarting the binary with `--restore` gives the
        // continuous-service loop.
        let (conn, _peer) = listener.accept().map_err(io_err)?;
        return Ok(Box::new(std::io::BufReader::new(conn)));
    }
    match args.get_or("input", "-") {
        "-" => Ok(Box::new(std::io::BufReader::new(std::io::stdin()))),
        path => {
            let file = std::fs::File::open(path).map_err(io_err)?;
            Ok(Box::new(std::io::BufReader::new(file)))
        }
    }
}

/// `serve` — stream JSONL jobs through a bounded-memory scheduling session.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let racks = positive_dim(args, "racks", 8)?;
    let nodes_per_rack = positive_dim(args, "nodes-per-rack", 32)?;
    let cluster = ClusterSpec::uniform(racks, nodes_per_rack as u32);

    let mut serve_cfg = ServeConfig::default();
    serve_cfg.cycle_interval = args.parse_or("cycle", serve_cfg.cycle_interval)?;
    serve_cfg.seed = args.parse_or("seed", serve_cfg.seed)?;
    serve_cfg.retention = args.parse_or("retention", 3600.0)?;
    if args.get("max-retries").is_some() {
        serve_cfg.retry.max_retries = args.parse_or("max-retries", 0u32)?;
    }

    let sched_cfg = SchedConfig {
        cycle_hint: serve_cfg.cycle_interval,
        cache_capacity: cap(args, "cache-cap", 4096)?,
        max_timings: cap(args, "max-timings", 256)?,
        ..SchedConfig::default()
    };
    let pred_cfg = PredictorConfig {
        max_tracked_values: cap(args, "predictor-cap", 4096)?,
        value_ttl: cap(args, "predictor-ttl", 0)?.map(|n| n as u64),
        ..PredictorConfig::default()
    };

    let recorder = Recorder::enabled();
    let mut sched = ThreeSigmaScheduler::new(sched_cfg, EstimateSource::Predicted, pred_cfg)
        .with_recorder(&recorder);

    let mut session = match args.get("restore") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(io_err)?;
            let snap: FullSnapshot = serde_json::from_str(&text)
                .map_err(|e| CliError::Failed(format!("--restore {path}: {e}")))?;
            sched
                .serve_restore(snap.sched)
                .map_err(|e| CliError::Failed(format!("--restore {path}: {e}")))?;
            ServeSession::restore(cluster, serve_cfg, &recorder, &snap.engine)
                .map_err(|e| CliError::Failed(format!("--restore {path}: {e}")))?
        }
        None => ServeSession::new(cluster, serve_cfg, &recorder).map_err(sim_err)?,
    };

    let reader = open_input(args)?;
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(io_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec = parse_wire_job(line, i + 1)?;
        session
            .pump_until(spec.submit_time, &mut sched)
            .map_err(sim_err)?;
        session
            .submit(spec)
            .map_err(|e| bad_line(i + 1, format!("rejected: {e}")))?;
    }
    // EOF: run the backlog to quiescence. `drain(∞)` always empties the
    // queue, so the snapshot below cannot fail the quiescence check.
    session.drain(f64::INFINITY, &mut sched).map_err(sim_err)?;

    if let Some(path) = args.get("snapshot-out") {
        let snap = FullSnapshot {
            engine: session.snapshot().map_err(sim_err)?,
            sched: sched.serve_snapshot(),
        };
        let json = serde_json::to_string_pretty(&snap).map_err(io_err)?;
        std::fs::write(path, json).map_err(io_err)?;
    }
    let summary = session.summary();
    if let Some(path) = args.get("summary-json") {
        let json = serde_json::to_string_pretty(&summary).map_err(io_err)?;
        std::fs::write(path, json).map_err(io_err)?;
    }
    if let Some(path) = args.get("metrics-json") {
        std::fs::write(path, recorder.snapshot().to_stable_json()).map_err(io_err)?;
    }
    Ok(format!(
        "serve: submitted={} completed={} canceled={} retired={} live={} \
         cycles={} now={:.1}s slo_miss={:.1}% digest={:016x}",
        summary.submitted,
        summary.completed,
        summary.canceled,
        summary.retired,
        summary.live,
        summary.cycles,
        summary.now,
        summary.slo_miss_pct,
        summary.digest,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::dispatch;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "threesigma_serve_{name}_{}.json",
            std::process::id()
        ))
    }

    /// The checked-in serve-smoke fixtures: six jobs early (with comment
    /// and blank lines), an idle gap long enough for them all to finish
    /// and retire, then four more at t = 2000. CI streams these same
    /// files through the release binary and `cmp`s the outputs.
    fn part1() -> String {
        fixture("serve_part1.jsonl")
    }

    fn part2() -> String {
        fixture("serve_part2.jsonl")
    }

    fn fixture(name: &str) -> String {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        std::fs::read_to_string(path).unwrap()
    }

    fn serve(extra: &[&str]) -> Result<String, CliError> {
        let mut argv: Vec<String> = vec!["serve".into(), "--retention".into(), "50".into()];
        argv.extend(extra.iter().map(|s| (*s).to_owned()));
        dispatch(&Args::parse(argv).unwrap())
    }

    #[test]
    fn serve_streams_jobs_and_reports_summary() {
        let input = tmp("stream_in");
        std::fs::write(&input, format!("{}{}", part1(), part2())).unwrap();
        let out = serve(&["--input", input.to_str().unwrap()]).unwrap();
        assert!(out.contains("submitted=10"), "{out}");
        assert!(out.contains("completed=10"), "{out}");
        assert!(out.contains("retired="), "{out}");
        assert!(out.contains("digest="), "{out}");
        let _ = std::fs::remove_file(input);
    }

    #[test]
    fn serve_snapshot_restore_reproduces_the_uninterrupted_run() {
        let files: Vec<_> = [
            "full_in",
            "p1_in",
            "p2_in",
            "snap",
            "m_full",
            "m_resumed",
            "s_full",
            "s_resumed",
        ]
        .iter()
        .map(|n| tmp(&format!("equiv_{n}")))
        .collect();
        let [full_in, p1_in, p2_in, snap, m_full, m_resumed, s_full, s_resumed] =
            <[_; 8]>::try_from(files.clone()).unwrap();
        std::fs::write(&full_in, format!("{}{}", part1(), part2())).unwrap();
        std::fs::write(&p1_in, part1()).unwrap();
        std::fs::write(&p2_in, part2()).unwrap();

        // Uninterrupted run.
        serve(&[
            "--input",
            full_in.to_str().unwrap(),
            "--metrics-json",
            m_full.to_str().unwrap(),
            "--summary-json",
            s_full.to_str().unwrap(),
        ])
        .unwrap();
        // Stream part 1, snapshot at the idle gap, "crash".
        serve(&[
            "--input",
            p1_in.to_str().unwrap(),
            "--snapshot-out",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        // Restore in a fresh process image and stream the remainder.
        serve(&[
            "--input",
            p2_in.to_str().unwrap(),
            "--restore",
            snap.to_str().unwrap(),
            "--metrics-json",
            m_resumed.to_str().unwrap(),
            "--summary-json",
            s_resumed.to_str().unwrap(),
        ])
        .unwrap();

        let metrics_full = std::fs::read(&m_full).unwrap();
        let metrics_resumed = std::fs::read(&m_resumed).unwrap();
        assert_eq!(
            metrics_full, metrics_resumed,
            "restored run must reproduce the uninterrupted metrics dump byte-for-byte"
        );
        let summary_full = std::fs::read(&s_full).unwrap();
        let summary_resumed = std::fs::read(&s_resumed).unwrap();
        assert_eq!(
            summary_full, summary_resumed,
            "restored run must reproduce the uninterrupted summary (incl. digest)"
        );
        for p in &files {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serve_rejects_malformed_lines_with_line_numbers() {
        for (line, needle) in [
            ("not json", "line 1"),
            (
                "{\"id\":1,\"submit_time\":0,\"tasks\":1,\"duration\":5}",
                "tenant",
            ),
            (
                "{\"id\":1,\"tenant\":\"t\",\"submit_time\":0,\"tasks\":0,\"duration\":5}",
                "tasks",
            ),
            (
                "{\"id\":1,\"tenant\":\"t\",\"submit_time\":0,\"tasks\":1,\"duration\":5,\
                 \"deadline\":-1}",
                "deadline",
            ),
        ] {
            let input = tmp("reject");
            std::fs::write(&input, format!("{line}\n")).unwrap();
            let err = serve(&["--input", input.to_str().unwrap()]).unwrap_err();
            let text = err.to_string();
            assert!(text.contains(needle), "{line}: {text}");
            let _ = std::fs::remove_file(input);
        }
    }

    #[test]
    fn wire_jobs_mirror_tenant_into_the_user_feature_unless_overridden() {
        let spec = parse_wire_job(
            "{\"id\":7,\"tenant\":\"acme\",\"submit_time\":1,\"tasks\":2,\"duration\":9}",
            1,
        )
        .unwrap();
        assert_eq!(spec.attributes.get("tenant"), Some("acme"));
        assert_eq!(spec.attributes.get("user"), Some("acme"));
        let spec = parse_wire_job(
            "{\"id\":8,\"tenant\":\"acme\",\"user\":\"alice\",\"submit_time\":1,\
             \"tasks\":2,\"duration\":9}",
            1,
        )
        .unwrap();
        assert_eq!(spec.attributes.get("tenant"), Some("acme"));
        assert_eq!(spec.attributes.get("user"), Some("alice"));
    }

    #[test]
    fn serve_accepts_one_tcp_connection() {
        use std::io::Write;
        // Pick a free port, then hand it to --listen. The probe listener is
        // dropped first; nothing else in this process binds ports.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let server = {
            let addr = addr.clone();
            std::thread::spawn(move || serve(&["--listen", &addr]).unwrap())
        };
        // Retry until the server thread is accepting.
        let mut conn = None;
        for _ in 0..200 {
            match std::net::TcpStream::connect(&addr) {
                Ok(c) => {
                    conn = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut conn = conn.expect("server did not start listening");
        conn.write_all(part1().as_bytes()).unwrap();
        drop(conn);
        let out = server.join().unwrap();
        assert!(out.contains("submitted=6"), "{out}");
    }
}
