//! `threesigma serve` — a long-running scheduling service over a JSONL
//! job stream.
//!
//! Jobs arrive one per line (stdin, a file, or a single TCP connection),
//! tagged with a `tenant`. The session schedules them with the full
//! 3σPredict → 3σSched pipeline under *bounded* memory: the predictor's
//! per-feature-value state, the estimate cache, and the per-job outcome
//! tables are all capped, and every cap is exported as an obs gauge.
//!
//! # Crash safety (`--data-dir`)
//!
//! With `--data-dir DIR` the session is crash-only. Every accepted job is
//! appended (and fsynced, unless `--no-fsync`) to a CRC32-framed
//! write-ahead journal *before* it is acknowledged; quiescent moments
//! trigger automatic snapshots (`--snapshot-every-jobs` /
//! `--snapshot-every-secs`) that truncate the journal past their
//! watermark. On startup the newest valid snapshot is loaded (torn tails
//! and corrupt candidates are tolerated, never panicked on) and the
//! journal suffix is replayed through the same deterministic ingest
//! pipeline, so a `kill -9`'d process recovers to a state digest-identical
//! to a never-crashed run — the CI `crash-smoke` check.
//!
//! # Admission control and poison lines
//!
//! `--max-queue` bounds the non-terminal backlog and `--tenant-quota`
//! bounds each tenant's in-flight jobs; violations produce typed
//! `rejected` responses on the wire (reasons `queue_full`,
//! `tenant_quota`, `duplicate`, `out_of_order`) and counters, never a
//! process exit. Malformed lines are counted, sampled into a quarantine
//! file, and rejected with reason `malformed` — they do not kill the
//! connection. Abrupt client disconnects and mid-line EOF on `--listen`
//! are handled gracefully: complete lines are processed (and journaled),
//! the partial tail is discarded with a typed warning.
//!
//! `--snapshot-out` writes a quiescent [`FullSnapshot`] (engine session +
//! scheduler/predictor state); `--restore` resumes from one. A restored
//! process that streams the remainder of an input reproduces the
//! uninterrupted run's summary digest and stable metrics JSON byte for
//! byte — that equivalence is this mode's correctness contract (and the
//! CI `serve-smoke` check).

use std::io::{BufRead, Write};
use std::path::PathBuf;

use serde::{Deserialize, Map, Serialize, Value};
use threesigma::{EstimateSource, SchedConfig, SchedSnapshot, ThreeSigmaScheduler};
use threesigma_cluster::wal::{recover_data_dir, replay};
use threesigma_cluster::{
    Attributes, ClusterSpec, DataDir, JobKind, JobSpec, ServeConfig, ServeSession, ServeSnapshot,
    SimError, SnapshotFile, Wal, WalError, WalMetrics, WalRecord, SNAPSHOT_FORMAT_VERSION,
    WAL_MAGIC,
};
use threesigma_obs::{Counter, Recorder};
use threesigma_predict::PredictorConfig;

use crate::args::{Args, CliError};

/// Format version written into [`FullSnapshot`] files. Legacy files
/// without the field read as version 1; newer versions are refused with
/// [`CliError::SnapshotVersion`].
pub const FULL_SNAPSHOT_VERSION: u32 = 2;

/// Wire-layer stream statistics. Persisted inside [`FullSnapshot`] so the
/// byte-stable rejection counters survive restarts and crashes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WireStats {
    /// Jobs accepted (journaled, where durable) over the stream lifetime.
    pub accepted: u64,
    /// Lines rejected as malformed (bad JSON, bad fields, bad UTF-8).
    pub rejected_malformed: u64,
    /// Jobs rejected because the non-terminal backlog hit `--max-queue`.
    pub rejected_queue_full: u64,
    /// Jobs rejected because their tenant hit `--tenant-quota`.
    pub rejected_tenant_quota: u64,
    /// Jobs rejected for reusing a live job id.
    pub rejected_duplicate: u64,
    /// Jobs rejected for arriving out of `submit_time` order.
    pub rejected_out_of_order: u64,
    /// Malformed lines written to the quarantine file (sample-capped).
    pub quarantined: u64,
    /// Partial (unterminated) input tails discarded at EOF on `--listen`.
    pub partial_tails: u64,
    /// Abrupt client disconnects absorbed on `--listen`.
    pub disconnects: u64,
}

impl WireStats {
    fn rejected_total(&self) -> u64 {
        self.rejected_malformed
            + self.rejected_queue_full
            + self.rejected_tenant_quota
            + self.rejected_duplicate
            + self.rejected_out_of_order
    }
}

/// On-disk `--snapshot-out` / `--restore` format: the engine-side session
/// snapshot and the scheduler/predictor snapshot, composed at the CLI
/// layer so both halves restart from the same quiescent instant. The same
/// structure is the payload of every auto-snapshot in `--data-dir`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullSnapshot {
    /// [`FULL_SNAPSHOT_VERSION`] when written by this build; `None` in
    /// legacy (version-1) files, which are still accepted.
    pub format_version: Option<u32>,
    /// Cluster/session state (`threesigma_cluster::serve`).
    pub engine: ServeSnapshot,
    /// Predictor sketches, expert scores, cache bookkeeping, totals.
    pub sched: SchedSnapshot,
    /// Wire-layer counters; `None` in legacy files (restored as zeros).
    pub wire: Option<WireStats>,
}

/// Keys of the wire format that are job fields rather than attributes.
const WIRE_FIELDS: &[&str] = &[
    "id",
    "tenant",
    "submit_time",
    "tasks",
    "duration",
    "deadline",
];

fn bad_line(line_no: u64, why: impl std::fmt::Display) -> CliError {
    CliError::Failed(format!("input line {line_no}: {why}"))
}

/// Parses one JSONL wire job into a [`JobSpec`].
///
/// Required fields: `id` (u64), `tenant` (string), `submit_time` (seconds,
/// finite ≥ 0), `tasks` (u32 ≥ 1), `duration` (seconds, finite > 0).
/// Optional: `deadline` (absolute seconds → SLO job; absent → best-effort)
/// and any further *string* fields, which become predictor attributes.
/// `tenant` is stored as the `tenant` attribute and also mirrored into
/// `user` (the feature set's per-principal key) unless the line sets an
/// explicit `user`.
fn parse_wire_job(line: &str, line_no: u64) -> Result<JobSpec, CliError> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| bad_line(line_no, format!("not JSON: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| bad_line(line_no, "expected a JSON object"))?;
    let field = |key: &'static str| {
        obj.get(key)
            .ok_or_else(|| bad_line(line_no, format!("missing required field `{key}`")))
    };
    let id = field("id")?
        .as_u64()
        .ok_or_else(|| bad_line(line_no, "`id` must be a non-negative integer"))?;
    let tenant = field("tenant")?
        .as_str()
        .ok_or_else(|| bad_line(line_no, "`tenant` must be a string"))?;
    let submit_time = field("submit_time")?
        .as_f64()
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or_else(|| bad_line(line_no, "`submit_time` must be a finite number >= 0"))?;
    let tasks = field("tasks")?
        .as_u64()
        .filter(|n| *n >= 1 && *n <= u64::from(u32::MAX))
        .ok_or_else(|| bad_line(line_no, "`tasks` must be an integer >= 1"))?;
    let duration = field("duration")?
        .as_f64()
        .filter(|d| d.is_finite() && *d > 0.0)
        .ok_or_else(|| bad_line(line_no, "`duration` must be a finite number > 0"))?;
    let kind = match obj.get("deadline") {
        Some(v) => {
            let deadline = v
                .as_f64()
                .filter(|d| d.is_finite() && *d > submit_time)
                .ok_or_else(|| {
                    bad_line(line_no, "`deadline` must be a finite number > submit_time")
                })?;
            JobKind::Slo { deadline }
        }
        None => JobKind::BestEffort,
    };
    let mut attrs = Attributes::new().with("tenant", tenant);
    for (key, value) in obj.iter() {
        if WIRE_FIELDS.contains(&key.as_str()) {
            continue;
        }
        let text = value
            .as_str()
            .ok_or_else(|| bad_line(line_no, format!("attribute `{key}` must be a string")))?;
        attrs.set(key, text);
    }
    if attrs.get("user").is_none() {
        attrs.set("user", tenant);
    }
    Ok(JobSpec::new(id, submit_time, tasks as u32, duration, kind).with_attributes(attrs))
}

fn positive_dim(args: &Args, key: &'static str, default: usize) -> Result<usize, CliError> {
    let n: usize = args.parse_or(key, default)?;
    if n == 0 {
        return Err(CliError::BadValue {
            option: key.into(),
            value: "0".into(),
            expected: "a count >= 1",
        });
    }
    Ok(n)
}

/// `0 = unbounded` knob convention shared by the serve caps.
fn cap(args: &Args, key: &str, default: usize) -> Result<Option<usize>, CliError> {
    let n: usize = args.parse_or(key, default)?;
    Ok((n > 0).then_some(n))
}

fn io_err(e: impl std::fmt::Display) -> CliError {
    CliError::Io(e.to_string())
}

fn sim_err(e: SimError) -> CliError {
    CliError::Failed(e.to_string())
}

fn wal_err(e: WalError) -> CliError {
    match e {
        WalError::UnsupportedSnapshotVersion {
            path,
            found,
            supported,
        } => CliError::SnapshotVersion {
            path: path.display().to_string(),
            found,
            supported,
        },
        other => CliError::Io(other.to_string()),
    }
}

/// Parses a [`FullSnapshot`] from a JSON value, refusing newer format
/// versions with a typed error *before* attempting the full decode (so a
/// newer build's layout changes surface as a version problem, not a
/// confusing parse failure). Files without `format_version` are legacy
/// version 1 and accepted.
fn full_snapshot_from_value(value: &Value, origin: &str) -> Result<FullSnapshot, CliError> {
    if let Some(found) = value.get("format_version").and_then(Value::as_u64) {
        if found > u64::from(FULL_SNAPSHOT_VERSION) {
            return Err(CliError::SnapshotVersion {
                path: origin.to_owned(),
                found: u32::try_from(found).unwrap_or(u32::MAX),
                supported: FULL_SNAPSHOT_VERSION,
            });
        }
    }
    serde_json::from_value(value).map_err(|e| CliError::Failed(format!("{origin}: {e}")))
}

fn restore_err(origin: &str) -> impl Fn(SimError) -> CliError + '_ {
    move |e| match e {
        SimError::UnsupportedSnapshotVersion { found, supported } => CliError::SnapshotVersion {
            path: origin.to_owned(),
            found,
            supported,
        },
        other => CliError::Failed(format!("{origin}: {other}")),
    }
}

/// The line source: stdin, a file, or one accepted TCP connection (whose
/// write half, when available, carries the per-line JSON responses).
fn open_input(args: &Args) -> Result<(Box<dyn BufRead>, Option<std::net::TcpStream>), CliError> {
    if let Some(addr) = args.get("listen") {
        let listener = std::net::TcpListener::bind(addr).map_err(io_err)?;
        // One connection per process: the client streams JSONL and closes;
        // EOF drains the session, writes the snapshot, and exits. A
        // supervisor restarting the binary with `--data-dir` gives the
        // continuous-service loop.
        let (conn, _peer) = listener.accept().map_err(io_err)?;
        let responses = conn.try_clone().ok();
        return Ok((Box::new(std::io::BufReader::new(conn)), responses));
    }
    match args.get_or("input", "-") {
        "-" => Ok((Box::new(std::io::BufReader::new(std::io::stdin())), None)),
        path => {
            let file = std::fs::File::open(path).map_err(io_err)?;
            Ok((Box::new(std::io::BufReader::new(file)), None))
        }
    }
}

/// Typed rejection reasons echoed on the wire and counted per-reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RejectReason {
    Malformed,
    QueueFull,
    TenantQuota,
    Duplicate,
    OutOfOrder,
}

impl RejectReason {
    fn as_str(self) -> &'static str {
        match self {
            RejectReason::Malformed => "malformed",
            RejectReason::QueueFull => "queue_full",
            RejectReason::TenantQuota => "tenant_quota",
            RejectReason::Duplicate => "duplicate",
            RejectReason::OutOfOrder => "out_of_order",
        }
    }
}

/// Maps an admission rejection to its wire reason. `None` means the error
/// is not an admission rejection and must stay fatal.
fn reject_reason(e: &SimError) -> Option<RejectReason> {
    match e {
        SimError::MalformedJobSpec { .. } => Some(RejectReason::Malformed),
        SimError::QueueFull { .. } => Some(RejectReason::QueueFull),
        SimError::TenantQuotaExceeded { .. } => Some(RejectReason::TenantQuota),
        SimError::DuplicateJobId { .. } => Some(RejectReason::Duplicate),
        SimError::OutOfOrderSubmit { .. } => Some(RejectReason::OutOfOrder),
        _ => None,
    }
}

/// Per-line JSON responses on the TCP write half (no-op for file/stdin
/// input). Write failures are ignored: a vanished client must not take
/// the session down.
struct Responder {
    conn: Option<std::net::TcpStream>,
}

impl Responder {
    fn send(&mut self, m: Map) {
        let Some(conn) = &mut self.conn else { return };
        if let Ok(text) = serde_json::to_string(&Value::Object(m)) {
            let _ = writeln!(conn, "{text}");
        }
    }

    fn accepted(&mut self, line_no: u64, id: u64, seq: Option<u64>) {
        if self.conn.is_none() {
            return;
        }
        let mut m = Map::new();
        m.insert("status", Value::String("accepted".into()));
        m.insert("line", Value::UInt(line_no));
        m.insert("id", Value::UInt(id));
        if let Some(seq) = seq {
            m.insert("seq", Value::UInt(seq));
        }
        self.send(m);
    }

    fn rejected(&mut self, line_no: u64, id: Option<u64>, reason: RejectReason, detail: &str) {
        if self.conn.is_none() {
            return;
        }
        let mut m = Map::new();
        m.insert("status", Value::String("rejected".into()));
        m.insert("line", Value::UInt(line_no));
        if let Some(id) = id {
            m.insert("id", Value::UInt(id));
        }
        m.insert("reason", Value::String(reason.as_str().into()));
        m.insert("detail", Value::String(detail.into()));
        self.send(m);
    }
}

/// Sampled sink for poison input lines: up to `cap` raw lines (with their
/// line number and parse error) are appended as JSONL. Counting happens
/// regardless of the cap; write failures are swallowed — quarantine is an
/// aid, never a reason to stop serving.
struct Quarantine {
    path: Option<PathBuf>,
    cap: u64,
    written: u64,
}

impl Quarantine {
    fn record(&mut self, line_no: u64, raw: &str, error: &str) -> bool {
        let Some(path) = &self.path else { return false };
        if self.written >= self.cap {
            return false;
        }
        let mut m = Map::new();
        m.insert("line", Value::UInt(line_no));
        m.insert("error", Value::String(error.to_owned()));
        m.insert("raw", Value::String(raw.to_owned()));
        let Ok(text) = serde_json::to_string(&Value::Object(m)) else {
            return false;
        };
        let ok = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{text}"))
            .is_ok();
        if ok {
            self.written += 1;
        }
        ok
    }
}

/// Wire-layer counters, published with `set_total` from [`WireStats`] so a
/// recovered process reports stream-lifetime values in the byte-stable
/// metrics dump.
struct WireMetrics {
    rejected_total: Counter,
    malformed: Counter,
    queue_full: Counter,
    tenant_quota: Counter,
    duplicate: Counter,
    out_of_order: Counter,
    quarantined: Counter,
    partial_tails: Counter,
    disconnects: Counter,
}

impl WireMetrics {
    fn register(rec: &Recorder) -> Self {
        Self {
            rejected_total: rec.counter(
                "serve_rejected_total",
                "Input lines rejected by the serve admission layer (all reasons)",
            ),
            malformed: rec.counter(
                "serve_rejected_malformed_total",
                "Input lines rejected as malformed",
            ),
            queue_full: rec.counter(
                "serve_rejected_queue_full_total",
                "Jobs rejected because the non-terminal backlog hit --max-queue",
            ),
            tenant_quota: rec.counter(
                "serve_rejected_tenant_quota_total",
                "Jobs rejected because their tenant hit --tenant-quota",
            ),
            duplicate: rec.counter(
                "serve_rejected_duplicate_total",
                "Jobs rejected for reusing a live job id",
            ),
            out_of_order: rec.counter(
                "serve_rejected_out_of_order_total",
                "Jobs rejected for arriving out of submit_time order",
            ),
            quarantined: rec.counter(
                "serve_quarantined_lines_total",
                "Malformed input lines written to the quarantine file",
            ),
            partial_tails: rec.counter(
                "serve_partial_tail_discards_total",
                "Unterminated input tails discarded at connection EOF",
            ),
            disconnects: rec.counter(
                "serve_disconnects_total",
                "Abrupt client disconnects absorbed without ending the session",
            ),
        }
    }

    fn publish(&self, w: &WireStats) {
        self.rejected_total.set_total(w.rejected_total());
        self.malformed.set_total(w.rejected_malformed);
        self.queue_full.set_total(w.rejected_queue_full);
        self.tenant_quota.set_total(w.rejected_tenant_quota);
        self.duplicate.set_total(w.rejected_duplicate);
        self.out_of_order.set_total(w.rejected_out_of_order);
        self.quarantined.set_total(w.quarantined);
        self.partial_tails.set_total(w.partial_tails);
        self.disconnects.set_total(w.disconnects);
    }
}

/// The durability half of a `--data-dir` session: journal handle, metric
/// handles, the lifetime truncation total (carried through snapshots),
/// and the auto-snapshot policy state.
struct Durable {
    data: DataDir,
    wal: Wal,
    metrics: WalMetrics,
    truncated_total: u64,
    snap_jobs: u64,
    snap_secs: f64,
    records_since_snap: u64,
    last_snap_now: f64,
}

impl Durable {
    fn append(&mut self, record: WalRecord) -> Result<u64, CliError> {
        let seq = self.wal.append(record).map_err(wal_err)?;
        self.records_since_snap += 1;
        self.metrics.publish(&self.wal, self.truncated_total);
        Ok(seq)
    }

    /// Whether the auto-snapshot policy wants a snapshot *now* (the caller
    /// still checks quiescence). Both triggers are deterministic functions
    /// of the accepted stream — journaled-records-since-snapshot and
    /// simulated seconds-since-snapshot — so a recovered run snapshots at
    /// the same stream positions as a never-crashed one.
    fn snapshot_due(&self, now: f64) -> bool {
        if self.records_since_snap == 0 {
            return false;
        }
        (self.snap_jobs > 0 && self.records_since_snap >= self.snap_jobs)
            || (self.snap_secs > 0.0 && now - self.last_snap_now >= self.snap_secs)
    }

    /// Writes a watermarked snapshot (temp file + rename, newest two
    /// generations kept), *then* truncates the journal through the
    /// watermark. A crash between the two steps only leaves covered
    /// records behind; recovery filters them by sequence number.
    fn take_snapshot(
        &mut self,
        session: &ServeSession,
        sched: &ThreeSigmaScheduler,
        wire: &WireStats,
    ) -> Result<(), CliError> {
        let full = FullSnapshot {
            format_version: Some(FULL_SNAPSHOT_VERSION),
            engine: session.snapshot().map_err(sim_err)?,
            sched: sched.serve_snapshot(),
            wire: Some(*wire),
        };
        let watermark = self.wal.next_seq().saturating_sub(1);
        // Count the truncation at snapshot-write time: the snapshot carries
        // the post-truncation lifetime total, so the counter is identical
        // whether or not the truncate below ever runs before a crash.
        let body = self.wal.len_bytes().saturating_sub(WAL_MAGIC.len() as u64);
        let total = self.truncated_total + body;
        let payload = serde_json::to_value(&full).map_err(io_err)?;
        self.data
            .write_snapshot(&SnapshotFile {
                format_version: SNAPSHOT_FORMAT_VERSION,
                wal_seq: watermark,
                wal_truncated_bytes: total,
                payload,
            })
            .map_err(wal_err)?;
        self.truncated_total = total;
        self.wal.truncate_through(watermark).map_err(wal_err)?;
        self.records_since_snap = 0;
        self.last_snap_now = session.now();
        self.metrics.publish(&self.wal, self.truncated_total);
        Ok(())
    }
}

/// Counts a rejection, samples it into quarantine (malformed lines only),
/// republishes the counters, and echoes the typed wire response.
#[allow(clippy::too_many_arguments)]
fn reject(
    line_no: u64,
    id: Option<u64>,
    reason: RejectReason,
    detail: &str,
    quarantine_raw: Option<&str>,
    wire: &mut WireStats,
    wire_metrics: &WireMetrics,
    responder: &mut Responder,
    quarantine: &mut Quarantine,
) {
    match reason {
        RejectReason::Malformed => wire.rejected_malformed += 1,
        RejectReason::QueueFull => wire.rejected_queue_full += 1,
        RejectReason::TenantQuota => wire.rejected_tenant_quota += 1,
        RejectReason::Duplicate => wire.rejected_duplicate += 1,
        RejectReason::OutOfOrder => wire.rejected_out_of_order += 1,
    }
    if let Some(raw) = quarantine_raw {
        if quarantine.record(line_no, raw, detail) {
            wire.quarantined += 1;
        }
    }
    wire_metrics.publish(wire);
    // Typed rejections admit nothing, so there is no record to replay;
    // only accepted jobs are journaled before their ack.
    // lint: no-journal
    responder.rejected(line_no, id, reason, detail);
}

/// Processes one complete input line: parse, admit, journal, submit, ack.
/// Malformed lines and admission rejections are absorbed (counted,
/// quarantined, echoed); only internal failures are fatal.
#[allow(clippy::too_many_arguments)]
fn handle_line(
    raw: &[u8],
    line_no: u64,
    session: &mut ServeSession,
    sched: &mut ThreeSigmaScheduler,
    durable: &mut Option<Durable>,
    wire: &mut WireStats,
    wire_metrics: &WireMetrics,
    responder: &mut Responder,
    quarantine: &mut Quarantine,
) -> Result<(), CliError> {
    let text = match std::str::from_utf8(raw) {
        Ok(t) => t,
        Err(_) => {
            let lossy = String::from_utf8_lossy(raw).into_owned();
            reject(
                line_no,
                None,
                RejectReason::Malformed,
                "line is not valid UTF-8",
                Some(&lossy),
                wire,
                wire_metrics,
                responder,
                quarantine,
            );
            return Ok(());
        }
    };
    let line = text.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(());
    }
    let spec = match parse_wire_job(line, line_no) {
        Ok(s) => s,
        Err(e) => {
            reject(
                line_no,
                None,
                RejectReason::Malformed,
                &e.to_string(),
                Some(line),
                wire,
                wire_metrics,
                responder,
                quarantine,
            );
            return Ok(());
        }
    };
    // Admission runs against the *current* state, before any pump, so a
    // rejected line leaves the session untouched: replaying the journal
    // (accepted records only) reconstructs the identical state machine.
    if let Err(e) = session.admit(&spec) {
        let Some(reason) = reject_reason(&e) else {
            return Err(sim_err(e));
        };
        let raw = (reason == RejectReason::Malformed).then_some(line);
        reject(
            line_no,
            Some(spec.id.0),
            reason,
            &e.to_string(),
            raw,
            wire,
            wire_metrics,
            responder,
            quarantine,
        );
        return Ok(());
    }
    let id = spec.id.0;
    session
        .pump_until(spec.submit_time, sched)
        .map_err(sim_err)?;
    let seq = match durable {
        Some(d) => {
            // Quiescent idle gaps are the only legal snapshot points; take
            // one here if the policy says it is due, *before* journaling
            // the new job (so the snapshot watermark excludes it).
            if d.snapshot_due(session.now()) && session.is_quiescent() {
                d.take_snapshot(session, sched, wire)?;
            }
            // Journal (and fsync) before submitting: the ack below is only
            // sent once the job is durable.
            Some(d.append(WalRecord::Job(spec.clone()))?)
        }
        None => None,
    };
    // Admission passed pre-pump and pumping only completes or cancels
    // work, so this submit cannot be rejected; any error here is internal.
    session.submit(spec).map_err(sim_err)?;
    wire.accepted += 1;
    wire_metrics.publish(wire);
    responder.accepted(line_no, id, seq);
    Ok(())
}

/// `serve` — stream JSONL jobs through a bounded-memory scheduling session.
#[allow(clippy::too_many_lines)]
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let racks = positive_dim(args, "racks", 8)?;
    let nodes_per_rack = positive_dim(args, "nodes-per-rack", 32)?;
    let cluster = ClusterSpec::uniform(racks, nodes_per_rack as u32);

    let mut serve_cfg = ServeConfig::default();
    serve_cfg.cycle_interval = args.parse_or("cycle", serve_cfg.cycle_interval)?;
    serve_cfg.seed = args.parse_or("seed", serve_cfg.seed)?;
    serve_cfg.retention = args.parse_or("retention", 3600.0)?;
    if args.get("max-retries").is_some() {
        serve_cfg.retry.max_retries = args.parse_or("max-retries", 0u32)?;
    }
    serve_cfg.max_queue = cap(args, "max-queue", 0)?;
    serve_cfg.tenant_quota = cap(args, "tenant-quota", 0)?.map(|n| n as u64);

    let sched_cfg = SchedConfig {
        cycle_hint: serve_cfg.cycle_interval,
        cache_capacity: cap(args, "cache-cap", 4096)?,
        max_timings: cap(args, "max-timings", 256)?,
        ..SchedConfig::default()
    };
    let pred_cfg = PredictorConfig {
        max_tracked_values: cap(args, "predictor-cap", 4096)?,
        value_ttl: cap(args, "predictor-ttl", 0)?.map(|n| n as u64),
        ..PredictorConfig::default()
    };

    let recorder = Recorder::enabled();
    let mut sched = ThreeSigmaScheduler::new(sched_cfg, EstimateSource::Predicted, pred_cfg)
        .with_recorder(&recorder);
    let wire_metrics = WireMetrics::register(&recorder);
    let mut wire = WireStats::default();

    // Durable mode: recover the data directory (newest valid snapshot +
    // journal suffix) and replay the suffix through the same deterministic
    // ingest pipeline the live loop uses.
    let mut durable: Option<Durable> = None;
    let mut session = if let Some(dir) = args.get("data-dir") {
        if args.get("restore").is_some() {
            return Err(CliError::Failed(
                "--data-dir and --restore are mutually exclusive; the data directory \
                 carries its own snapshots"
                    .into(),
            ));
        }
        let sync = !args.switch("no-fsync");
        let data = DataDir::open(dir).map_err(wal_err)?;
        let mut recovered = recover_data_dir(&data, sync).map_err(wal_err)?;
        let metrics = WalMetrics::register(&recorder);
        let mut truncated_total = 0;
        let watermark = recovered.snapshot.as_ref().map_or(0, |s| s.wal_seq);
        let mut session = match &recovered.snapshot {
            Some(sf) => {
                truncated_total = sf.wal_truncated_bytes;
                let full = full_snapshot_from_value(&sf.payload, dir)?;
                wire = full.wire.unwrap_or_default();
                sched
                    .serve_restore(full.sched)
                    .map_err(|e| CliError::Failed(format!("data dir {dir}: {e}")))?;
                ServeSession::restore(cluster, serve_cfg, &recorder, &full.engine)
                    .map_err(restore_err(dir))?
            }
            None => ServeSession::new(cluster, serve_cfg, &recorder).map_err(sim_err)?,
        };
        // Finish an interrupted truncation: records at or below the
        // watermark were already counted into the snapshot's lifetime
        // truncation total, so this pass does not re-count them.
        if recovered.covered > 0 || recovered.duplicates > 0 {
            recovered.wal.truncate_through(watermark).map_err(wal_err)?;
        }
        let last_snap_now = session.now();
        let replayed = replay(&mut session, &mut sched, &recovered.suffix).map_err(sim_err)?;
        let jobs_replayed = recovered
            .suffix
            .iter()
            .filter(|e| matches!(e.record, WalRecord::Job(_)))
            .count() as u64;
        wire.accepted += jobs_replayed;
        metrics.recovered_records.set(replayed as f64);
        metrics.publish(&recovered.wal, truncated_total);
        durable = Some(Durable {
            data,
            wal: recovered.wal,
            metrics,
            truncated_total,
            snap_jobs: args.parse_or("snapshot-every-jobs", 256u64)?,
            snap_secs: args.parse_or("snapshot-every-secs", 0.0f64)?,
            records_since_snap: recovered.suffix.len() as u64,
            last_snap_now,
        });
        session
    } else {
        match args.get("restore") {
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(io_err)?;
                let value: Value = serde_json::from_str(&text)
                    .map_err(|e| CliError::Failed(format!("--restore {path}: {e}")))?;
                let origin = format!("--restore {path}");
                let full = full_snapshot_from_value(&value, &origin)?;
                wire = full.wire.unwrap_or_default();
                sched
                    .serve_restore(full.sched)
                    .map_err(|e| CliError::Failed(format!("{origin}: {e}")))?;
                ServeSession::restore(cluster, serve_cfg, &recorder, &full.engine)
                    .map_err(restore_err(&origin))?
            }
            None => ServeSession::new(cluster, serve_cfg, &recorder).map_err(sim_err)?,
        }
    };
    wire_metrics.publish(&wire);

    let (mut reader, conn) = open_input(args)?;
    let is_tcp = conn.is_some();
    let mut responder = Responder { conn };
    let quarantine_path = match args.get("quarantine") {
        Some(p) => Some(PathBuf::from(p)),
        None => durable.as_ref().map(|d| d.data.quarantine_path()),
    };
    let mut quarantine = Quarantine {
        path: quarantine_path,
        cap: args.parse_or("quarantine-sample", 100u64)?,
        written: 0,
    };

    // Byte-level read loop: `read_until` instead of `lines()` so a torn
    // final line (mid-line EOF on a dropped connection) is detectable and
    // a read error on TCP degrades to a warning instead of an exit.
    let mut line_no = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    let warning = loop {
        buf.clear();
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break None,
            Ok(_) => {
                if buf.last() != Some(&b'\n') && is_tcp {
                    // Mid-line EOF: the client died mid-send. Every
                    // complete line is already processed (and journaled);
                    // discard the torn tail with a typed warning.
                    wire.partial_tails += 1;
                    wire_metrics.publish(&wire);
                    break Some(format!(
                        "partial input tail discarded ({} bytes, mid-line EOF)",
                        buf.len()
                    ));
                }
                line_no += 1;
                handle_line(
                    &buf,
                    line_no,
                    &mut session,
                    &mut sched,
                    &mut durable,
                    &mut wire,
                    &wire_metrics,
                    &mut responder,
                    &mut quarantine,
                )?;
            }
            Err(e) => {
                if is_tcp {
                    wire.disconnects += 1;
                    wire_metrics.publish(&wire);
                    break Some(format!("client disconnected abruptly: {e}"));
                }
                return Err(io_err(e));
            }
        }
    };
    if let Some(w) = &warning {
        eprintln!("serve: warning: {w}");
    }

    // EOF: run the backlog to quiescence. `drain(∞)` always empties the
    // queue, so the snapshot below cannot fail the quiescence check. In
    // durable mode the drain is journaled as a clock advance first (so a
    // crash before the closing snapshot still recovers it), then the
    // closing snapshot truncates the journal.
    session.drain(f64::INFINITY, &mut sched).map_err(sim_err)?;
    if let Some(d) = &mut durable {
        d.append(WalRecord::Clock { now: session.now() })?;
        d.take_snapshot(&session, &sched, &wire)?;
    }

    if let Some(path) = args.get("snapshot-out") {
        let snap = FullSnapshot {
            format_version: Some(FULL_SNAPSHOT_VERSION),
            engine: session.snapshot().map_err(sim_err)?,
            sched: sched.serve_snapshot(),
            wire: Some(wire),
        };
        let json = serde_json::to_string_pretty(&snap).map_err(io_err)?;
        std::fs::write(path, json).map_err(io_err)?;
    }
    let summary = session.summary();
    if let Some(path) = args.get("summary-json") {
        let json = serde_json::to_string_pretty(&summary).map_err(io_err)?;
        std::fs::write(path, json).map_err(io_err)?;
    }
    if let Some(path) = args.get("metrics-json") {
        std::fs::write(path, recorder.snapshot().to_stable_json()).map_err(io_err)?;
    }
    Ok(format!(
        "serve: submitted={} completed={} canceled={} retired={} live={} \
         cycles={} now={:.1}s slo_miss={:.1}% rejected={} quarantined={} digest={:016x}",
        summary.submitted,
        summary.completed,
        summary.canceled,
        summary.retired,
        summary.live,
        summary.cycles,
        summary.now,
        summary.slo_miss_pct,
        wire.rejected_total(),
        wire.quarantined,
        summary.digest,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::dispatch;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "threesigma_serve_{name}_{}.json",
            std::process::id()
        ))
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("threesigma_serve_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The checked-in serve-smoke fixtures: six jobs early (with comment
    /// and blank lines), an idle gap long enough for them all to finish
    /// and retire, then four more at t = 2000. CI streams these same
    /// files through the release binary and `cmp`s the outputs.
    fn part1() -> String {
        fixture("serve_part1.jsonl")
    }

    fn part2() -> String {
        fixture("serve_part2.jsonl")
    }

    fn fixture(name: &str) -> String {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        std::fs::read_to_string(path).unwrap()
    }

    fn serve(extra: &[&str]) -> Result<String, CliError> {
        let mut argv: Vec<String> = vec!["serve".into(), "--retention".into(), "50".into()];
        argv.extend(extra.iter().map(|s| (*s).to_owned()));
        dispatch(&Args::parse(argv).unwrap())
    }

    /// Drops the one genuinely process-local metric before comparing two
    /// runs' stable dumps (a straight-through run recovers nothing).
    fn filter_recovered(metrics: &str) -> String {
        metrics
            .lines()
            .filter(|l| !l.contains("wal_recovered_records"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn serve_streams_jobs_and_reports_summary() {
        let input = tmp("stream_in");
        std::fs::write(&input, format!("{}{}", part1(), part2())).unwrap();
        let out = serve(&["--input", input.to_str().unwrap()]).unwrap();
        assert!(out.contains("submitted=10"), "{out}");
        assert!(out.contains("completed=10"), "{out}");
        assert!(out.contains("rejected=0"), "{out}");
        assert!(out.contains("digest="), "{out}");
        let _ = std::fs::remove_file(input);
    }

    #[test]
    fn serve_snapshot_restore_reproduces_the_uninterrupted_run() {
        let files: Vec<_> = [
            "full_in",
            "p1_in",
            "p2_in",
            "snap",
            "m_full",
            "m_resumed",
            "s_full",
            "s_resumed",
        ]
        .iter()
        .map(|n| tmp(&format!("equiv_{n}")))
        .collect();
        let [full_in, p1_in, p2_in, snap, m_full, m_resumed, s_full, s_resumed] =
            <[_; 8]>::try_from(files.clone()).unwrap();
        std::fs::write(&full_in, format!("{}{}", part1(), part2())).unwrap();
        std::fs::write(&p1_in, part1()).unwrap();
        std::fs::write(&p2_in, part2()).unwrap();

        // Uninterrupted run.
        serve(&[
            "--input",
            full_in.to_str().unwrap(),
            "--metrics-json",
            m_full.to_str().unwrap(),
            "--summary-json",
            s_full.to_str().unwrap(),
        ])
        .unwrap();
        // Stream part 1, snapshot at the idle gap, "crash".
        serve(&[
            "--input",
            p1_in.to_str().unwrap(),
            "--snapshot-out",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        // Restore in a fresh process image and stream the remainder.
        serve(&[
            "--input",
            p2_in.to_str().unwrap(),
            "--restore",
            snap.to_str().unwrap(),
            "--metrics-json",
            m_resumed.to_str().unwrap(),
            "--summary-json",
            s_resumed.to_str().unwrap(),
        ])
        .unwrap();

        let metrics_full = std::fs::read(&m_full).unwrap();
        let metrics_resumed = std::fs::read(&m_resumed).unwrap();
        assert_eq!(
            metrics_full, metrics_resumed,
            "restored run must reproduce the uninterrupted metrics dump byte-for-byte"
        );
        let summary_full = std::fs::read(&s_full).unwrap();
        let summary_resumed = std::fs::read(&s_resumed).unwrap();
        assert_eq!(
            summary_full, summary_resumed,
            "restored run must reproduce the uninterrupted summary (incl. digest)"
        );
        for p in &files {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn malformed_lines_are_quarantined_with_line_numbers_not_fatal() {
        let input = tmp("poison_in");
        let qfile = tmp("poison_quarantine");
        let _ = std::fs::remove_file(&qfile);
        let lines = [
            "not json",
            "{\"id\":1,\"submit_time\":0,\"tasks\":1,\"duration\":5}",
            "{\"id\":1,\"tenant\":\"t\",\"submit_time\":0,\"tasks\":0,\"duration\":5}",
            "{\"id\":1,\"tenant\":\"t\",\"submit_time\":0,\"tasks\":1,\"duration\":5,\
             \"deadline\":-1}",
            "{\"id\":9,\"tenant\":\"t\",\"submit_time\":0,\"tasks\":1,\"duration\":5}",
        ];
        std::fs::write(&input, lines.join("\n") + "\n").unwrap();
        let out = serve(&[
            "--input",
            input.to_str().unwrap(),
            "--quarantine",
            qfile.to_str().unwrap(),
        ])
        .unwrap();
        // Poison lines never kill the stream: the one good job still runs.
        assert!(out.contains("submitted=1"), "{out}");
        assert!(out.contains("rejected=4"), "{out}");
        assert!(out.contains("quarantined=4"), "{out}");
        let quarantined = std::fs::read_to_string(&qfile).unwrap();
        assert_eq!(quarantined.lines().count(), 4, "{quarantined}");
        for needle in ["\"line\":1", "tenant", "tasks", "deadline"] {
            assert!(quarantined.contains(needle), "{needle}: {quarantined}");
        }
        let _ = std::fs::remove_file(input);
        let _ = std::fs::remove_file(qfile);
    }

    #[test]
    fn overload_burst_is_rejected_typed_and_the_session_stays_up() {
        let input = tmp("burst_in");
        let metrics = tmp("burst_metrics");
        // A 2x burst against --max-queue 4: twelve long jobs land while
        // nothing can finish, so eight are rejected as queue_full.
        let mut lines = String::new();
        for i in 0..12u64 {
            lines.push_str(&format!(
                "{{\"id\":{i},\"tenant\":\"acme\",\"submit_time\":{}.0,\"tasks\":1,\
                 \"duration\":500.0}}\n",
                i
            ));
        }
        std::fs::write(&input, lines).unwrap();
        let out = serve(&[
            "--input",
            input.to_str().unwrap(),
            "--max-queue",
            "4",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        // The process stayed up, every accepted job reached a terminal
        // outcome, and the rejections are typed and counted.
        assert!(out.contains("submitted=4"), "{out}");
        assert!(out.contains("completed=4"), "{out}");
        assert!(out.contains("rejected=8"), "{out}");
        let dump = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            dump.contains("\"serve_rejected_queue_full_total\": 8"),
            "{dump}"
        );
        assert!(dump.contains("\"serve_rejected_total\": 8"), "{dump}");
        let _ = std::fs::remove_file(input);
        let _ = std::fs::remove_file(metrics);
    }

    #[test]
    fn tenant_quota_rejections_are_per_tenant() {
        let input = tmp("quota_in");
        // Tenants alternate; each may hold two jobs in flight.
        let mut lines = String::new();
        for i in 0..8u64 {
            let tenant = if i % 2 == 0 { "a" } else { "b" };
            lines.push_str(&format!(
                "{{\"id\":{i},\"tenant\":\"{tenant}\",\"submit_time\":{i}.0,\"tasks\":1,\
                 \"duration\":500.0}}\n"
            ));
        }
        std::fs::write(&input, lines).unwrap();
        let out = serve(&["--input", input.to_str().unwrap(), "--tenant-quota", "2"]).unwrap();
        assert!(out.contains("submitted=4"), "{out}");
        assert!(out.contains("rejected=4"), "{out}");
        let _ = std::fs::remove_file(input);
    }

    #[test]
    fn data_dir_crash_recovery_matches_the_straight_through_run() {
        let dir_straight = tmpdir("dd_straight");
        let dir_crashed = tmpdir("dd_crashed");
        let files: Vec<_> = ["full_in", "rest_in", "m_a", "m_b", "s_a", "s_b"]
            .iter()
            .map(|n| tmp(&format!("dd_{n}")))
            .collect();
        let [full_in, rest_in, m_a, m_b, s_a, s_b] = <[_; 6]>::try_from(files.clone()).unwrap();

        let stream = format!("{}{}", part1(), part2());
        let job_lines: Vec<&str> = stream
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        std::fs::write(&full_in, job_lines.join("\n") + "\n").unwrap();

        // Straight-through durable run.
        serve(&[
            "--data-dir",
            dir_straight.to_str().unwrap(),
            "--snapshot-every-jobs",
            "3",
            "--input",
            full_in.to_str().unwrap(),
            "--metrics-json",
            m_a.to_str().unwrap(),
            "--summary-json",
            s_a.to_str().unwrap(),
        ])
        .unwrap();

        // Simulate a crash after the fourth acknowledged job: the journal
        // holds exactly those records, no snapshot was ever written, and
        // the process never reached EOF.
        const KILL_AT: usize = 4;
        let data = DataDir::open(&dir_crashed).unwrap();
        let (mut wal, _) = Wal::open(&data.journal_path(), true).unwrap();
        for line in &job_lines[..KILL_AT] {
            let spec = parse_wire_job(line, 1).unwrap();
            wal.append(WalRecord::Job(spec)).unwrap();
        }
        drop(wal);
        std::fs::write(&rest_in, job_lines[KILL_AT..].join("\n") + "\n").unwrap();

        // Recover and finish the stream.
        serve(&[
            "--data-dir",
            dir_crashed.to_str().unwrap(),
            "--snapshot-every-jobs",
            "3",
            "--input",
            rest_in.to_str().unwrap(),
            "--metrics-json",
            m_b.to_str().unwrap(),
            "--summary-json",
            s_b.to_str().unwrap(),
        ])
        .unwrap();

        let summary_a = std::fs::read(&s_a).unwrap();
        let summary_b = std::fs::read(&s_b).unwrap();
        assert_eq!(
            summary_a, summary_b,
            "recovered run must reproduce the straight-through summary (incl. digest)"
        );
        let metrics_a = filter_recovered(&std::fs::read_to_string(&m_a).unwrap());
        let metrics_b = filter_recovered(&std::fs::read_to_string(&m_b).unwrap());
        assert_eq!(
            metrics_a, metrics_b,
            "recovered run must reproduce the straight-through metrics (modulo \
             wal_recovered_records)"
        );
        assert!(
            metrics_b.contains("wal_appended_records_total"),
            "{metrics_b}"
        );
        for p in &files {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(dir_straight);
        let _ = std::fs::remove_dir_all(dir_crashed);
    }

    #[test]
    fn restore_refuses_newer_snapshot_versions_with_a_typed_error() {
        let p1_in = tmp("ver_p1");
        let snap = tmp("ver_snap");
        std::fs::write(&p1_in, part1()).unwrap();
        serve(&[
            "--input",
            p1_in.to_str().unwrap(),
            "--snapshot-out",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&snap).unwrap();
        assert!(text.contains("\"format_version\": 2"), "{text}");
        let newer = text.replace("\"format_version\": 2", "\"format_version\": 99");
        std::fs::write(&snap, newer).unwrap();
        let err = serve(&[
            "--input",
            p1_in.to_str().unwrap(),
            "--restore",
            snap.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(
            matches!(
                err,
                CliError::SnapshotVersion {
                    found: 99,
                    supported: FULL_SNAPSHOT_VERSION,
                    ..
                }
            ),
            "{err}"
        );
        let _ = std::fs::remove_file(p1_in);
        let _ = std::fs::remove_file(snap);
    }

    #[test]
    fn restore_accepts_legacy_snapshots_without_a_format_version() {
        let p1_in = tmp("legacy_p1");
        let p2_in = tmp("legacy_p2");
        let snap = tmp("legacy_snap");
        std::fs::write(&p1_in, part1()).unwrap();
        std::fs::write(&p2_in, part2()).unwrap();
        serve(&[
            "--input",
            p1_in.to_str().unwrap(),
            "--snapshot-out",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        // Rewrite the snapshot as a legacy (version-1) file: no
        // format_version, no wire block — exactly what an older build wrote.
        let text = std::fs::read_to_string(&snap).unwrap();
        let value: Value = serde_json::from_str(&text).unwrap();
        let full: FullSnapshot = serde_json::from_value(&value).unwrap();
        let legacy = FullSnapshot {
            format_version: None,
            wire: None,
            ..full
        };
        let compact = serde_json::to_string(&legacy).unwrap();
        let stripped = compact
            .replace("\"format_version\":null,", "")
            .replace(",\"wire\":null", "");
        assert!(!stripped.contains("format_version"), "{stripped}");
        std::fs::write(&snap, stripped).unwrap();
        let out = serve(&[
            "--input",
            p2_in.to_str().unwrap(),
            "--restore",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("submitted=10"), "{out}");
        for p in [&p1_in, &p2_in, &snap] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn data_dir_and_restore_are_mutually_exclusive() {
        let dir = tmpdir("excl");
        let err = serve(&[
            "--data-dir",
            dir.to_str().unwrap(),
            "--restore",
            "/nonexistent.json",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn wire_jobs_mirror_tenant_into_the_user_feature_unless_overridden() {
        let spec = parse_wire_job(
            "{\"id\":7,\"tenant\":\"acme\",\"submit_time\":1,\"tasks\":2,\"duration\":9}",
            1,
        )
        .unwrap();
        assert_eq!(spec.attributes.get("tenant"), Some("acme"));
        assert_eq!(spec.attributes.get("user"), Some("acme"));
        let spec = parse_wire_job(
            "{\"id\":8,\"tenant\":\"acme\",\"user\":\"alice\",\"submit_time\":1,\
             \"tasks\":2,\"duration\":9}",
            1,
        )
        .unwrap();
        assert_eq!(spec.attributes.get("tenant"), Some("acme"));
        assert_eq!(spec.attributes.get("user"), Some("alice"));
    }

    #[test]
    fn serve_accepts_one_tcp_connection_and_echoes_typed_responses() {
        use std::io::Read;
        // Pick a free port, then hand it to --listen. The probe listener is
        // dropped first; nothing else in this process binds ports.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let server = {
            let addr = addr.clone();
            std::thread::spawn(move || serve(&["--listen", &addr]).unwrap())
        };
        // Retry until the server thread is accepting.
        let mut conn = None;
        for _ in 0..200 {
            match std::net::TcpStream::connect(&addr) {
                Ok(c) => {
                    conn = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut conn = conn.expect("server did not start listening");
        conn.write_all(part1().as_bytes()).unwrap();
        // Kill the client mid-line: the torn tail must be discarded, the
        // six complete jobs processed, and the session must still produce
        // its summary.
        conn.write_all(b"{\"id\":99,\"tenant\":\"torn").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut responses = String::new();
        conn.read_to_string(&mut responses).unwrap();
        let out = server.join().unwrap();
        assert!(out.contains("submitted=6"), "{out}");
        assert_eq!(
            responses
                .lines()
                .filter(|l| l.contains("\"status\":\"accepted\""))
                .count(),
            6,
            "{responses}"
        );
        assert!(responses.contains("\"id\":1"), "{responses}");
    }

    #[test]
    fn tcp_rejections_carry_typed_reasons_on_the_wire() {
        use std::io::Read;
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let server = {
            let addr = addr.clone();
            std::thread::spawn(move || serve(&["--listen", &addr, "--max-queue", "1"]).unwrap())
        };
        let mut conn = None;
        for _ in 0..200 {
            match std::net::TcpStream::connect(&addr) {
                Ok(c) => {
                    conn = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut conn = conn.expect("server did not start listening");
        let lines = "not json\n\
            {\"id\":1,\"tenant\":\"t\",\"submit_time\":0.0,\"tasks\":1,\"duration\":400.0}\n\
            {\"id\":2,\"tenant\":\"t\",\"submit_time\":1.0,\"tasks\":1,\"duration\":400.0}\n";
        conn.write_all(lines.as_bytes()).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut responses = String::new();
        conn.read_to_string(&mut responses).unwrap();
        let out = server.join().unwrap();
        assert!(out.contains("submitted=1"), "{out}");
        assert!(out.contains("rejected=2"), "{out}");
        assert!(
            responses.contains("\"reason\":\"malformed\""),
            "{responses}"
        );
        assert!(
            responses.contains("\"reason\":\"queue_full\""),
            "{responses}"
        );
        assert!(responses.contains("\"status\":\"accepted\""), "{responses}");
    }
}

/// Property tests: the wire job parser is total. Every byte string a
/// client can put on one line must come back as `Ok` or a typed
/// `Malformed` rejection — never a panic, since a poison line must not
/// take down the serve process.
#[cfg(test)]
mod parser_props {
    use super::*;
    use proptest::prelude::*;

    /// A well-formed wire line built from flat samples.
    fn valid_line(id: u64, submit: f64, tasks: u64, duration: f64, slo: bool) -> String {
        let deadline = if slo {
            format!(",\"deadline\":{}", submit + duration * 4.0 + 1.0)
        } else {
            String::new()
        };
        format!(
            "{{\"id\":{id},\"tenant\":\"t{}\",\"submit_time\":{submit},\"tasks\":{tasks},\
             \"duration\":{duration},\"team\":\"x\"{deadline}}}",
            id % 9
        )
    }

    proptest! {
        /// Arbitrary bytes (lossily decoded, as the serve loop does)
        /// never panic the parser.
        #[test]
        fn arbitrary_lines_never_panic(raw in prop::collection::vec(0u16..256, 0..200)) {
            let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
            let line = String::from_utf8_lossy(&bytes);
            let _ = parse_wire_job(&line, 1);
        }

        /// Well-formed lines parse to exactly the sampled fields.
        #[test]
        fn valid_lines_round_trip(
            id in 0u64..1_000_000,
            submit in 0.0f64..100_000.0,
            tasks in 1u64..4_096,
            duration in 0.001f64..100_000.0,
            slo in 0u8..2,
        ) {
            let line = valid_line(id, submit, tasks, duration, slo == 1);
            let spec = parse_wire_job(&line, 1).expect("well-formed line parses");
            prop_assert_eq!(spec.id.0, id);
            prop_assert_eq!(spec.tasks, tasks as u32);
            prop_assert_eq!(spec.attributes.get("team"), Some("x"));
            prop_assert_eq!(matches!(spec.kind, JobKind::Slo { .. }), slo == 1);
        }

        /// Mutations of a valid line — truncation, a flipped byte, or a
        /// duplicated span — never panic; whatever still parses satisfies
        /// the same field invariants admission relies on.
        #[test]
        fn mutated_lines_never_panic(
            id in 0u64..1_000_000,
            submit in 0.0f64..100_000.0,
            tasks in 1u64..4_096,
            duration in 0.001f64..100_000.0,
            mode in 0u8..3,
            pos_frac in 0.0f64..1.0,
            byte in 0u16..256,
        ) {
            let mut bytes = valid_line(id, submit, tasks, duration, true).into_bytes();
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            match mode {
                0 => bytes.truncate(pos),
                1 => bytes[pos] = byte as u8,
                _ => {
                    let span = bytes[pos..].to_vec();
                    bytes.extend_from_slice(&span);
                }
            }
            let line = String::from_utf8_lossy(&bytes).into_owned();
            if let Ok(spec) = parse_wire_job(&line, 7) {
                prop_assert!(spec.tasks >= 1);
                prop_assert!(spec.duration.is_finite() && spec.duration > 0.0);
                prop_assert!(spec.submit_time.is_finite() && spec.submit_time >= 0.0);
                prop_assert!(spec.attributes.get("tenant").is_some());
            }
        }
    }
}
