//! CLI subcommand implementations.

use threesigma::driver::{run, run_observed, CycleTraceWriter, Experiment, SchedulerKind};
use threesigma::CycleBudget;
use threesigma_obs::{parse_prometheus, Recorder};
use threesigma_predict::{AttributeSource, Predictor, PredictorConfig};
use threesigma_workload::analysis::{
    error_histogram, estimate_error_pct, fraction_off_by_factor, runtime_cdf,
};
use threesigma_workload::{generate, ArrivalTarget, Environment, Trace, WorkloadConfig};

use crate::args::{Args, CliError};

struct Attrs<'a>(&'a threesigma_cluster::Attributes);

impl AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

/// Usage text.
pub const USAGE: &str = "\
threesigma — distribution-based cluster scheduling (EuroSys'18 reproduction)

USAGE:
  threesigma generate [--env E] [--hours H] [--load L | --jobs-per-hour R]
                      [--slack S] [--seed N] [--pretrain N] --out FILE
  threesigma run      (--trace FILE | --env E [--hours H] [--seed N])
                      [--scheduler NAME] [--cycle SECS] [--rc] [--out FILE]
                      [--cycle-budget-ms MS] [--max-retries N] [--shards N]
                      [--solver-tier T] [--no-incremental]
  threesigma compare  (--trace FILE | --env E [--hours H] [--seed N])
                      [--cycle SECS] [--ablations]
  threesigma analyze  (--trace FILE | --env E [--jobs N] [--seed N])
  threesigma simtest  [--seed N | --iters K [--start-seed S]]
                      [--cycle-budget-ms MS] [--max-retries N] [--shards N]
                      [--solver-tier T] [--no-incremental]
                      [--crash [--crash-jobs N] [--kill-points K]]
  threesigma metrics  (--trace FILE | --env E [--hours H] [--seed N])
                      [--scheduler NAME] [--cycle SECS] [--rc]
                      [--json FILE] [--trace-out FILE]
  threesigma serve    [--input FILE|- | --listen ADDR]
                      [--racks N] [--nodes-per-rack N] [--cycle SECS]
                      [--seed N] [--retention SECS] [--max-retries N]
                      [--predictor-cap N] [--predictor-ttl N] [--cache-cap N]
                      [--max-timings N] [--snapshot-out FILE] [--restore FILE]
                      [--data-dir DIR] [--snapshot-every-jobs N]
                      [--snapshot-every-secs S] [--no-fsync]
                      [--max-queue N] [--tenant-quota N]
                      [--quarantine FILE] [--quarantine-sample N]
                      [--metrics-json FILE] [--summary-json FILE]
  threesigma help

ENVIRONMENTS: google (default), hedgefund, mustang
SCHEDULERS:   3sigma (default), 3sigma-nodist, 3sigma-nooe, 3sigma-noadapt,
              point-perfect, point-real, point-padded, backfill, prio

SIMTEST: deterministic invariant-checked simulation campaigns.
  --seed N     replay one seed and print the full byte-stable report
  --iters K    smoke-run K fresh seeds (default start 1, or --start-seed S)
  (no flags)   run the checked-in regression corpus
  Any failure exits non-zero and echoes `FAILING SEED: N` for replay.

ROBUSTNESS: degradation governor and kill/retry knobs (run + simtest).
  --cycle-budget-ms MS  per-cycle wall-clock budget for the 3σSched
                        degradation governor (nondeterministic; simtest
                        scenarios default to deterministic work units)
  --max-retries N       retry budget for fault-killed jobs before they are
                        cancelled and counted
  --shards N            worker shards for 3σSched's decide stage; also widens
                        the representable cluster to N x 128 racks. Results
                        are byte-identical at every shard count.
  --solver-tier T       pin the MILP backend: 0 greedy rounding, 1 LP+repair,
                        2 branch-and-bound. Default: the degradation ladder
                        picks the tier (level 0 → tier 2, …, level 2 → tier 0)
  --no-incremental      disable the tier-2 cycle-over-cycle solution cache.
                        Reuse is restricted to bit-identical models, so
                        results are byte-identical with or without it.

METRICS: run one instrumented simulation and export its counters.
  Prints a Prometheus-style text exposition to stdout.
  --json FILE       also write the byte-stable JSON metrics dump
  --trace-out FILE  also write the per-cycle trace (one JSON line per cycle)

SERVE: long-running bounded-memory scheduling over a JSONL job stream.
  One job per line: {\"id\":1, \"tenant\":\"acme\", \"submit_time\":0.0,
  \"tasks\":4, \"duration\":120.0, \"deadline\":600.0, \"job_name\":\"etl\"}.
  `deadline` is optional (absent = best-effort); extra string fields become
  predictor attributes; `tenant` doubles as the `user` feature key unless a
  `user` field is given. Lines must arrive in submit_time order.
  --input FILE|-      read the stream from FILE or stdin (default: stdin)
  --listen ADDR       accept ONE TCP connection and stream from it instead
  --retention SECS    retire terminal job records after SECS (default 3600)
  --predictor-cap N   max tracked (feature,value) states, 0 = unbounded
  --predictor-ttl N   evict states untouched for N observations, 0 = never
  --cache-cap N       estimate-cache capacity, 0 = unbounded (default 4096)
  --max-timings N     per-cycle timing records kept, 0 = unbounded
  --snapshot-out FILE write a quiescent engine+scheduler snapshot at EOF
  --restore FILE      resume from a snapshot; the resumed run reproduces the
                      uninterrupted run's digest and metrics byte-for-byte

CRASH SAFETY (serve --data-dir): journaled, crash-only operation.
  Accepted jobs are appended to a CRC32-framed write-ahead journal (fsynced
  before they are acknowledged); quiescent idle gaps trigger automatic
  snapshots that truncate the journal. On startup the newest valid snapshot
  is loaded (torn tails tolerated) and the journal suffix is replayed, so a
  killed process recovers digest-identically to a never-crashed run.
  --data-dir DIR            journal + snapshots + quarantine live here
                            (mutually exclusive with --restore)
  --snapshot-every-jobs N   snapshot after N journaled records (default 256,
                            0 = only at EOF); quiescent moments only
  --snapshot-every-secs S   also snapshot after S simulated seconds (0 = off)
  --no-fsync                skip fsync on journal appends (faster, weaker)

ADMISSION CONTROL (serve): typed rejections, never a process exit.
  Rejected lines get {\"status\":\"rejected\",\"line\":N,\"reason\":R,...} on the
  wire (reasons: malformed, queue_full, tenant_quota, duplicate,
  out_of_order) and per-reason serve_rejected_* counters. Malformed lines
  are sampled into a quarantine file. Partial tails and abrupt disconnects
  on --listen are absorbed with typed warnings.
  --max-queue N             bound on non-terminal jobs (0 = unbounded)
  --tenant-quota N          per-tenant in-flight bound (0 = unbounded)
  --quarantine FILE         poison-line sink (default: DIR/quarantine.jsonl
                            under --data-dir, else disabled)
  --quarantine-sample N     max quarantined lines written (default 100)
  --metrics-json FILE write the byte-stable metrics dump at EOF
  --summary-json FILE write the session summary (incl. outcome digest)
";

fn parse_env(args: &Args) -> Result<Environment, CliError> {
    match args.get_or("env", "google") {
        "google" => Ok(Environment::Google),
        "hedgefund" => Ok(Environment::HedgeFund),
        "mustang" => Ok(Environment::Mustang),
        other => Err(CliError::BadValue {
            option: "env".into(),
            value: other.into(),
            expected: "google | hedgefund | mustang",
        }),
    }
}

fn parse_scheduler(name: &str) -> Result<SchedulerKind, CliError> {
    match name {
        "3sigma" => Ok(SchedulerKind::ThreeSigma),
        "3sigma-nodist" => Ok(SchedulerKind::ThreeSigmaNoDist),
        "3sigma-nooe" => Ok(SchedulerKind::ThreeSigmaNoOE),
        "3sigma-noadapt" => Ok(SchedulerKind::ThreeSigmaNoAdapt),
        "point-perfect" => Ok(SchedulerKind::PointPerfEst),
        "point-real" => Ok(SchedulerKind::PointRealEst),
        "point-padded" => Ok(SchedulerKind::PointPaddedEst),
        "backfill" => Ok(SchedulerKind::Backfill),
        "prio" => Ok(SchedulerKind::Prio),
        other => Err(CliError::BadValue {
            option: "scheduler".into(),
            value: other.into(),
            expected: "see `threesigma help`",
        }),
    }
}

fn workload_config(args: &Args) -> Result<WorkloadConfig, CliError> {
    let env = parse_env(args)?;
    let hours: f64 = args.parse_or("hours", 1.0)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let mut config = WorkloadConfig::e2e(env, seed).with_duration(hours * 3600.0);
    if let Some(rate) = args.get("jobs-per-hour") {
        let rate: f64 = rate.parse().map_err(|_| CliError::BadValue {
            option: "jobs-per-hour".into(),
            value: rate.into(),
            expected: "a positive number",
        })?;
        config.arrival = ArrivalTarget::JobsPerHour(rate);
    } else {
        config = config.with_load(args.parse_or("load", 1.4)?);
    }
    if let Some(slack) = args.get("slack") {
        let slack: f64 = slack.parse().map_err(|_| CliError::BadValue {
            option: "slack".into(),
            value: slack.into(),
            expected: "a fraction, e.g. 0.6",
        })?;
        config = config.with_slack(slack);
    }
    config.pretrain_jobs = args.parse_or("pretrain", config.pretrain_jobs)?;
    Ok(config)
}

fn load_or_generate(args: &Args) -> Result<Trace, CliError> {
    match args.get("trace") {
        Some(path) => Trace::load(path).map_err(|e| CliError::Io(e.to_string())),
        None => Ok(generate(&workload_config(args)?)),
    }
}

fn experiment(args: &Args) -> Result<Experiment, CliError> {
    let mut exp = if args.switch("rc") {
        Experiment::paper_rc256()
    } else {
        Experiment::paper_sc256()
    };
    exp = exp.with_cycle(args.parse_or("cycle", 10.0)?);
    if let Some(raw) = args.get("cycle-budget-ms") {
        let ms: f64 = raw
            .parse()
            .ok()
            .filter(|ms: &f64| ms.is_finite() && *ms > 0.0)
            .ok_or_else(|| CliError::BadValue {
                option: "cycle-budget-ms".into(),
                value: raw.into(),
                expected: "a positive number of milliseconds",
            })?;
        exp.sched.cycle_budget = CycleBudget::WallClockMs(ms);
    }
    if args.get("max-retries").is_some() {
        exp.engine.retry.max_retries = args.parse_or("max-retries", 0u32)?;
    }
    if let Some(raw) = args.get("shards") {
        exp.sched.shards = raw
            .parse()
            .ok()
            .filter(|n: &usize| *n >= 1)
            .ok_or_else(|| CliError::BadValue {
                option: "shards".into(),
                value: raw.into(),
                expected: "a worker count >= 1",
            })?;
    }
    if let Some(raw) = args.get("solver-tier") {
        exp.sched.solver_tier = Some(parse_solver_tier(raw)?);
    }
    if args.switch("no-incremental") {
        exp.sched.incremental_solver = false;
    }
    Ok(exp)
}

fn parse_solver_tier(raw: &str) -> Result<u8, CliError> {
    raw.parse()
        .ok()
        .filter(|t: &u8| *t <= 2)
        .ok_or_else(|| CliError::BadValue {
            option: "solver-tier".into(),
            value: raw.into(),
            expected: "a tier in 0..=2",
        })
}

fn metrics_line(kind: SchedulerKind, m: &threesigma_cluster::Metrics) -> String {
    format!(
        "{:<16} miss={:>5.1}%  slo_gp={:>8.1}M-h  be_gp={:>8.1}M-h  be_lat={:>6.0}s  preempt={}",
        kind.name(),
        m.slo_miss_pct(),
        m.slo_goodput_hours(),
        m.be_goodput_hours(),
        m.mean_be_latency().unwrap_or(f64::NAN),
        m.preemptions,
    )
}

/// `generate` — emit a trace JSON.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let config = workload_config(args)?;
    let out = args.require("out")?;
    let trace = generate(&config);
    trace.save(out).map_err(|e| CliError::Io(e.to_string()))?;
    Ok(format!(
        "wrote {} jobs (+{} pretraining) to {out} (offered load {:.2})",
        trace.jobs.len(),
        trace.pretrain.len(),
        trace.offered_load(config.cluster_nodes, config.duration),
    ))
}

/// `run` — one scheduler over one trace.
pub fn cmd_run(args: &Args) -> Result<String, CliError> {
    let trace = load_or_generate(args)?;
    let kind = parse_scheduler(args.get_or("scheduler", "3sigma"))?;
    let exp = experiment(args)?;
    let result = run(kind, &trace, &exp).map_err(|e| CliError::Io(e.to_string()))?;
    if let Some(out) = args.get("out") {
        let json = serde_json::to_string_pretty(&result.metrics)
            .map_err(|e| CliError::Io(e.to_string()))?;
        std::fs::write(out, json).map_err(|e| CliError::Io(e.to_string()))?;
    }
    Ok(metrics_line(kind, &result.metrics))
}

/// `compare` — the headline systems (plus ablations with `--ablations`).
pub fn cmd_compare(args: &Args) -> Result<String, CliError> {
    let trace = load_or_generate(args)?;
    let exp = experiment(args)?;
    let mut kinds = SchedulerKind::headline().to_vec();
    if args.switch("ablations") {
        kinds.extend([
            SchedulerKind::ThreeSigmaNoDist,
            SchedulerKind::ThreeSigmaNoOE,
            SchedulerKind::ThreeSigmaNoAdapt,
            SchedulerKind::PointPaddedEst,
            SchedulerKind::Backfill,
        ]);
    }
    let mut out = String::new();
    for kind in kinds {
        let result = run(kind, &trace, &exp).map_err(|e| CliError::Io(e.to_string()))?;
        out.push_str(&metrics_line(kind, &result.metrics));
        out.push('\n');
    }
    Ok(out)
}

/// `analyze` — Fig. 2-style trace statistics.
pub fn cmd_analyze(args: &Args) -> Result<String, CliError> {
    let trace = match args.get("trace") {
        Some(path) => Trace::load(path).map_err(|e| CliError::Io(e.to_string()))?,
        None => {
            let env = parse_env(args)?;
            let jobs: usize = args.parse_or("jobs", 5000)?;
            let seed: u64 = args.parse_or("seed", 42)?;
            generate(&WorkloadConfig {
                duration: 60.0,
                pretrain_jobs: jobs,
                ..WorkloadConfig::e2e(env, seed)
            })
        }
    };
    let jobs: Vec<_> = trace
        .pretrain
        .iter()
        .chain(trace.jobs.iter())
        .cloned()
        .collect();
    let mut out = format!("{} jobs\n", jobs.len());
    let cdf = runtime_cdf(&jobs);
    let at = |q: f64| cdf[(q * (cdf.len() - 1) as f64) as usize].0;
    out.push_str(&format!(
        "runtime percentiles: p10={:.0}s p50={:.0}s p90={:.0}s p99={:.0}s\n",
        at(0.1),
        at(0.5),
        at(0.9),
        at(0.99)
    ));
    // Prequential estimate-error profile.
    let split = jobs.len() / 2;
    let mut predictor = Predictor::new(PredictorConfig::default());
    for j in &jobs[..split] {
        predictor.observe(&Attrs(&j.attributes), j.duration);
    }
    let mut pairs = Vec::new();
    let mut errors = Vec::new();
    for j in &jobs[split..] {
        if let Some(p) = predictor.predict_point(&Attrs(&j.attributes)) {
            pairs.push((p, j.duration));
            errors.push(estimate_error_pct(p, j.duration));
        }
        predictor.observe(&Attrs(&j.attributes), j.duration);
    }
    let hist = error_histogram(&errors);
    out.push_str(&format!(
        "estimates off by ≥2x: {:.1}%\nerror histogram:\n",
        100.0 * fraction_off_by_factor(&pairs, 2.0)
    ));
    for (c, pct) in &hist.buckets {
        out.push_str(&format!("  {c:>5}%  {pct:>5.1}%\n"));
    }
    out.push_str(&format!("   tail  {:>5.1}%\n", hist.tail_pct));
    Ok(out)
}

/// `simtest` — deterministic invariant-checked simulation campaigns.
///
/// Three modes: `--seed N` replays one seed and prints the full report;
/// `--iters K [--start-seed S]` smoke-runs K fresh seeds; with no flags the
/// checked-in corpus is run. Failures return [`CliError::Failed`] echoing
/// `FAILING SEED: N` so any failure replays from one integer.
///
/// `--crash` instead runs the durable-serve crash-injection campaign:
/// seeded kill points (with torn journal tails) must all recover to a
/// state digest-identical to the straight-through run. `--crash-jobs`
/// sizes the stream, `--kill-points` the number of injected crashes, and
/// `--seed` reseeds both the stream and the kill offsets.
pub fn cmd_simtest(args: &Args) -> Result<String, CliError> {
    if args.switch("crash") {
        let defaults = threesigma_simtest::CrashConfig::default();
        let cfg = threesigma_simtest::CrashConfig {
            total_jobs: args.parse_or("crash-jobs", defaults.total_jobs)?,
            kill_points: args.parse_or("kill-points", defaults.kill_points)?,
            seed: args.parse_or("seed", defaults.seed)?,
        };
        return threesigma_simtest::run_crash_campaign(&cfg).map_err(CliError::Failed);
    }
    let mut overrides = threesigma_simtest::SeedOverrides::default();
    if args.get("max-retries").is_some() {
        overrides.max_retries = Some(args.parse_or("max-retries", 0u32)?);
    }
    if let Some(raw) = args.get("cycle-budget-ms") {
        let ms: f64 = raw
            .parse()
            .ok()
            .filter(|ms: &f64| ms.is_finite() && *ms > 0.0)
            .ok_or_else(|| CliError::BadValue {
                option: "cycle-budget-ms".into(),
                value: raw.into(),
                expected: "a positive number of milliseconds",
            })?;
        overrides.cycle_budget_ms = Some(ms);
    }
    if let Some(raw) = args.get("shards") {
        let shards: usize = raw
            .parse()
            .ok()
            .filter(|n: &usize| *n >= 1)
            .ok_or_else(|| CliError::BadValue {
                option: "shards".into(),
                value: raw.into(),
                expected: "a worker count >= 1",
            })?;
        overrides.shards = Some(shards);
    }
    if let Some(raw) = args.get("solver-tier") {
        overrides.solver_tier = Some(parse_solver_tier(raw)?);
    }
    overrides.no_incremental = args.switch("no-incremental");
    if let Some(raw) = args.get("seed") {
        let seed: u64 = raw.parse().map_err(|_| CliError::BadValue {
            option: "seed".into(),
            value: raw.into(),
            expected: "a u64 seed",
        })?;
        let report = threesigma_simtest::run_seed_with(seed, overrides);
        let rendered = report.render();
        return if report.passed() {
            Ok(rendered)
        } else {
            Err(CliError::Failed(format!(
                "FAILING SEED: {seed}\n{rendered}"
            )))
        };
    }
    let seeds: Vec<u64> = if args.get("iters").is_some() {
        let iters: u64 = args.parse_or("iters", 10)?;
        let start: u64 = args.parse_or("start-seed", 1)?;
        (start..start.saturating_add(iters)).collect()
    } else {
        threesigma_simtest::corpus_seeds()
    };
    let mut out = String::new();
    for seed in seeds {
        let report = threesigma_simtest::run_seed_with(seed, overrides);
        if !report.passed() {
            return Err(CliError::Failed(format!(
                "FAILING SEED: {seed}\nreplay with: threesigma simtest --seed {seed}\n{}",
                report.render()
            )));
        }
        out.push_str(&format!(
            "seed {seed:>4} {:<16} jobs={:<3} faults={} PASS\n",
            report.profile, report.jobs, report.faults
        ));
    }
    out.push_str("all seeds passed\n");
    Ok(out)
}

/// `metrics` — one instrumented run, exported three ways.
///
/// Runs the requested scheduler with an enabled [`Recorder`] and a
/// [`CycleTraceWriter`], then prints the Prometheus-style text exposition.
/// `--json FILE` additionally writes the byte-stable JSON dump (wall-clock
/// timers excluded, so the same trace + seed reproduces the file
/// byte-for-byte); `--trace-out FILE` writes the per-cycle JSON-lines trace.
pub fn cmd_metrics(args: &Args) -> Result<String, CliError> {
    let trace = load_or_generate(args)?;
    let kind = parse_scheduler(args.get_or("scheduler", "3sigma"))?;
    let exp = experiment(args)?;
    let recorder = Recorder::enabled();
    let mut writer = CycleTraceWriter::new().with_recorder(&recorder);
    let result = run_observed(kind, &trace, &exp, &recorder, &mut writer)
        .map_err(|e| CliError::Io(e.to_string()))?;
    let snapshot = recorder.snapshot();
    let text = snapshot.to_prometheus();
    // Self-check: the exposition we emit must round-trip through our own
    // parser (the same check CI applies to the simtest artifact).
    parse_prometheus(&text)
        .map_err(|e| CliError::Failed(format!("internal error: exposition does not parse: {e}")))?;
    if let Some(path) = args.get("json") {
        std::fs::write(path, snapshot.to_stable_json()).map_err(|e| CliError::Io(e.to_string()))?;
    }
    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, writer.to_jsonl()).map_err(|e| CliError::Io(e.to_string()))?;
    }
    let mut out = text;
    out.push_str(&format!(
        "# cycles traced: {}\n# {}\n",
        writer.lines().len(),
        metrics_line(kind, &result.metrics).trim_end(),
    ));
    Ok(out)
}

/// Dispatches a parsed command line; returns the text to print.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "analyze" => cmd_analyze(args),
        "simtest" => cmd_simtest(args),
        "metrics" => cmd_metrics(args),
        "serve" => crate::serve::cmd_serve(args),
        "help" => Ok(USAGE.to_owned()),
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("threesigma_cli_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn help_prints_usage() {
        let args = Args::parse(["help"]).unwrap();
        assert!(dispatch(&args).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let args = Args::parse(["frobnicate"]).unwrap();
        assert!(matches!(
            dispatch(&args).unwrap_err(),
            CliError::UnknownCommand(_)
        ));
    }

    #[test]
    fn generate_then_run_roundtrip() {
        let path = tmp("roundtrip");
        let gen = Args::parse([
            "generate",
            "--hours",
            "0.1",
            "--pretrain",
            "50",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let msg = dispatch(&gen).unwrap();
        assert!(msg.contains("wrote"), "{msg}");

        let run = Args::parse([
            "run",
            "--trace",
            path.to_str().unwrap(),
            "--scheduler",
            "prio",
            "--cycle",
            "30",
        ])
        .unwrap();
        let out = dispatch(&run).unwrap();
        assert!(out.contains("Prio"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_rejects_unknown_scheduler() {
        let args = Args::parse(["run", "--env", "google", "--scheduler", "magic"]).unwrap();
        assert!(matches!(
            dispatch(&args).unwrap_err(),
            CliError::BadValue { .. }
        ));
    }

    #[test]
    fn analyze_reports_error_profile() {
        let args = Args::parse(["analyze", "--env", "google", "--jobs", "800"]).unwrap();
        let out = dispatch(&args).unwrap();
        assert!(out.contains("off by ≥2x"), "{out}");
        assert!(out.contains("percentiles"), "{out}");
    }

    #[test]
    fn simtest_rejects_bad_seed() {
        let args = Args::parse(["simtest", "--seed", "banana"]).unwrap();
        assert!(matches!(
            dispatch(&args).unwrap_err(),
            CliError::BadValue { .. }
        ));
    }

    #[test]
    fn shards_must_be_a_positive_count() {
        for argv in [
            ["simtest", "--seed", "1", "--shards", "0"],
            ["run", "--env", "google", "--shards", "woof"],
        ] {
            let args = Args::parse(argv).unwrap();
            let err = dispatch(&args).unwrap_err();
            assert!(matches!(err, CliError::BadValue { .. }), "{argv:?}: {err}");
        }
    }

    #[test]
    fn solver_tier_must_be_zero_one_or_two() {
        for argv in [
            ["simtest", "--seed", "1", "--solver-tier", "3"],
            ["run", "--env", "google", "--solver-tier", "greedy"],
        ] {
            let args = Args::parse(argv).unwrap();
            let err = dispatch(&args).unwrap_err();
            assert!(matches!(err, CliError::BadValue { .. }), "{argv:?}: {err}");
        }
    }

    #[test]
    fn bad_env_is_rejected() {
        let args = Args::parse(["analyze", "--env", "mars"]).unwrap();
        assert!(matches!(
            dispatch(&args).unwrap_err(),
            CliError::BadValue { .. }
        ));
    }

    #[test]
    fn metrics_emits_parseable_prometheus_text() {
        let args = Args::parse([
            "metrics", "--env", "google", "--hours", "0.05", "--seed", "7", "--cycle", "30",
        ])
        .unwrap();
        let out = dispatch(&args).unwrap();
        let parsed = parse_prometheus(&out).unwrap();
        assert!(
            parsed.iter().any(|s| s.name == "engine_cycles_total"),
            "{out}"
        );
        assert!(
            parsed
                .iter()
                .any(|s| s.name == "sched_options_enumerated_total"),
            "{out}"
        );
        assert!(out.contains("# cycles traced:"), "{out}");
    }

    #[test]
    fn metrics_json_dump_is_byte_stable_for_a_fixed_seed() {
        let json_a = tmp("metrics_a");
        let json_b = tmp("metrics_b");
        let trace_out = tmp("metrics_trace");
        let invoke = |json: &std::path::Path, trace: Option<&std::path::Path>| {
            let json = json.to_str().unwrap().to_owned();
            let mut argv = vec![
                "metrics".to_owned(),
                "--env".into(),
                "google".into(),
                "--hours".into(),
                "0.05".into(),
                "--seed".into(),
                "42".into(),
                "--cycle".into(),
                "30".into(),
                "--json".into(),
                json,
            ];
            if let Some(t) = trace {
                argv.push("--trace-out".into());
                argv.push(t.to_str().unwrap().to_owned());
            }
            dispatch(&Args::parse(argv).unwrap()).unwrap()
        };
        invoke(&json_a, Some(&trace_out));
        invoke(&json_b, None);
        let a = std::fs::read(&json_a).unwrap();
        let b = std::fs::read(&json_b).unwrap();
        assert_eq!(a, b, "stable JSON dump must be byte-identical per seed");
        let trace = std::fs::read_to_string(&trace_out).unwrap();
        let first = trace.lines().next().expect("at least one cycle");
        assert!(first.starts_with("{\"cycle\":"), "{first}");
        for p in [&json_a, &json_b, &trace_out] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn missing_trace_file_is_io_error() {
        let args = Args::parse(["run", "--trace", "/nonexistent/t.json"]).unwrap();
        assert!(matches!(dispatch(&args).unwrap_err(), CliError::Io(_)));
    }
}
