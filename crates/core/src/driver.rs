//! End-to-end experiment driver: Table 1's systems over a generated trace.
//!
//! Wires a workload [`Trace`] (pre-training history + jobs), a scheduler
//! configuration, and the discrete-event [`Engine`] together, exactly like
//! the paper's harness: pre-train 3σPredict on history, replay the trace,
//! collect the §5 success metrics.

use std::sync::Arc;

use threesigma_cluster::{
    ClusterSpec, CycleObserver, Engine, EngineConfig, EngineSnapshot, Metrics, RcFidelity, SimError,
};
use threesigma_obs::Recorder;
use threesigma_predict::PredictorConfig;
use threesigma_workload::Trace;

use crate::sched::prio::PrioScheduler;
use crate::sched::threesigma::{
    CycleTiming, EstimateSource, OverestimateMode, SchedConfig, SchedStats, ThreeSigmaScheduler,
};

/// The scheduling systems compared in the paper (Table 1 + §6.2 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Full system: predicted distributions + adaptive OE handling.
    ThreeSigma,
    /// Ablation: point estimates instead of distributions (keeps OE).
    ThreeSigmaNoDist,
    /// Ablation: distributions without over-estimate handling.
    ThreeSigmaNoOE,
    /// Ablation: over-estimate handling always on (non-adaptive).
    ThreeSigmaNoAdapt,
    /// Hypothetical: perfect point estimates (oracle).
    PointPerfEst,
    /// State of the art: point estimates from the real predictor.
    PointRealEst,
    /// Extension baseline: point estimates padded by one standard
    /// deviation (the "stochastic scheduler" heuristic of §2.2).
    PointPaddedEst,
    /// Extension baseline: EASY backfilling with predicted point estimates
    /// (the classic HPC scheduler family of the paper's related work).
    Backfill,
    /// Runtime-unaware strict priority (Borg-like).
    Prio,
}

impl SchedulerKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::ThreeSigma => "3Sigma",
            SchedulerKind::ThreeSigmaNoDist => "3SigmaNoDist",
            SchedulerKind::ThreeSigmaNoOE => "3SigmaNoOE",
            SchedulerKind::ThreeSigmaNoAdapt => "3SigmaNoAdapt",
            SchedulerKind::PointPerfEst => "PointPerfEst",
            SchedulerKind::PointRealEst => "PointRealEst",
            SchedulerKind::PointPaddedEst => "PointPaddedEst",
            SchedulerKind::Backfill => "Backfill",
            SchedulerKind::Prio => "Prio",
        }
    }

    /// The four headline systems of Figs. 1/6/7/10/11.
    pub fn headline() -> [SchedulerKind; 4] {
        [
            SchedulerKind::ThreeSigma,
            SchedulerKind::PointPerfEst,
            SchedulerKind::PointRealEst,
            SchedulerKind::Prio,
        ]
    }

    /// Estimate source + OE mode for the MILP scheduler; `None` for Prio.
    fn milp_config(&self) -> Option<(EstimateSource, OverestimateMode)> {
        match self {
            SchedulerKind::ThreeSigma => {
                Some((EstimateSource::Predicted, OverestimateMode::Adaptive))
            }
            SchedulerKind::ThreeSigmaNoDist => {
                Some((EstimateSource::PredictedPoint, OverestimateMode::Adaptive))
            }
            SchedulerKind::ThreeSigmaNoOE => {
                Some((EstimateSource::Predicted, OverestimateMode::Off))
            }
            SchedulerKind::ThreeSigmaNoAdapt => {
                Some((EstimateSource::Predicted, OverestimateMode::Always))
            }
            SchedulerKind::PointPerfEst => {
                Some((EstimateSource::OraclePoint, OverestimateMode::Off))
            }
            SchedulerKind::PointRealEst => {
                Some((EstimateSource::PredictedPoint, OverestimateMode::Off))
            }
            SchedulerKind::PointPaddedEst => Some((
                EstimateSource::PredictedPadded { sigmas: 1.0 },
                OverestimateMode::Off,
            )),
            SchedulerKind::Backfill | SchedulerKind::Prio => None,
        }
    }
}

/// A full experiment configuration.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Cluster topology (and RC-fidelity noise, if any).
    pub cluster: ClusterSpec,
    /// Engine settings (cycle interval, drain, seed).
    pub engine: EngineConfig,
    /// 3σSched settings.
    pub sched: SchedConfig,
    /// 3σPredict settings.
    pub predictor: PredictorConfig,
}

impl Experiment {
    /// The simulated 256-node cluster of the paper (SC256): 8 racks × 32.
    pub fn paper_sc256() -> Self {
        let engine = EngineConfig {
            cycle_interval: 10.0,
            drain: None,
            seed: 0x5C256,
            ..EngineConfig::default()
        };
        let sched = SchedConfig {
            cycle_hint: engine.cycle_interval,
            ..SchedConfig::default()
        };
        Self {
            cluster: ClusterSpec::uniform(8, 32),
            engine,
            sched,
            predictor: PredictorConfig::default(),
        }
    }

    /// The "real" 256-node cluster (RC256): SC256 plus fidelity noise.
    pub fn paper_rc256() -> Self {
        let mut e = Self::paper_sc256();
        e.cluster = e.cluster.with_rc_fidelity(RcFidelity::default());
        e.engine.seed = 0x2C256;
        e
    }

    /// Overrides the scheduling-cycle interval (keeps exp-inc hint in sync).
    pub fn with_cycle(mut self, seconds: f64) -> Self {
        self.engine.cycle_interval = seconds;
        self.sched.cycle_hint = seconds;
        self
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The §5 success metrics.
    pub metrics: Metrics,
    /// Per-cycle scheduler timings (empty for Prio).
    pub timings: Vec<CycleTiming>,
    /// Cumulative deterministic scheduler counters (None for the
    /// non-MILP baselines, which keep no such bookkeeping).
    pub stats: Option<SchedStats>,
}

/// A [`CycleObserver`] that renders one JSON line per scheduling cycle —
/// the per-run trace file format consumed by the simtest reports and the
/// Fig. 12 tooling. Lines are hand-formatted from [`CycleStats`]'s
/// numeric fields, so the output is byte-stable for a fixed seed.
///
/// [`CycleStats`]: threesigma_cluster::CycleStats
#[derive(Debug, Clone, Default)]
pub struct CycleTraceWriter {
    lines: Vec<String>,
    /// Resolved `sched_degradation_level` gauge when a recorder is
    /// attached; the scheduler flushes its metrics inside `schedule()`,
    /// before the engine calls `on_cycle`, so the gauge is current.
    level: Option<threesigma_obs::Gauge>,
    /// Resolved `sched_shards` gauge; same lifecycle as `level`. Reads 0
    /// for schedulers that never publish it (non-MILP baselines).
    shards: Option<threesigma_obs::Gauge>,
    /// Resolved `sched_solver_tier` gauge; same lifecycle as `level`.
    tier: Option<threesigma_obs::Gauge>,
}

impl CycleTraceWriter {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Includes the scheduler's degradation-governor level in each trace
    /// line, read from `recorder`'s `sched_degradation_level` gauge
    /// (registration is idempotent, so this shares storage with the
    /// scheduler's own handle). Without a recorder — or for baselines that
    /// never publish the gauge — the field reads 0.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &threesigma_obs::Recorder) -> Self {
        if recorder.is_enabled() {
            self.level = Some(recorder.gauge(
                "sched_degradation_level",
                "Current degradation-ladder level (0 = full MILP, 2 = minimal greedy)",
            ));
            self.shards = Some(recorder.gauge(
                "sched_shards",
                "Configured worker shards for the decide stage",
            ));
            self.tier = Some(recorder.gauge(
                "sched_solver_tier",
                "Solver tier of the last cycle (0 greedy, 1 LP+repair, 2 B&B)",
            ));
        }
        self
    }

    /// The collected JSON lines, one per cycle.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The whole trace as JSON-lines text (trailing newline included when
    /// non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl CycleObserver for CycleTraceWriter {
    fn on_cycle(&mut self, snapshot: &EngineSnapshot<'_>) {
        let s = snapshot.cycle_stats();
        let level = self.level.as_ref().map_or(0.0, |g| g.get()) as u8;
        let shards = self.shards.as_ref().map_or(0.0, |g| g.get()) as u64;
        let tier = self.tier.as_ref().map_or(0.0, |g| g.get()) as u8;
        self.lines.push(format!(
            "{{\"cycle\":{},\"now\":{},\"queue_depth\":{},\"running\":{},\"free_nodes\":{},\
             \"offline_nodes\":{},\"fault_debt_nodes\":{},\"capacity_nodes\":{},\
             \"utilization\":{},\"placements\":{},\"preemptions\":{},\"cancellations\":{},\
             \"shards\":{},\"degradation_level\":{},\"solver_tier\":{}}}",
            s.cycle,
            s.now,
            s.queue_depth,
            s.running,
            s.free_nodes,
            s.offline_nodes,
            s.fault_debt_nodes,
            s.capacity_nodes,
            s.utilization,
            s.placements,
            s.preemptions,
            s.cancellations,
            shards,
            level,
            tier,
        ));
    }
}

struct NoopObserver;

impl CycleObserver for NoopObserver {
    fn on_cycle(&mut self, _snapshot: &EngineSnapshot<'_>) {}
}

/// Runs one system over a trace.
pub fn run(kind: SchedulerKind, trace: &Trace, exp: &Experiment) -> Result<RunResult, SimError> {
    run_observed(kind, trace, exp, &Recorder::disabled(), &mut NoopObserver)
}

/// Like [`run`], but publishes per-cycle engine and scheduler metrics
/// through `recorder` and hands `observer` an [`EngineSnapshot`] after
/// every cycle — the instrumented path behind `threesigma metrics` and the
/// simtest counter-consistency invariant.
pub fn run_observed(
    kind: SchedulerKind,
    trace: &Trace,
    exp: &Experiment,
    recorder: &Recorder,
    observer: &mut dyn CycleObserver,
) -> Result<RunResult, SimError> {
    match kind.milp_config() {
        None => {
            let engine = Engine::new(exp.cluster.clone(), exp.engine.clone())
                .with_recorder(recorder.clone());
            let metrics = match kind {
                SchedulerKind::Backfill => {
                    let mut sched = crate::sched::backfill::BackfillScheduler::new(
                        crate::sched::backfill::PointSource::Predicted,
                        exp.predictor.clone(),
                    );
                    sched.pretrain(&trace.pretrain);
                    engine.run_observed(&trace.jobs, &mut sched, observer)?
                }
                _ => {
                    let mut sched = PrioScheduler::new();
                    engine.run_observed(&trace.jobs, &mut sched, observer)?
                }
            };
            Ok(RunResult {
                metrics,
                timings: Vec::new(),
                stats: None,
            })
        }
        Some((source, oe_mode)) => {
            run_with_source_observed(source, oe_mode, trace, exp, recorder, observer)
        }
    }
}

/// Runs the MILP scheduler with an explicit estimate source and OE mode —
/// the hook the §6.3 perturbation study uses to inject synthetic
/// distributions.
pub fn run_with_source(
    source: EstimateSource,
    oe_mode: OverestimateMode,
    trace: &Trace,
    exp: &Experiment,
) -> Result<RunResult, SimError> {
    run_with_source_observed(
        source,
        oe_mode,
        trace,
        exp,
        &Recorder::disabled(),
        &mut NoopObserver,
    )
}

/// [`run_with_source`] with metrics and cycle observation attached.
pub fn run_with_source_observed(
    source: EstimateSource,
    oe_mode: OverestimateMode,
    trace: &Trace,
    exp: &Experiment,
    recorder: &Recorder,
    observer: &mut dyn CycleObserver,
) -> Result<RunResult, SimError> {
    let sched_config = SchedConfig {
        oe_mode,
        cycle_hint: exp.engine.cycle_interval,
        ..exp.sched.clone()
    };
    let needs_history = matches!(
        source,
        EstimateSource::Predicted
            | EstimateSource::PredictedPoint
            | EstimateSource::PredictedPadded { .. }
    );
    let mut sched = ThreeSigmaScheduler::new(sched_config, source, exp.predictor.clone())
        .with_recorder(recorder);
    if needs_history {
        sched.pretrain(&trace.pretrain);
    }
    let engine =
        Engine::new(exp.cluster.clone(), exp.engine.clone()).with_recorder(recorder.clone());
    let metrics = engine.run_observed(&trace.jobs, &mut sched, observer)?;
    Ok(RunResult {
        metrics,
        timings: sched.timings().to_vec(),
        stats: Some(sched.stats()),
    })
}

/// Convenience: an injected-distribution source from a prebuilt map.
pub fn injected(
    map: std::collections::HashMap<
        threesigma_cluster::JobId,
        threesigma_histogram::RuntimeDistribution,
    >,
) -> EstimateSource {
    EstimateSource::Injected(Arc::new(map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_workload::{generate, Environment, WorkloadConfig};

    fn tiny_trace() -> Trace {
        let config = WorkloadConfig {
            duration: 900.0,
            pretrain_jobs: 400,
            ..WorkloadConfig::e2e(Environment::Google, 99)
        };
        generate(&config)
    }

    #[test]
    fn all_kinds_run_to_completion() {
        let trace = tiny_trace();
        let exp = Experiment::paper_sc256().with_cycle(20.0);
        for kind in [
            SchedulerKind::ThreeSigma,
            SchedulerKind::PointPerfEst,
            SchedulerKind::PointRealEst,
            SchedulerKind::Prio,
        ] {
            let r = run(kind, &trace, &exp).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(r.metrics.outcomes.len(), trace.jobs.len(), "{kind:?}");
            assert!(
                r.metrics.completion_rate() > 0.5,
                "{kind:?} completed {}",
                r.metrics.completion_rate()
            );
            if kind != SchedulerKind::Prio {
                assert!(!r.timings.is_empty());
            }
        }
    }

    #[test]
    fn results_are_deterministic() {
        let trace = tiny_trace();
        let exp = Experiment::paper_sc256().with_cycle(20.0);
        let a = run(SchedulerKind::ThreeSigma, &trace, &exp).unwrap();
        let b = run(SchedulerKind::ThreeSigma, &trace, &exp).unwrap();
        // Bit-identical replay: every per-job outcome matches exactly.
        assert_eq!(a.metrics.outcomes, b.metrics.outcomes);
        assert_eq!(a.metrics.preemptions, b.metrics.preemptions);
    }

    #[test]
    fn observed_run_publishes_metrics_and_a_byte_stable_trace() {
        let trace = tiny_trace();
        let exp = Experiment::paper_sc256().with_cycle(20.0);

        let recorder = Recorder::enabled();
        let mut writer = CycleTraceWriter::new().with_recorder(&recorder);
        let r = run_observed(
            SchedulerKind::ThreeSigma,
            &trace,
            &exp,
            &recorder,
            &mut writer,
        )
        .unwrap();
        let stats = r.stats.expect("MILP kinds report stats");
        assert!(stats.cycles > 0);
        assert!(stats.options_enumerated >= stats.options_pruned + stats.options_placed);

        // Engine and scheduler metrics land in the same registry.
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter("engine_cycles_total"),
            Some(r.metrics.cycles as u64)
        );
        assert_eq!(snap.counter("sched_cycles_total"), Some(stats.cycles));

        // One trace line per cycle, and the whole run replays byte-stable.
        assert_eq!(writer.lines().len(), r.metrics.cycles);
        assert!(writer.lines()[0].starts_with("{\"cycle\":1,"));
        // Unbudgeted run: the governor stays at level 0 (solver tier 2) on
        // every line, and the default single-shard configuration is traced
        // alongside it.
        assert!(writer
            .lines()
            .iter()
            .all(|l| l.ends_with("\"shards\":1,\"degradation_level\":0,\"solver_tier\":2}")));
        let rec2 = Recorder::enabled();
        let mut writer2 = CycleTraceWriter::new().with_recorder(&rec2);
        let r2 =
            run_observed(SchedulerKind::ThreeSigma, &trace, &exp, &rec2, &mut writer2).unwrap();
        assert_eq!(writer.to_jsonl(), writer2.to_jsonl());
        assert_eq!(
            recorder.snapshot().to_stable_json(),
            rec2.snapshot().to_stable_json()
        );
        assert_eq!(r.metrics.outcomes, r2.metrics.outcomes);

        // The unobserved path produces identical simulation results: the
        // observability layer must not perturb decisions.
        let plain = run(SchedulerKind::ThreeSigma, &trace, &exp).unwrap();
        assert_eq!(plain.metrics.outcomes, r.metrics.outcomes);

        // Baselines run through the same path without scheduler stats.
        let mut w3 = CycleTraceWriter::new();
        let prio = run_observed(
            SchedulerKind::Prio,
            &trace,
            &exp,
            &Recorder::enabled(),
            &mut w3,
        )
        .unwrap();
        assert!(prio.stats.is_none());
        assert!(!w3.lines().is_empty());
    }

    #[test]
    fn kind_names_match_the_paper() {
        assert_eq!(SchedulerKind::ThreeSigma.name(), "3Sigma");
        assert_eq!(SchedulerKind::PointPerfEst.name(), "PointPerfEst");
        assert_eq!(SchedulerKind::headline().len(), 4);
    }

    #[test]
    fn backfill_kind_runs_without_timings() {
        let trace = tiny_trace();
        let exp = Experiment::paper_sc256().with_cycle(20.0);
        let r = run(SchedulerKind::Backfill, &trace, &exp).unwrap();
        assert_eq!(r.metrics.outcomes.len(), trace.jobs.len());
        assert!(r.timings.is_empty(), "backfill has no MILP timings");
        assert!(r.metrics.completion_rate() > 0.4);
    }

    #[test]
    fn rc256_experiment_has_fidelity_noise() {
        let exp = Experiment::paper_rc256();
        assert!(exp.cluster.rc_fidelity.is_some());
        assert_eq!(exp.cluster.total_nodes(), 256);
        let sc = Experiment::paper_sc256();
        assert!(sc.cluster.rc_fidelity.is_none());
    }

    #[test]
    fn with_cycle_keeps_exp_inc_hint_in_sync() {
        let exp = Experiment::paper_sc256().with_cycle(7.5);
        assert_eq!(exp.engine.cycle_interval, 7.5);
        assert_eq!(exp.sched.cycle_hint, 7.5);
    }
}
