//! Schedulers: 3σSched and the baselines of Table 1.
//!
//! [`threesigma::ThreeSigmaScheduler`] implements the MILP-based
//! distribution scheduler; its [`threesigma::EstimateSource`] and
//! [`threesigma::OverestimateMode`] knobs also yield the `PointPerfEst`,
//! `PointRealEst`, and ablation configurations. [`prio::PrioScheduler`] is
//! the runtime-unaware strict-priority baseline (Borg-like).

pub mod backfill;
pub mod clock;
pub mod feasibility;
pub mod options;
pub mod prio;
pub mod shard;
pub mod threesigma;
