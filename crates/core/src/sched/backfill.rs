//! EASY backfilling: the classic estimate-driven HPC baseline.
//!
//! An extension baseline beyond the paper's Table 1 (the paper's related
//! work discusses backfilling via Tsafrir et al. (ref. 26), whose exponential
//! under-estimate correction 3σSched borrows). EASY backfilling keeps a
//! priority queue (SLO jobs by deadline, then best-effort FIFO), starts the
//! head job whenever it fits, and otherwise *reserves* the head's start
//! time based on running jobs' estimated completions; later jobs may jump
//! the queue only if they fit now and — by their own runtime estimate —
//! finish before the reservation (or use nodes the reservation does not
//! need).
//!
//! Like `PointRealEst`, it consumes point estimates; unlike the MILP
//! schedulers it reasons about one reservation only, so it cannot trade
//! SLO risk against best-effort latency.

use std::collections::HashMap;

use threesigma_cluster::{
    JobId, JobSpec, PartitionId, Placement, Scheduler, SchedulingDecision, SimulationView,
};
use threesigma_predict::{Predictor, PredictorConfig};

/// Where the backfill scheduler's point estimates come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointSource {
    /// True runtimes (oracle).
    Oracle,
    /// 3σPredict point estimates (JVuPredict-equivalent).
    Predicted,
}

/// Adapter exposing cluster attributes to the predictor.
struct Attrs<'a>(&'a threesigma_cluster::Attributes);

impl threesigma_predict::AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

/// EASY-backfilling scheduler.
pub struct BackfillScheduler {
    source: PointSource,
    predictor: Predictor,
    /// Cached estimate per job (at submission), seconds.
    estimates: HashMap<JobId, f64>,
    /// Fallback estimate when no history exists.
    default_estimate: f64,
}

impl BackfillScheduler {
    /// Creates a backfill scheduler.
    pub fn new(source: PointSource, predictor_config: PredictorConfig) -> Self {
        Self {
            source,
            predictor: Predictor::new(predictor_config),
            estimates: HashMap::new(),
            default_estimate: 300.0,
        }
    }

    /// Feeds completed history jobs to the predictor.
    pub fn pretrain(&mut self, history: &[JobSpec]) {
        for job in history {
            self.predictor
                .observe(&Attrs(&job.attributes), job.duration);
        }
    }

    fn estimate(&self, spec: &JobSpec) -> f64 {
        match self.source {
            PointSource::Oracle => spec.duration,
            PointSource::Predicted => self
                .predictor
                .predict_point(&Attrs(&spec.attributes))
                .unwrap_or(self.default_estimate),
        }
    }
}

/// Greedy preferred-first gang packing (same policy as `Prio`).
fn pack(spec: &JobSpec, free: &[u32]) -> Option<Vec<(PartitionId, u32)>> {
    let preferred = |p: usize| -> bool {
        spec.preferred
            .as_ref()
            .is_none_or(|pref| pref.contains(&PartitionId(p)))
    };
    let mut racks: Vec<(usize, u32)> = free
        .iter()
        .enumerate()
        .filter(|(_, f)| **f > 0)
        .map(|(p, f)| (p, *f))
        .collect();
    racks.sort_by(|a, b| preferred(b.0).cmp(&preferred(a.0)).then(b.1.cmp(&a.1)));
    let mut remaining = spec.tasks;
    let mut alloc = Vec::new();
    for (p, f) in racks {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(f);
        alloc.push((PartitionId(p), take));
        remaining -= take;
    }
    (remaining == 0).then_some(alloc)
}

impl Scheduler for BackfillScheduler {
    fn on_job_submitted(&mut self, spec: &JobSpec, _now: f64) {
        let est = self.estimate(spec);
        self.estimates.insert(spec.id, est);
    }

    fn on_job_completed(
        &mut self,
        spec: &JobSpec,
        outcome: &threesigma_cluster::JobOutcome,
        _now: f64,
    ) {
        if let Some(rt) = outcome.measured_runtime {
            self.predictor.observe(&Attrs(&spec.attributes), rt);
        }
        self.estimates.remove(&spec.id);
    }

    fn schedule(&mut self, view: &SimulationView<'_>, now: f64) -> SchedulingDecision {
        let estimates = &self.estimates;
        let default = self.default_estimate;
        backfill_plan(view, now, |spec| {
            estimates.get(&spec.id).copied().unwrap_or(default)
        })
    }
}

/// One EASY-backfill placement pass over `view`, with runtime point
/// estimates supplied by `estimate` (seconds on preferred resources).
///
/// This is the whole of [`BackfillScheduler::schedule`] as a free
/// function so other schedulers can reuse it — 3σSched's degradation
/// governor falls back to it at level 2, where a cycle must place jobs
/// without paying for option enumeration or the MILP.
pub fn backfill_plan(
    view: &SimulationView<'_>,
    now: f64,
    mut estimate: impl FnMut(&JobSpec) -> f64,
) -> SchedulingDecision {
    let mut decision = SchedulingDecision::noop();
    let mut free = view.free.to_vec();

    // Priority order: SLO by deadline, then BE by submission.
    let mut queue: Vec<&JobSpec> = view.pending.clone();
    queue.sort_by(|a, b| {
        let key = |s: &JobSpec| match s.kind.deadline() {
            Some(d) => (0, d),
            None => (1, s.submit_time),
        };
        let (ka, kb) = (key(a), key(b));
        ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
    });

    // Estimated completion times of running jobs, soonest first.
    let mut completions: Vec<(f64, Vec<(PartitionId, u32)>)> = view
        .running
        .iter()
        .map(|r| {
            let est = estimate(r.spec);
            // If the estimate is already exceeded, assume one more
            // cycle (the engine replans constantly anyway).
            let finish = (r.start_time + est).max(now + 1.0);
            (finish, r.allocation.to_vec())
        })
        .collect();
    completions.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut iter = queue.into_iter();
    // Phase 1: start queue-head jobs while they fit.
    let mut blocked: Option<(&JobSpec, f64)> = None; // (head, shadow time)
    for spec in iter.by_ref() {
        if let Some(alloc) = pack(spec, &free) {
            for (p, n) in &alloc {
                free[p.index()] -= n;
            }
            decision.placements.push(Placement {
                job: spec.id,
                allocation: alloc,
            });
            continue;
        }
        // Head blocked: compute its shadow time — when enough nodes
        // free up (by estimates) for it to start.
        let mut avail: u32 = free.iter().sum();
        let mut shadow = f64::INFINITY;
        for (finish, alloc) in &completions {
            avail += alloc.iter().map(|(_, n)| n).sum::<u32>();
            if avail >= spec.tasks {
                shadow = *finish;
                break;
            }
        }
        blocked = Some((spec, shadow));
        break;
    }

    // Phase 2: backfill — remaining jobs may start now only if their
    // estimate says they finish before the head's shadow time.
    if let Some((_head, shadow)) = blocked {
        for spec in iter {
            let est = estimate(spec);
            if now + est > shadow {
                continue;
            }
            if let Some(alloc) = pack(spec, &free) {
                for (p, n) in &alloc {
                    free[p.index()] -= n;
                }
                decision.placements.push(Placement {
                    job: spec.id,
                    allocation: alloc,
                });
            }
        }
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_cluster::{ClusterSpec, Engine, EngineConfig, JobKind};

    fn engine(racks: usize, per_rack: u32) -> Engine {
        Engine::new(
            ClusterSpec::uniform(racks, per_rack),
            EngineConfig {
                cycle_interval: 2.0,
                drain: Some(4.0 * 3600.0),
                seed: 1,
                ..EngineConfig::default()
            },
        )
    }

    fn oracle() -> BackfillScheduler {
        BackfillScheduler::new(PointSource::Oracle, PredictorConfig::default())
    }

    #[test]
    fn places_in_priority_order_when_capacity_allows() {
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::BestEffort),
            JobSpec::new(2, 0.0, 1, 100.0, JobKind::Slo { deadline: 5000.0 }),
        ];
        let m = engine(1, 2).run(&jobs, &mut oracle()).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
    }

    #[test]
    fn short_job_backfills_around_blocked_head() {
        // 2 nodes. Running: a 2-node job for 100 s (placed first). Queue:
        // head wants 2 nodes (blocked until 100), a 1-node 30 s job can
        // backfill... but free is 0. Instead: running job uses 1 node;
        // head wants 2 (blocked); a 1-node job with est 30 ≤ shadow can
        // start on the free node.
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::BestEffort),
            JobSpec::new(
                2,
                5.0,
                2,
                50.0,
                JobKind::Slo {
                    deadline: 100_000.0,
                },
            ),
            JobSpec::new(3, 6.0, 1, 30.0, JobKind::BestEffort),
        ];
        let m = engine(1, 2).run(&jobs, &mut oracle()).unwrap();
        let head_start = m.outcomes[1].start_time.unwrap();
        let bf_start = m.outcomes[2].start_time.unwrap();
        assert!(
            bf_start < head_start,
            "short job backfilled: bf={bf_start} head={head_start}"
        );
        assert!(bf_start < 60.0, "backfill started while head waited");
    }

    #[test]
    fn long_job_does_not_delay_the_reservation() {
        // Same setup, but the queued 1-node job is LONG (300 s > shadow):
        // it must NOT backfill ahead of the blocked head.
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::BestEffort),
            JobSpec::new(
                2,
                5.0,
                2,
                50.0,
                JobKind::Slo {
                    deadline: 100_000.0,
                },
            ),
            JobSpec::new(3, 6.0, 1, 300.0, JobKind::BestEffort),
        ];
        let m = engine(1, 2).run(&jobs, &mut oracle()).unwrap();
        let head_start = m.outcomes[1].start_time.unwrap();
        let long_start = m.outcomes[2].start_time.unwrap();
        assert!(
            head_start < long_start,
            "reservation respected: head={head_start} long={long_start}"
        );
        // Head starts right after the running job's estimated completion.
        assert!(head_start <= 104.0, "head start {head_start}");
    }

    #[test]
    fn predicted_source_learns_from_history() {
        let mut s = BackfillScheduler::new(PointSource::Predicted, PredictorConfig::default());
        let history: Vec<JobSpec> = (0..20)
            .map(|i| {
                JobSpec::new(100 + i, i as f64, 1, 50.0, JobKind::BestEffort)
                    .with_attributes(threesigma_cluster::Attributes::new().with("user", "bf"))
            })
            .collect();
        s.pretrain(&history);
        let probe = JobSpec::new(1, 0.0, 1, 50.0, JobKind::BestEffort)
            .with_attributes(threesigma_cluster::Attributes::new().with("user", "bf"));
        assert!((s.estimate(&probe) - 50.0).abs() < 1e-9);
        // Unknown job falls back to the default.
        let unknown = JobSpec::new(2, 0.0, 1, 50.0, JobKind::BestEffort);
        let e = s.estimate(&unknown);
        assert!(e > 0.0);
    }

    #[test]
    fn completes_a_mixed_stream() {
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| {
                let kind = if i % 2 == 0 {
                    JobKind::Slo {
                        deadline: i as f64 * 10.0 + 2000.0,
                    }
                } else {
                    JobKind::BestEffort
                };
                JobSpec::new(
                    i as u64 + 1,
                    i as f64 * 10.0,
                    1 + (i as u32 % 3),
                    60.0,
                    kind,
                )
            })
            .collect();
        let m = engine(2, 3).run(&jobs, &mut oracle()).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
        assert_eq!(m.slo_miss_pct(), 0.0);
    }

    #[test]
    fn mask_free_backfill_scales_past_the_rack_mask_ceiling() {
        // Backfill plans on raw free lists, not RackMasks, so it has no
        // 128-rack ceiling and reports no `max_partitions` limit: a
        // 200-rack cluster must be accepted and scheduled as-is.
        let mut s = oracle();
        assert_eq!(
            threesigma_cluster::Scheduler::max_partitions(&s),
            None,
            "backfill is mask-free — no scale ceiling to declare"
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 150, 60.0, JobKind::BestEffort),
            JobSpec::new(2, 0.0, 10, 60.0, JobKind::Slo { deadline: 2000.0 }),
        ];
        let m = engine(200, 1).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
        assert_eq!(m.slo_miss_pct(), 0.0);
    }
}
