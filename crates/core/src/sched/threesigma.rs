//! 3σSched: the distribution-based MILP scheduler (§4.3).
//!
//! Every cycle the scheduler
//!
//! 1. picks the most urgent pending jobs (bounded by `max_jobs_per_cycle`),
//! 2. enumerates placement options per job — (equivalence set, start slot)
//!    over a plan-ahead window — valuing each by expected utility (Eq. 1)
//!    under the job's runtime distribution, with over-estimate handling
//!    adjusting the utility curve (§4.2.2–4.2.3); distributions come from
//!    the cross-cycle [`EstimateCache`] (pending jobs are re-estimated when
//!    the predictor learns, running attempts stay pinned) and valuation is
//!    fanned out across threads ([`options::generate`]),
//! 3. charges each option its expected resource consumption over time
//!    (Eq. 3), conditioning running jobs' distributions on their elapsed
//!    time (Eq. 2) with exponential-increment under-estimate handling
//!    (§4.2.1),
//! 4. compiles a MILP — binary indicators per option, demand rows, capacity
//!    rows per (equivalence set, time slot) fed from the per-(mask, slot)
//!    [`options::OptionBuckets`] index, preemption indicators for running
//!    best-effort jobs — and solves it with a warm start (the status quo is
//!    always feasible) under a node/time budget,
//! 5. turns slot-zero selections into concrete per-rack gang allocations.
//!
//! Capacity rows are kept per *equivalence set* (each distinct preferred
//! rack set, plus the whole cluster) rather than per rack; the extraction
//! step re-validates against true per-rack free capacity and leaves a job
//! pending if its gang cannot actually be packed (a rare Hall-condition
//! corner; see DESIGN.md).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use super::clock::Stopwatch;

use serde::{Deserialize, Serialize};

use threesigma_cluster::{
    JobId, JobSpec, PartitionId, Placement, Scheduler, SchedulingDecision, SimulationView,
};
use threesigma_histogram::RuntimeDistribution;
use threesigma_milp::{
    solver_for_tier, Cmp, IncrementalSolver, Model, Solver, SolverConfig, VarId,
};
use threesigma_obs::{Counter, Gauge, Histogram, Recorder};
use threesigma_predict::{AttributeSource, EstimatorKind, Predictor, PredictorConfig};

use crate::dist::DiscreteDist;
use crate::sched::feasibility::mask_capacity;
use crate::sched::options::{
    self, CacheStats, CompiledOption, EstimateCache, GenInput, OptionBuckets, RackMask,
};
use crate::sched::shard::ShardPlan;
use crate::utility::UtilityCurve;

/// Where runtime estimates come from (Table 1).
#[derive(Clone)]
pub enum EstimateSource {
    /// Full distributions from 3σPredict (the 3Sigma system).
    Predicted,
    /// Point estimates from 3σPredict (PointRealEst / 3SigmaNoDist).
    PredictedPoint,
    /// Point estimates padded by `k` standard deviations of the predicted
    /// distribution — the conservative "stochastic scheduler" heuristic the
    /// paper discusses among the mis-estimate mitigations (§2.2).
    PredictedPadded {
        /// Standard deviations of padding added to the point estimate.
        sigmas: f64,
    },
    /// Oracle: the job's true runtime as a point (PointPerfEst).
    OraclePoint,
    /// Externally injected distributions keyed by job id (the §6.3
    /// perturbation study); falls back to the oracle point when missing.
    Injected(Arc<HashMap<JobId, RuntimeDistribution>>),
}

impl std::fmt::Debug for EstimateSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateSource::Predicted => write!(f, "Predicted"),
            EstimateSource::PredictedPoint => write!(f, "PredictedPoint"),
            EstimateSource::PredictedPadded { sigmas } => {
                write!(f, "PredictedPadded({sigmas}σ)")
            }
            EstimateSource::OraclePoint => write!(f, "OraclePoint"),
            EstimateSource::Injected(m) => write!(f, "Injected({} jobs)", m.len()),
        }
    }
}

/// Over-estimate handling policy (§4.2.2–4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverestimateMode {
    /// Hard step utility (PointPerfEst / PointRealEst / 3SigmaNoOE).
    Off,
    /// Decaying utility tail for every SLO job (3SigmaNoAdapt).
    Always,
    /// Decaying tail only for jobs whose distribution says the deadline is
    /// likely unreachable even from submission (3Sigma).
    Adaptive,
}

/// Per-cycle cost budget driving the degradation governor.
///
/// Production clusters overrun their scheduling-cycle budget under load;
/// rather than let one slow MILP stall the cycle clock, the governor
/// watches each cycle's cost against this budget and walks a degradation
/// ladder (see [`SchedConfig::cycle_budget`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CycleBudget {
    /// No budget: every cycle runs the full plan-ahead MILP and the
    /// governor never engages (the default — keeps default-config runs
    /// bit-identical to pre-governor behaviour).
    Unlimited,
    /// Wall-clock budget per cycle, in milliseconds (the production knob,
    /// exposed as `--cycle-budget-ms`). Inherently nondeterministic:
    /// level transitions follow real latency, so replay of a budgeted run
    /// is not byte-stable.
    WallClockMs(f64),
    /// Deterministic work-unit budget: (space, slot) options valued by
    /// Eq. 1 plus branch-and-bound nodes expanded, per cycle. A machine-
    /// independent stand-in for wall-clock that the simtest harness uses
    /// so byte-stable replay survives governor activity.
    WorkUnits(u64),
}

/// 3σSched tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Start slots in the plan-ahead window (§4.3.6: "plan-ahead window
    /// bounds the complexity").
    pub plan_slots: usize,
    /// Slot width in seconds.
    pub slot_width: f64,
    /// Pending jobs considered per cycle (urgency-ordered; the rest wait).
    pub max_jobs_per_cycle: usize,
    /// Branch-and-bound node budget per cycle.
    pub solver_nodes: usize,
    /// Solver wall-clock budget per cycle (the paper queries the best
    /// solution within a fraction of the scheduling interval).
    pub solver_time: Duration,
    /// Over-estimate handling policy.
    pub oe_mode: OverestimateMode,
    /// Adaptive threshold: enable the decay tail when
    /// `P(runtime ≤ deadline − submit) <` this.
    pub oe_threshold: f64,
    /// Decay span: utility reaches zero at
    /// `deadline + span_factor · (deadline − submit)`.
    pub oe_span_factor: f64,
    /// Consider preempting running best-effort jobs.
    pub preemption_enabled: bool,
    /// Objective cost of preempting one BE job (in utility units).
    pub preemption_cost: f64,
    /// Best-effort utility decays to its floor over this many seconds.
    pub be_horizon: f64,
    /// Best-effort utility floor fraction (> 0 prevents starvation).
    pub be_floor: f64,
    /// Mass points per distribution per cycle.
    pub mass_points: usize,
    /// Cancel SLO jobs whose every option has zero expected utility.
    pub cancel_hopeless: bool,
    /// Scheduler cycle length hint (exp-inc under-estimate steps, §4.2.1).
    pub cycle_hint: f64,
    /// Record a [`PlanRecord`] per cycle (debugging/introspection; costs
    /// memory proportional to cycles × planned jobs).
    pub record_plans: bool,
    /// Record every cycle's compiled MILP in the bit-exact fixture text
    /// format (see [`ThreeSigmaScheduler::models`]) — the source of the
    /// differential solver-oracle corpus. Costs memory proportional to
    /// cycles × model size; off by default.
    pub record_models: bool,
    /// Per-cycle cost budget for the degradation governor. When a cycle
    /// overruns it, the next cycle runs one level further down the ladder:
    /// level 0 = full plan-ahead MILP (solver tier 2), level 1 = shrunken
    /// window plus aggressive §4.3.6 option pruning at solver tier 1
    /// (LP-relax + repair), level 2 = minimal window at solver tier 0
    /// (greedy rounding, no branch-and-bound search).
    pub cycle_budget: CycleBudget,
    /// Consecutive on-budget cycles required before the governor steps the
    /// ladder back *down* one level (hysteresis, so a load spike straddling
    /// the budget doesn't flap between levels every cycle).
    pub budget_hysteresis: u32,
    /// Deterministic worker shards for the decide stage. Option enumeration
    /// fans out over exactly this many shards behind a bounded channel with
    /// an ordered merge, so results are byte-identical at every count. Also
    /// widens the representable cluster: each shard contributes one
    /// ≤128-rack mask group, so the scheduler accepts up to
    /// `shards × RackMask::MAX_RACKS` partitions (see
    /// [`crate::ShardPlan`]).
    pub shards: usize,
    /// Pins the solver tier (0 = greedy rounding, 1 = LP-relax + repair,
    /// 2 = full branch-and-bound) instead of deriving it from the
    /// degradation ladder (`--solver-tier`). The governor still walks the
    /// ladder and applies its work caps; only the solve backend is forced.
    pub solver_tier: Option<u8>,
    /// Enable the cycle-over-cycle incremental tier-2 path: the cycle-N
    /// model is diffed against cycle-N−1 and a bit-identical model with a
    /// clean previous solve returns the cached solution. Reuse is gated to
    /// provably-identical inputs, so reports are byte-identical with this
    /// on or off (`--no-incremental` disables it).
    pub incremental_solver: bool,
    /// Entry cap for the cross-cycle [`EstimateCache`] (serve mode; see
    /// [`EstimateCache::with_capacity`] for the eviction contract). `None`
    /// leaves the cache unbounded, which batch run lengths already bound.
    pub cache_capacity: Option<usize>,
    /// Cap on retained per-cycle [`CycleTiming`] records, oldest dropped
    /// first. A long-running service must set this: the default unbounded
    /// `Vec` grows one record per cycle forever.
    pub max_timings: Option<usize>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            plan_slots: 8,
            slot_width: 60.0,
            max_jobs_per_cycle: 96,
            solver_nodes: 150,
            // Generous wall-clock budget: the deterministic node budget is
            // the binding limit by default, so runs are exactly
            // reproducible; tighten this (as the paper does, to a fraction
            // of the cycle) when wall-clock matters more than replay.
            solver_time: Duration::from_secs(2),
            oe_mode: OverestimateMode::Adaptive,
            oe_threshold: 0.15,
            oe_span_factor: 1.0,
            preemption_enabled: true,
            preemption_cost: 1.5,
            be_horizon: 4.0 * 3600.0,
            be_floor: 0.02,
            mass_points: 40,
            cancel_hopeless: true,
            cycle_hint: 2.0,
            record_plans: false,
            record_models: false,
            cycle_budget: CycleBudget::Unlimited,
            budget_hysteresis: 3,
            shards: 1,
            solver_tier: None,
            incremental_solver: true,
            cache_capacity: None,
            max_timings: None,
        }
    }
}

/// One planned assignment inside a [`PlanRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedJob {
    /// The job.
    pub job: JobId,
    /// Chosen start slot (0 = start now; >0 = deferred into the window).
    pub slot: usize,
    /// Absolute planned start time.
    pub start: f64,
    /// Expected utility of the chosen option (Eq. 1).
    pub expected_utility: f64,
    /// Whether the chosen option allows only the job's preferred racks.
    pub preferred_space: bool,
}

/// A cycle's full plan: what the MILP decided, including deferrals that
/// produce no immediate placement (re-planned next cycle, §4.3.1).
#[derive(Debug, Clone, Default)]
pub struct PlanRecord {
    /// Simulated time of the cycle.
    pub now: f64,
    /// Jobs selected to start now.
    pub started: Vec<PlannedJob>,
    /// Jobs deliberately deferred to a later slot.
    pub deferred: Vec<PlannedJob>,
    /// Running jobs the plan preempts.
    pub preempted: Vec<JobId>,
    /// Pending jobs abandoned as hopeless.
    pub cancelled: Vec<JobId>,
    /// MILP objective of the chosen plan.
    pub objective: f64,
}

/// Per-cycle timing record (the §6.5 scalability measurements), with a
/// per-stage latency breakdown. The stages are disjoint, so
/// `generate + compile + solver + extract ≤ total`.
#[derive(Debug, Clone, Copy)]
pub struct CycleTiming {
    /// Pending jobs visible this cycle.
    pub pending: usize,
    /// Jobs actually compiled into the MILP.
    pub considered: usize,
    /// MILP columns.
    pub milp_vars: usize,
    /// MILP rows.
    pub milp_rows: usize,
    /// Whole-cycle latency (option generation + compile + solve + extract).
    pub total: Duration,
    /// Option-generation latency: job selection, estimate-cache refresh,
    /// and parallel Eq. 1 valuation of every (space, slot) option.
    pub generate: Duration,
    /// MILP compilation latency: demand rows, running-job conditioning
    /// (Eq. 2), and bucketed capacity rows (Eq. 3).
    pub compile: Duration,
    /// Solver latency alone.
    pub solver: Duration,
    /// Extraction latency: preemptions, slot-zero gang packing, plan
    /// records, and estimate-cache bookkeeping.
    pub extract: Duration,
    /// Branch-and-bound nodes expanded.
    pub nodes: usize,
    /// Degradation-ladder level this cycle ran at (0 = full MILP,
    /// 1 = shrunken window at tier 1, 2 = minimal window at tier 0).
    pub level: u8,
    /// Solver tier the cycle's MILP ran at (0 = greedy rounding,
    /// 1 = LP-relax + repair, 2 = full branch-and-bound).
    pub solver_tier: u8,
    /// Deterministic cycle cost in work units (options valued + solver
    /// nodes expanded) — what [`CycleBudget::WorkUnits`] is charged
    /// against. Shard-invariant: costs are summed after the ordered merge,
    /// so the budget is attached to the cycle that spent the work no matter
    /// how the enumeration was fanned out.
    pub cost_units: u64,
    /// Configured worker shards the decide stage fanned out over.
    pub shards: usize,
}

/// Exp-inc under-estimate state for one running attempt (§4.2.1).
#[derive(Debug, Clone, Copy)]
struct UnderEst {
    increments: u32,
    est_total_runtime: f64,
}

/// §4.2.1 exponential-increment step with saturating arithmetic.
///
/// Advances the attempt's estimated total runtime to `elapsed + 2^t · hint`
/// until it exceeds `elapsed`. The `2^t` factor is computed in `u64` with
/// `checked_shl` and capped once `t` reaches 64, so a long-outlived
/// under-estimate can never push the factor to `inf` (which previously
/// produced a `point(inf)` distribution and NaN survival terms in the
/// MILP). If `hint` is so small it is absorbed by `elapsed` in floating
/// point, the estimate still makes forward progress instead of looping.
fn exp_inc(ue: &mut UnderEst, elapsed: f64, hint: f64) -> f64 {
    while ue.est_total_runtime <= elapsed {
        ue.increments = ue.increments.saturating_add(1);
        let factor = 1u64
            .checked_shl(ue.increments)
            .map_or(u64::MAX as f64, |f| f as f64);
        ue.est_total_runtime = (elapsed + factor * hint).min(f64::MAX);
        if ue.increments >= 64 {
            // The doubling factor has saturated; guarantee progress even
            // when `factor * hint` underflows against `elapsed`.
            if ue.est_total_runtime <= elapsed {
                ue.est_total_runtime = (elapsed * 2.0).min(f64::MAX).max(elapsed + 1.0);
            }
            break;
        }
    }
    ue.est_total_runtime
}

/// Adapter exposing cluster attributes to the predictor.
struct Attrs<'a>(&'a threesigma_cluster::Attributes);

impl AttributeSource for Attrs<'_> {
    fn get_attr(&self, key: &str) -> Option<&str> {
        self.0.get(key)
    }
}

/// Deterministic cumulative scheduler counters, kept as plain integers on
/// the hot path and mirrored into the metrics [`Recorder`] once per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Scheduling cycles executed.
    pub cycles: u64,
    /// (space, slot) options valued by Eq. 1, including pruned ones.
    pub options_enumerated: u64,
    /// Options dropped by the §4.3.6 zero-value prune.
    pub options_pruned: u64,
    /// Options that became concrete placements.
    pub options_placed: u64,
    /// Estimate-cache stats (base and scaled lookups).
    pub cache: CacheStats,
    /// Branch-and-bound nodes expanded across all cycles.
    pub milp_nodes: u64,
    /// Simplex pivots (LP iterations) across all cycles.
    pub milp_pivots: u64,
    /// Times the solver created or improved an incumbent.
    pub milp_incumbent_updates: u64,
    /// Cycles whose solve ended on the wall-clock budget.
    pub solver_timeouts: u64,
    /// Cycles where the accepted plan is the warm-started status quo (the
    /// search never improved on the seed incumbent).
    pub warm_start_reuses: u64,
    /// Times the predictor's chosen (feature, estimator) expert changed
    /// between consecutive submission-time predictions.
    pub expert_switches: u64,
    /// Current degradation-ladder level (0 = full MILP; not cumulative,
    /// but kept here so the obs flush carries it with the counters).
    pub degradation_level: u64,
    /// Times the governor stepped the ladder up (degrading) by one level.
    pub governor_step_ups: u64,
    /// Times the governor stepped the ladder back down by one level.
    pub governor_step_downs: u64,
    /// Cycles whose cost exceeded the configured [`CycleBudget`].
    pub budget_overruns: u64,
    /// Solver tier of the most recent cycle (0/1/2; not cumulative, kept
    /// here so the obs flush carries it with the counters).
    pub solver_tier: u64,
    /// Cycles solved at tier 0 (greedy rounding of the LP relaxation).
    pub tier0_cycles: u64,
    /// Cycles solved at tier 1 (root LP + round-and-repair).
    pub tier1_cycles: u64,
    /// Cycles solved at tier 2 (full branch-and-bound).
    pub tier2_cycles: u64,
    /// Tier-2 solves answered from the incremental cache (bit-identical
    /// model, warm start, and budgets vs the previous cycle).
    pub incremental_reuses: u64,
    /// Presolve reductions across all cycles: variables fixed, rows
    /// absorbed, dominated options removed, and bounds tightened.
    pub presolve_reductions: u64,
}

/// Serialisable scheduler state for serve-mode restarts: the predictor's
/// sketches and NMAE expert accounts, the cumulative counters, the
/// degradation-governor ladder position, and the estimate-cache epoch and
/// lifetime stats. Cache *entries* are deliberately absent — snapshots are
/// taken at quiescence, when every live job's entry has been invalidated by
/// completion — as is the incremental-solver state, whose reuse contract
/// already guarantees byte-identical decisions with or without it.
///
/// Field order is the byte-stability contract: serialisation is
/// `serde_json` over this struct in declaration order, so the same state
/// always produces the same bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedSnapshot {
    /// Predictor sketches, expert scores, and LRU touch order.
    pub predictor: threesigma_predict::Snapshot,
    /// Cumulative counters (the `cache` field inside is ignored; see
    /// `cache_stats`).
    pub totals: SchedStats,
    /// Estimate-cache lifetime counters.
    pub cache_stats: CacheStats,
    /// Estimate-cache history epoch.
    pub cache_epoch: u64,
    /// Degradation-ladder level at snapshot time.
    pub governor_level: u8,
    /// Governor on-budget streak at snapshot time.
    pub governor_streak: u32,
    /// Last (feature, estimator) expert chosen before the snapshot, by
    /// feature name.
    pub last_expert: Option<(String, EstimatorKind)>,
}

/// Metric handles registered against the attached [`Recorder`]; kept
/// alongside the scheduler so the per-cycle flush only touches atomics.
struct SchedMetrics {
    cycles: Counter,
    options_enumerated: Counter,
    options_pruned: Counter,
    options_placed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_lookups: Counter,
    cache_entries: Gauge,
    cache_capacity: Gauge,
    cache_evictions: Counter,
    milp_nodes: Counter,
    milp_pivots: Counter,
    incumbent_updates: Counter,
    solver_timeouts: Counter,
    warm_start_reuses: Counter,
    expert_switches: Counter,
    degradation_level: Gauge,
    cycle_cost_units: Gauge,
    governor_step_ups: Counter,
    governor_step_downs: Counter,
    budget_overruns: Counter,
    solver_tier: Gauge,
    tier0_cycles: Counter,
    tier1_cycles: Counter,
    tier2_cycles: Counter,
    incremental_reuses: Counter,
    presolve_reductions: Counter,
    predict_tracked_values: Gauge,
    predict_tracked_values_limit: Gauge,
    predict_evicted_values: Counter,
    predict_censored: Counter,
    predict_observations: Counter,
    predict_bin_merges: Counter,
    predict_best_nmae: Gauge,
    generate_seconds: Histogram,
    compile_seconds: Histogram,
    solve_seconds: Histogram,
    extract_seconds: Histogram,
    cycle_seconds: Histogram,
    shards: Gauge,
    shard_generate_seconds: Histogram,
}

impl SchedMetrics {
    fn register(rec: &Recorder) -> Self {
        Self {
            cycles: rec.counter("sched_cycles_total", "Scheduling cycles executed"),
            options_enumerated: rec.counter(
                "sched_options_enumerated_total",
                "(space, slot) options valued by Eq. 1, including pruned",
            ),
            options_pruned: rec.counter(
                "sched_options_pruned_total",
                "Options dropped by the zero-value prune",
            ),
            options_placed: rec.counter(
                "sched_options_placed_total",
                "Options that became concrete placements",
            ),
            cache_hits: rec.counter("sched_cache_hits_total", "Estimate-cache hits"),
            cache_misses: rec.counter("sched_cache_misses_total", "Estimate-cache misses"),
            cache_lookups: rec.counter("sched_cache_lookups_total", "Estimate-cache lookups"),
            cache_entries: rec.gauge(
                "sched_cache_entries",
                "Estimate-cache entries currently held",
            ),
            cache_capacity: rec.gauge(
                "sched_cache_capacity",
                "Configured estimate-cache entry cap (0 = unbounded)",
            ),
            cache_evictions: rec.counter(
                "sched_cache_evictions_total",
                "Estimate-cache entries evicted by the capacity cap",
            ),
            milp_nodes: rec.counter("sched_milp_nodes_total", "Branch-and-bound nodes expanded"),
            milp_pivots: rec.counter("sched_milp_pivots_total", "Simplex pivots (LP iterations)"),
            incumbent_updates: rec.counter(
                "sched_milp_incumbent_updates_total",
                "Times the solver created or improved an incumbent",
            ),
            solver_timeouts: rec.counter(
                "sched_solver_timeouts_total",
                "Cycles whose solve ended on the wall-clock budget",
            ),
            warm_start_reuses: rec.counter(
                "sched_warm_start_reuse_total",
                "Cycles where the plan is the warm-started status quo",
            ),
            expert_switches: rec.counter(
                "sched_expert_switches_total",
                "Predictor (feature, estimator) expert changes between predictions",
            ),
            degradation_level: rec.gauge(
                "sched_degradation_level",
                "Current degradation-ladder level (0 = full MILP, 2 = minimal greedy)",
            ),
            cycle_cost_units: rec.gauge(
                "sched_cycle_cost_units",
                "Last cycle's deterministic cost (options valued + solver nodes)",
            ),
            governor_step_ups: rec.counter(
                "sched_governor_step_ups_total",
                "Governor degradations (ladder stepped up one level)",
            ),
            governor_step_downs: rec.counter(
                "sched_governor_step_downs_total",
                "Governor recoveries (ladder stepped down one level)",
            ),
            budget_overruns: rec.counter(
                "sched_budget_overruns_total",
                "Cycles whose cost exceeded the configured budget",
            ),
            solver_tier: rec.gauge(
                "sched_solver_tier",
                "Solver tier of the last cycle (0 greedy, 1 LP+repair, 2 B&B)",
            ),
            tier0_cycles: rec.counter(
                "sched_solver_tier0_cycles_total",
                "Cycles solved at tier 0 (greedy rounding)",
            ),
            tier1_cycles: rec.counter(
                "sched_solver_tier1_cycles_total",
                "Cycles solved at tier 1 (LP-relax + repair)",
            ),
            tier2_cycles: rec.counter(
                "sched_solver_tier2_cycles_total",
                "Cycles solved at tier 2 (full branch-and-bound)",
            ),
            incremental_reuses: rec.counter(
                "sched_incremental_reuses_total",
                "Tier-2 solves answered from the incremental cache",
            ),
            presolve_reductions: rec.counter(
                "sched_presolve_reductions_total",
                "Presolve reductions (fixed vars, rows, dominated options, bounds)",
            ),
            predict_censored: rec.counter(
                "predict_censored_observations_total",
                "Killed/failed runs recorded as censored lower bounds only",
            ),
            predict_tracked_values: rec.gauge(
                "predict_tracked_values",
                "Attribute values with per-value runtime history",
            ),
            predict_tracked_values_limit: rec.gauge(
                "predict_tracked_values_limit",
                "Configured cap on tracked feature values (0 = unbounded)",
            ),
            predict_evicted_values: rec.counter(
                "predict_evicted_values_total",
                "Feature-value states evicted by the LRU/TTL bound",
            ),
            predict_observations: rec.counter(
                "predict_observations_total",
                "Runtime observations folded into the predictor",
            ),
            predict_bin_merges: rec.counter(
                "predict_bin_merges_total",
                "Streaming-histogram bin merges across all tracked values",
            ),
            predict_best_nmae: rec.gauge(
                "predict_best_nmae",
                "Best (lowest) per-feature NMAE currently achieved",
            ),
            generate_seconds: rec.timer(
                "sched_generate_seconds",
                "Option-generation stage latency per cycle",
            ),
            compile_seconds: rec.timer(
                "sched_compile_seconds",
                "MILP compilation stage latency per cycle",
            ),
            solve_seconds: rec.timer("sched_solve_seconds", "MILP solver latency per cycle"),
            extract_seconds: rec.timer(
                "sched_extract_seconds",
                "Placement extraction stage latency per cycle",
            ),
            cycle_seconds: rec.timer("sched_cycle_seconds", "Whole scheduling cycle latency"),
            shards: rec.gauge(
                "sched_shards",
                "Configured worker shards for the decide stage",
            ),
            shard_generate_seconds: rec.timer(
                "sched_shard_generate_seconds",
                "Per-shard option-enumeration latency within a cycle",
            ),
        }
    }

    fn flush(
        &self,
        stats: &SchedStats,
        predictor: &Predictor,
        cache: &EstimateCache,
        timing: &CycleTiming,
        shard_durations: &[Duration],
    ) {
        self.cycles.set_total(stats.cycles);
        self.options_enumerated.set_total(stats.options_enumerated);
        self.options_pruned.set_total(stats.options_pruned);
        self.options_placed.set_total(stats.options_placed);
        self.cache_hits.set_total(stats.cache.hits);
        self.cache_misses.set_total(stats.cache.misses);
        self.cache_lookups.set_total(stats.cache.lookups);
        self.cache_entries.set(cache.len() as f64);
        self.cache_capacity
            .set(cache.capacity().unwrap_or(0) as f64);
        self.cache_evictions.set_total(stats.cache.evictions);
        self.milp_nodes.set_total(stats.milp_nodes);
        self.milp_pivots.set_total(stats.milp_pivots);
        self.incumbent_updates
            .set_total(stats.milp_incumbent_updates);
        self.solver_timeouts.set_total(stats.solver_timeouts);
        self.warm_start_reuses.set_total(stats.warm_start_reuses);
        self.expert_switches.set_total(stats.expert_switches);
        self.degradation_level.set(stats.degradation_level as f64);
        self.cycle_cost_units.set(timing.cost_units as f64);
        self.governor_step_ups.set_total(stats.governor_step_ups);
        self.governor_step_downs
            .set_total(stats.governor_step_downs);
        self.budget_overruns.set_total(stats.budget_overruns);
        self.solver_tier.set(stats.solver_tier as f64);
        self.tier0_cycles.set_total(stats.tier0_cycles);
        self.tier1_cycles.set_total(stats.tier1_cycles);
        self.tier2_cycles.set_total(stats.tier2_cycles);
        self.incremental_reuses.set_total(stats.incremental_reuses);
        self.presolve_reductions
            .set_total(stats.presolve_reductions);
        // O(1): the full `predictor.stats()` scan over every tracked
        // feature value is far too slow to run once per cycle.
        let ps = predictor.quick_stats();
        self.predict_tracked_values.set(ps.tracked_values as f64);
        self.predict_tracked_values_limit
            .set(predictor.tracked_values_limit().unwrap_or(0) as f64);
        self.predict_evicted_values.set_total(ps.evictions);
        self.predict_observations.set_total(ps.observations);
        self.predict_bin_merges.set_total(ps.bin_merges);
        self.predict_censored.set_total(ps.censored);
        if let Some(best) = ps.best_nmae {
            self.predict_best_nmae.set(best);
        }
        self.generate_seconds.observe_duration(timing.generate);
        self.compile_seconds.observe_duration(timing.compile);
        self.solve_seconds.observe_duration(timing.solver);
        self.extract_seconds.observe_duration(timing.extract);
        self.cycle_seconds.observe_duration(timing.total);
        self.shards.set(timing.shards as f64);
        for d in shard_durations {
            self.shard_generate_seconds.observe_duration(*d);
        }
    }
}

/// Hysteresis state of the degradation governor.
#[derive(Debug, Clone, Copy, Default)]
struct Governor {
    /// Current ladder level (0 = full MILP, 1 = shrunken window at tier 1,
    /// 2 = minimal window at tier 0).
    level: u8,
    /// Consecutive on-budget cycles since the last transition.
    streak: u32,
    /// Previous cycle's cost as (work units, wall clock); `None` before
    /// the first cycle, so the first cycle is never judged.
    last_cost: Option<(u64, Duration)>,
}

/// Judges the previous cycle against the budget and moves the ladder by at
/// most one level. Called at the top of every cycle, *before* any work, so
/// a cycle runs entirely at one level and transitions are visible in the
/// cycle trace as ±1 steps.
fn governor_step(cfg: &SchedConfig, gov: &mut Governor, totals: &mut SchedStats) -> u8 {
    let over = match (cfg.cycle_budget, gov.last_cost) {
        (CycleBudget::Unlimited, _) | (_, None) => None,
        (CycleBudget::WallClockMs(ms), Some((_, wall))) => Some(wall.as_secs_f64() * 1e3 > ms),
        (CycleBudget::WorkUnits(units), Some((cost, _))) => Some(cost > units),
    };
    match over {
        None => {}
        Some(true) => {
            totals.budget_overruns += 1;
            gov.streak = 0;
            if gov.level < 2 {
                gov.level += 1;
                totals.governor_step_ups += 1;
            }
        }
        Some(false) => {
            gov.streak += 1;
            if gov.level > 0 && gov.streak >= cfg.budget_hysteresis.max(1) {
                gov.level -= 1;
                totals.governor_step_downs += 1;
                gov.streak = 0;
            }
        }
    }
    totals.degradation_level = gov.level as u64;
    gov.level
}

/// The degraded-level caps on MILP work, derived from the configured budget.
struct LevelCaps {
    plan_slots: usize,
    max_jobs: usize,
    solver_nodes: usize,
    solver_time: Duration,
    /// Aggressive §4.3.6 prune: keep at most this many options per job.
    max_options: usize,
}

/// Shrinks the plan-ahead MILP so a level-1 cycle provably (for
/// [`CycleBudget::WorkUnits`]) or heuristically (wall clock) fits the
/// budget. For a work-unit budget `b`: enumeration is capped at
/// `max_jobs · 2 spaces · plan_slots ≤ b/2` and solver nodes at `b/8`, so
/// the total cycle cost stays ≤ 5b/8 with slack for rounding.
fn level1_caps(cfg: &SchedConfig) -> LevelCaps {
    let plan_slots = cfg.plan_slots.clamp(2, 4);
    match cfg.cycle_budget {
        CycleBudget::WorkUnits(b) => {
            let per_job = 2 * plan_slots as u64;
            let max_jobs = ((b / 2) / per_job.max(1)).max(1) as usize;
            LevelCaps {
                plan_slots,
                max_jobs: max_jobs.min(cfg.max_jobs_per_cycle),
                solver_nodes: ((b / 8).max(1) as usize).min(cfg.solver_nodes),
                solver_time: cfg.solver_time,
                max_options: plan_slots,
            }
        }
        // Wall-clock (or, defensively, unlimited) budgets have no exact
        // unit conversion: quarter the work and halve the solver clock.
        CycleBudget::WallClockMs(_) | CycleBudget::Unlimited => LevelCaps {
            plan_slots,
            max_jobs: (cfg.max_jobs_per_cycle / 4).max(1),
            solver_nodes: (cfg.solver_nodes / 4).max(1),
            solver_time: cfg.solver_time / 2,
            max_options: plan_slots,
        },
    }
}

/// Level-2 caps: the emergency rung runs a *minimal* plan-ahead MILP at
/// solver tier 0 (greedy rounding, zero search nodes) instead of bypassing
/// the MILP entirely — a principled backend rather than a special case.
/// For a work-unit budget `b`: enumeration ≤ `max_jobs · 2 spaces ·
/// 2 slots ≤ b/4` and tier 0 expands no nodes (nodes ≤ `b/8` even if the
/// tier is overridden upward), so the cycle cost stays well under budget
/// and hysteresis can step the ladder back down.
fn level2_caps(cfg: &SchedConfig) -> LevelCaps {
    let plan_slots = 2;
    match cfg.cycle_budget {
        CycleBudget::WorkUnits(b) => {
            let per_job = 2 * plan_slots as u64;
            let max_jobs = ((b / 4) / per_job.max(1)).max(1) as usize;
            LevelCaps {
                plan_slots,
                max_jobs: max_jobs.min(cfg.max_jobs_per_cycle),
                solver_nodes: ((b / 8).max(1) as usize).min(cfg.solver_nodes),
                solver_time: cfg.solver_time,
                max_options: plan_slots,
            }
        }
        CycleBudget::WallClockMs(_) | CycleBudget::Unlimited => LevelCaps {
            plan_slots,
            max_jobs: (cfg.max_jobs_per_cycle / 8).max(1),
            solver_nodes: (cfg.solver_nodes / 8).max(1),
            solver_time: cfg.solver_time / 4,
            max_options: plan_slots,
        },
    }
}

/// The 3σSched scheduler (and, via its config, all Table 1 baselines
/// except `Prio`).
pub struct ThreeSigmaScheduler {
    config: SchedConfig,
    source: EstimateSource,
    predictor: Predictor,
    /// Cross-cycle cache of per-job discretised distributions (base and
    /// slowdown-scaled), epoch-invalidated as the predictor learns.
    cache: EstimateCache,
    /// Exp-inc state keyed by (job, attempt-start bits). Ordered map: the
    /// retain sweep below iterates it, and iteration order must be stable.
    underest: BTreeMap<(JobId, u64), UnderEst>,
    timings: Vec<CycleTiming>,
    plans: Vec<PlanRecord>,
    /// Per-cycle MILP dumps in fixture text (empty unless `record_models`).
    models: Vec<String>,
    /// Cumulative deterministic counters (excluding cache stats, which
    /// live on the cache itself).
    totals: SchedStats,
    /// Last (feature, estimator) expert the predictor chose.
    last_expert: Option<(&'static str, EstimatorKind)>,
    /// Degradation-governor state (level, hysteresis streak, last cost).
    governor: Governor,
    /// Persistent tier-2 incremental solver, tagged with the budgets it
    /// was built for. Rebuilt (dropping the cycle-N−1 cache — a budget
    /// change invalidates the reuse contract) whenever the caps change.
    incremental: Option<(SolverConfig, IncrementalSolver)>,
    /// Registered metric handles when a recorder is attached.
    obs: Option<SchedMetrics>,
}

impl ThreeSigmaScheduler {
    /// Creates a scheduler with the given estimate source.
    pub fn new(
        config: SchedConfig,
        source: EstimateSource,
        predictor_config: PredictorConfig,
    ) -> Self {
        let cache = match config.cache_capacity {
            Some(cap) => EstimateCache::with_capacity(cap),
            None => EstimateCache::new(),
        };
        Self {
            config,
            source,
            predictor: Predictor::new(predictor_config),
            cache,
            underest: BTreeMap::new(),
            timings: Vec::new(),
            plans: Vec::new(),
            models: Vec::new(),
            totals: SchedStats::default(),
            last_expert: None,
            governor: Governor::default(),
            incremental: None,
            obs: None,
        }
    }

    /// Current degradation-ladder level (0 = full MILP at tier 2, 1 =
    /// capped MILP at tier 1, 2 = minimal window at tier 0).
    pub fn degradation_level(&self) -> u8 {
        self.governor.level
    }

    /// Solver tier the most recent cycle ran at (2 until a cycle runs).
    pub fn solver_tier(&self) -> u8 {
        self.timings.last().map(|t| t.solver_tier).unwrap_or(2)
    }

    /// Attaches a metrics recorder; cumulative counters and stage timers
    /// are published through it at the end of every scheduling cycle.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        // A disabled recorder registers nothing: the per-cycle flush (which
        // also aggregates predictor stats) is skipped entirely, keeping the
        // default path free of observability overhead.
        if recorder.is_enabled() {
            self.obs = Some(SchedMetrics::register(recorder));
        }
        self
    }

    /// Cumulative deterministic scheduler counters.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            cache: self.cache.stats(),
            ..self.totals
        }
    }

    /// Captures the scheduler state a serve-mode restart must carry (see
    /// [`SchedSnapshot`]). Meant to be taken at engine quiescence: running
    /// attempts' exp-inc state and pinned cache entries are transient
    /// per-attempt bookkeeping that an idle scheduler does not hold.
    pub fn serve_snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            predictor: self.predictor.snapshot(),
            totals: self.totals,
            cache_stats: self.cache.stats(),
            cache_epoch: self.cache.epoch(),
            governor_level: self.governor.level,
            governor_streak: self.governor.streak,
            last_expert: self.last_expert.map(|(f, k)| (f.to_string(), k)),
        }
    }

    /// Restores state captured by [`Self::serve_snapshot`] into a freshly
    /// constructed scheduler (same config). The governor's previous-cycle
    /// cost restores as "unknown", so the first cycle after a restart is
    /// never judged against the budget — identical to the very first cycle
    /// of any run.
    pub fn serve_restore(&mut self, snapshot: SchedSnapshot) -> Result<(), String> {
        self.predictor
            .restore(snapshot.predictor)
            .map_err(|i| format!("predictor snapshot entry {i} references an unknown feature"))?;
        self.totals = snapshot.totals;
        self.cache
            .restore_stats(snapshot.cache_stats, snapshot.cache_epoch);
        self.governor = Governor {
            level: snapshot.governor_level,
            streak: snapshot.governor_streak,
            last_cost: None,
        };
        self.last_expert = match snapshot.last_expert {
            Some((name, kind)) => {
                let feature = self.predictor.canonical_feature(&name).ok_or_else(|| {
                    format!("snapshot expert feature {name:?} is not in the feature set")
                })?;
                Some((feature, kind))
            }
            None => None,
        };
        Ok(())
    }

    /// Feeds completed history jobs to the predictor (the §5 pre-training
    /// step). No-op for oracle/injected sources that don't use history.
    pub fn pretrain(&mut self, history: &[JobSpec]) {
        for job in history {
            self.predictor
                .observe(&Attrs(&job.attributes), job.duration);
        }
    }

    /// Per-cycle timing records collected so far.
    pub fn timings(&self) -> &[CycleTiming] {
        &self.timings
    }

    /// Per-cycle plan records (empty unless `record_plans` is set).
    pub fn plans(&self) -> &[PlanRecord] {
        &self.plans
    }

    /// Per-cycle MILP dumps in the bit-exact fixture text format (empty
    /// unless `record_models` is set). Feed these to
    /// `threesigma_milp::Model::from_text` to replay a cycle's solve.
    pub fn models(&self) -> &[String] {
        &self.models
    }

    /// The estimate distribution for a job, per the configured source
    /// (uncached; the scheduling cycle goes through the [`EstimateCache`]).
    #[cfg(test)]
    fn estimate(&self, spec: &JobSpec) -> DiscreteDist {
        estimate_dist(&self.source, &self.predictor, self.config.mass_points, spec)
    }
}

/// Computes a job's estimate distribution from the configured source.
///
/// Free function (rather than a method) so the scheduling cycle can call it
/// from inside [`EstimateCache::base`] closures while the cache itself is
/// mutably borrowed.
fn estimate_dist(
    source: &EstimateSource,
    predictor: &Predictor,
    mass_points: usize,
    spec: &JobSpec,
) -> DiscreteDist {
    let n = mass_points;
    match source {
        EstimateSource::OraclePoint => DiscreteDist::point(spec.duration),
        EstimateSource::Injected(map) => match map.get(&spec.id) {
            Some(d) => DiscreteDist::from_distribution(d, n),
            None => DiscreteDist::point(spec.duration),
        },
        EstimateSource::Predicted => match predictor.predict(&Attrs(&spec.attributes)) {
            Some(p) => DiscreteDist::from_distribution(&p.distribution, n),
            None => cold_start_dist(spec),
        },
        EstimateSource::PredictedPoint => match predictor.predict_point(&Attrs(&spec.attributes)) {
            Some(point) => DiscreteDist::point(point),
            None => DiscreteDist::point(300.0),
        },
        EstimateSource::PredictedPadded { sigmas } => {
            match predictor.predict(&Attrs(&spec.attributes)) {
                Some(p) => {
                    // Pad around the discretised distribution's own mean:
                    // the base and the variance must come from the same
                    // estimator. (Padding the point expert's estimate with
                    // the distribution expert's σ mixed two estimators.)
                    let d = DiscreteDist::from_distribution(&p.distribution, n);
                    DiscreteDist::point(d.mean() + sigmas * d.variance().sqrt())
                }
                None => DiscreteDist::point(300.0),
            }
        }
    }
}

/// With zero history anywhere (cold start), assume a broad prior.
fn cold_start_dist(_spec: &JobSpec) -> DiscreteDist {
    let prior =
        RuntimeDistribution::LogNormal(threesigma_histogram::LogNormal::new(300f64.ln(), 1.0));
    DiscreteDist::from_distribution(&prior, 16)
}

/// The utility curve for a job, applying over-estimate handling.
fn utility_curve(cfg: &SchedConfig, spec: &JobSpec, dist: &DiscreteDist) -> UtilityCurve {
    match spec.kind.deadline() {
        None => UtilityCurve::BeLinear {
            weight: spec.utility_weight,
            submit: spec.submit_time,
            horizon: cfg.be_horizon,
            floor: cfg.be_floor,
        },
        Some(deadline) => {
            let decay = match cfg.oe_mode {
                OverestimateMode::Off => false,
                OverestimateMode::Always => true,
                OverestimateMode::Adaptive => {
                    // §4.2.3: time-to-deadline is a proxy upper bound on
                    // the true runtime; if the distribution says the job
                    // almost surely cannot fit that bound, the
                    // distribution is likely skewed high.
                    let bound = deadline - spec.submit_time;
                    dist.cdf(bound) < cfg.oe_threshold
                }
            };
            if decay {
                // The decay must span the distribution's support, or a
                // fully over-estimated job would still see zero utility
                // everywhere (§4.2.2 wants non-zero utility even when
                // all completion times exceed the deadline).
                let span = (deadline - spec.submit_time)
                    .max(dist.upper())
                    .max(cfg.slot_width)
                    * cfg.oe_span_factor;
                UtilityCurve::SloDecay {
                    weight: spec.utility_weight,
                    deadline,
                    zero_at: deadline + span,
                }
            } else {
                UtilityCurve::SloStep {
                    weight: spec.utility_weight,
                    deadline,
                }
            }
        }
    }
}

/// Start-slot times: slot 0 is "now"; later slots snap to absolute
/// `slot_width` boundaries so a deferred plan (e.g. "start when the running
/// job's distribution is exhausted") stays stable across scheduling cycles
/// instead of drifting with the cycle clock.
fn slot_times(now: f64, width: f64, slots: usize) -> Vec<f64> {
    let mut ts = Vec::with_capacity(slots);
    ts.push(now);
    let base = (now / width).floor();
    for k in 1..slots {
        ts.push((base + k as f64) * width);
    }
    ts
}

impl Scheduler for ThreeSigmaScheduler {
    fn max_partitions(&self) -> Option<usize> {
        // One RackMask-sized group per configured shard; the engine rejects
        // larger cluster specs at ingest with a typed error.
        Some(ShardPlan::max_partitions(self.config.shards))
    }

    fn on_job_submitted(&mut self, spec: &JobSpec, _now: f64) {
        let d = estimate_dist(&self.source, &self.predictor, self.config.mass_points, spec);
        // Seed the cache; the entry is lazily refreshed every time the
        // history epoch moves while the job is still pending.
        let _ = self.cache.base(spec.id, || d);
        // Track which (feature, estimator) expert the predictor currently
        // trusts; a change between consecutive predictions is an expert
        // switch (estimator-competition churn, §4.1).
        if matches!(
            self.source,
            EstimateSource::Predicted
                | EstimateSource::PredictedPoint
                | EstimateSource::PredictedPadded { .. }
        ) {
            if let Some(p) = self.predictor.predict(&Attrs(&spec.attributes)) {
                let expert = (p.feature, p.estimator);
                if self.last_expert.is_some_and(|prev| prev != expert) {
                    self.totals.expert_switches += 1;
                }
                self.last_expert = Some(expert);
            }
        }
    }

    fn on_job_completed(
        &mut self,
        spec: &JobSpec,
        outcome: &threesigma_cluster::JobOutcome,
        _now: f64,
    ) {
        if let Some(rt) = outcome.measured_runtime {
            self.predictor.observe(&Attrs(&spec.attributes), rt);
            // The predictor learned: pending jobs' estimates are stale.
            self.cache.bump_epoch();
        }
        self.cache.invalidate(spec.id);
    }

    fn on_job_killed(&mut self, spec: &JobSpec, elapsed: f64, _will_retry: bool, _now: f64) {
        // A killed run's elapsed time is a *censored* lower bound on the
        // true runtime — it must never enter the per-feature histograms as
        // a completion (that would bias every history short, since long
        // jobs are exactly the ones most likely to be killed). No epoch
        // bump either: the histories did not change.
        self.predictor
            .observe_censored(&Attrs(&spec.attributes), elapsed);
        // The attempt is dead; drop its pinned estimate so a retry is
        // re-estimated from current history.
        self.cache.invalidate(spec.id);
    }

    fn schedule(&mut self, view: &SimulationView<'_>, now: f64) -> SchedulingDecision {
        let cycle_start = Stopwatch::start();
        let cfg = self.config.clone();
        // Judge the previous cycle against the budget and settle this
        // cycle's ladder level before doing any work.
        let level = governor_step(&cfg, &mut self.governor, &mut self.totals);
        let mut decision = SchedulingDecision::noop();
        let Self {
            cache,
            source,
            predictor,
            underest,
            timings,
            plans,
            models,
            totals,
            governor,
            incremental,
            obs,
            ..
        } = self;
        totals.cycles += 1;

        // Each ladder rung maps to a solver tier (tier = 2 − level): level 1
        // shrinks the plan-ahead window and caps MILP work to fit the
        // budget; level 2 runs a minimal window through the tier-0 greedy
        // backend. Level 0 runs the configured full plan at tier 2.
        let caps = match level {
            0 => None,
            1 => Some(level1_caps(&cfg)),
            _ => Some(level2_caps(&cfg)),
        };
        let plan_slots = caps.as_ref().map_or(cfg.plan_slots, |c| c.plan_slots);
        let max_jobs = caps.as_ref().map_or(cfg.max_jobs_per_cycle, |c| c.max_jobs);
        let solver_nodes = caps.as_ref().map_or(cfg.solver_nodes, |c| c.solver_nodes);
        let solver_time = caps.as_ref().map_or(cfg.solver_time, |c| c.solver_time);
        let max_options = caps.as_ref().map(|c| c.max_options);

        // ---- Stage 1: generate. Select the most urgent pending jobs,
        // refresh cached estimates, and value every (space, slot) option
        // in parallel. ----
        let mut order: Vec<usize> = (0..view.pending.len()).collect();
        let urgency = |spec: &JobSpec| match spec.kind.deadline() {
            Some(d) => d,
            None => spec.submit_time + 0.25 * cfg.be_horizon,
        };
        // `total_cmp` keeps the sort well-defined even for a NaN deadline
        // (NaN orders last); the previous `partial_cmp().expect(...)` killed
        // the whole engine on one malformed job.
        order.sort_by(|&a, &b| urgency(view.pending[a]).total_cmp(&urgency(view.pending[b])));
        order.truncate(max_jobs);
        let considered: Vec<&JobSpec> = order.iter().map(|&i| view.pending[i]).collect();

        // Partition → mask-group layout. Clusters that fit one RackMask get
        // a single group whose local coordinates equal global coordinates —
        // the sharded path is then bit-identical to the sequential one.
        // Larger clusters split into contiguous ≤128-rack groups and every
        // job is homed to exactly one group.
        let plan = ShardPlan::new(view.cluster.num_partitions(), cfg.shards);
        let multi_group = plan.num_groups() > 1;
        let slots = slot_times(now, cfg.slot_width, plan_slots);

        // Distinct (group, equivalence-set mask) pairs that need capacity
        // rows: each group's full mask first, then per-job preferred masks.
        let mut space_masks: Vec<(usize, RackMask)> = (0..plan.num_groups())
            .map(|g| (g, plan.group_mask(g)))
            .collect();
        let mut gen_inputs: Vec<GenInput> = Vec::with_capacity(considered.len());
        // Home mask group per considered job (parallel to `gen_inputs`).
        let mut job_groups: Vec<usize> = Vec::with_capacity(considered.len());
        for spec in &considered {
            let g = plan.home_group(spec);
            let gmask = plan.group_mask(g);
            let base = cache.base(spec.id, || {
                estimate_dist(source, predictor, cfg.mass_points, spec)
            });
            let curve = utility_curve(&cfg, spec, &base);
            // Equivalence sets for this job: preferred racks (unscaled
            // runtime) and the job's whole home group (slowed runtime), or
            // just the home group for indifferent jobs. On a single-group
            // cluster the home group *is* the whole cluster.
            // The base() call above guarantees an entry, so scaled() cannot
            // miss; if bookkeeping ever slips, fall back to the unscaled
            // base — a degraded valuation, not a panic.
            let mut spaces = Vec::new();
            match &spec.preferred {
                Some(pref) => {
                    // Remap preferred racks into group-local mask bits; at
                    // scale, preferred racks outside the job's home group
                    // are ignored (documented scale-mode trade-off).
                    let pmask = if multi_group {
                        pref.iter()
                            .filter(|p| {
                                p.index() < view.cluster.num_partitions() && plan.group_of(**p) == g
                            })
                            .fold(RackMask::EMPTY, |m, p| {
                                m.with(RackMask::single(plan.to_local(g, *p)))
                            })
                    } else {
                        RackMask::of(pref)
                    };
                    let unit = cache.scaled(spec.id, 1.0).unwrap_or_else(|| base.clone());
                    let slowed = cache
                        .scaled(spec.id, spec.nonpreferred_slowdown)
                        .unwrap_or_else(|| base.clone());
                    if multi_group && pmask.is_empty() {
                        // Every preferred rack fell outside the home group:
                        // the job can only run off-preferred there.
                        spaces.push((gmask, slowed));
                    } else {
                        spaces.push((pmask, unit));
                        spaces.push((gmask, slowed));
                        if !space_masks.contains(&(g, pmask)) {
                            space_masks.push((g, pmask));
                        }
                    }
                }
                None => {
                    let unit = cache.scaled(spec.id, 1.0).unwrap_or_else(|| base.clone());
                    spaces.push((gmask, unit));
                }
            }
            gen_inputs.push(GenInput { spaces, curve });
            job_groups.push(g);
        }
        let (job_options, shard_durations) =
            options::generate_sharded(&gen_inputs, &slots, max_options, cfg.shards);
        for jo in &job_options {
            totals.options_enumerated += jo.enumerated as u64;
            totals.options_pruned += jo.pruned as u64;
        }
        let generate_elapsed = cycle_start.elapsed();

        // ---- Stage 2: compile the MILP. ----
        let compile_start = Stopwatch::start();
        let mut model = Model::new();
        let mut compiled: Vec<CompiledOption> = Vec::new();
        let mut hopeless: Vec<JobId> = Vec::new();
        for (job_idx, jo) in job_options.iter().enumerate() {
            let spec = considered[job_idx];
            let group = job_groups[job_idx];
            let (group_start, group_len) = plan.group_range(group);
            let mut vars = Vec::with_capacity(jo.options.len());
            for o in &jo.options {
                // Scale mode only: drop options whose gang cannot fit the
                // static capacity under the mask, so a group never carries
                // dead MILP variables. Gated on `multi_group` so the
                // single-group path stays bit-identical to the sequential
                // scheduler.
                if multi_group
                    && spec.tasks > mask_capacity(view.cluster, group_start, group_len, o.mask)
                {
                    totals.options_pruned += 1;
                    continue;
                }
                let var = model.add_binary(o.utility);
                compiled.push(CompiledOption {
                    job_idx,
                    var,
                    slot: o.slot,
                    mask: o.mask,
                    dist: o.dist.clone(),
                    tasks: spec.tasks as f64,
                    group,
                });
                vars.push(var);
            }
            if vars.is_empty() {
                if cfg.cancel_hopeless && spec.kind.is_slo() && jo.best_utility <= 1e-9 {
                    hopeless.push(spec.id);
                }
                continue;
            }
            // Demand: at most one option per job.
            let terms: Vec<(VarId, f64)> = vars.iter().map(|v| (*v, 1.0)).collect();
            model.add_constraint(&terms, Cmp::Le, 1.0);
            model.add_sos1(&vars);
        }
        decision.cancellations = hopeless;

        // Running jobs: conditional consumption + preemption.
        struct RunningInfo {
            id: JobId,
            nodes_by_part: Vec<u32>,
            cond: DiscreteDist,
            start: f64,
            preempt_var: Option<VarId>,
        }
        let mut running_infos: Vec<RunningInfo> = Vec::new();
        // Drop exp-inc state for attempts that are no longer running.
        let live: std::collections::HashSet<(JobId, u64)> = view
            .running
            .iter()
            .map(|r| (r.spec.id, r.start_time.to_bits()))
            .collect();
        underest.retain(|k, _| live.contains(k));

        for r in &view.running {
            let elapsed = r.elapsed(now);
            let base = cache.base(r.spec.id, || {
                estimate_dist(source, predictor, cfg.mass_points, r.spec)
            });
            // A running attempt's estimate stays pinned: Eq. 2 must keep
            // renormalising the prior the plan was built on.
            cache.pin(r.spec.id);
            // Scale by the placement actually chosen for this attempt.
            let off_pref = r.spec.preferred.as_ref().is_some_and(|pref| {
                r.allocation
                    .iter()
                    .any(|(p, n)| *n > 0 && !pref.contains(p))
            });
            let scaled = if off_pref {
                cache
                    .scaled(r.spec.id, r.spec.nonpreferred_slowdown)
                    .unwrap_or_else(|| base.clone())
            } else {
                base
            };
            let cond = if scaled.is_exhausted_at(elapsed) {
                // §4.2.1: exponential-increment under-estimate handling.
                let key = (r.spec.id, r.start_time.to_bits());
                let ue = underest.entry(key).or_insert(UnderEst {
                    increments: 0,
                    est_total_runtime: elapsed + cfg.cycle_hint,
                });
                DiscreteDist::point(exp_inc(ue, elapsed, cfg.cycle_hint))
            } else {
                scaled.condition(elapsed)
            };
            let mut nodes_by_part = vec![0u32; view.cluster.num_partitions()];
            for (p, n) in r.allocation {
                nodes_by_part[p.index()] += n;
            }
            let preempt_var = if cfg.preemption_enabled && !r.spec.kind.is_slo() {
                Some(model.add_binary(-cfg.preemption_cost * r.spec.utility_weight.max(1.0)))
            } else {
                None
            };
            running_infos.push(RunningInfo {
                id: r.spec.id,
                nodes_by_part,
                cond,
                start: r.start_time,
                preempt_var,
            });
        }

        // Capacity rows per (equivalence set, slot). The (mask, slot)
        // buckets hand each row exactly the options contained in its set
        // that have started by its slot — no full-option scan per row.
        let buckets = OptionBuckets::build(&compiled, slots.len());
        for &(g, mask) in &space_masks {
            let (group_start, group_len) = plan.group_range(g);
            let cap = mask_capacity(view.cluster, group_start, group_len, mask) as f64;
            for (si, &t) in slots.iter().enumerate() {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                buckets.for_each_contained(g, mask, si, |oi| {
                    let opt = &compiled[oi];
                    let rc = opt.dist.survival(t - slots[opt.slot]);
                    let coeff = opt.tasks * rc;
                    if coeff > 1e-6 {
                        terms.push((opt.var, coeff));
                    }
                });
                // Running usage inside this set, creditable by preemption.
                let mut used = 0.0;
                for ri in &running_infos {
                    // `mask` bits are group-local: bit i ↔ global partition
                    // group_start + i (identity on single-group clusters).
                    let nodes_in: u32 = ri.nodes_by_part[group_start..group_start + group_len]
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask.contains(*i))
                        .map(|(_, n)| *n)
                        .sum();
                    if nodes_in == 0 {
                        continue;
                    }
                    let surv = ri.cond.survival(t - ri.start);
                    let usage = nodes_in as f64 * surv;
                    if usage <= 1e-6 {
                        continue;
                    }
                    used += usage;
                    if let Some(pv) = ri.preempt_var {
                        terms.push((pv, -usage));
                    }
                }
                if !terms.is_empty() {
                    model.add_constraint(&terms, Cmp::Le, cap - used);
                }
            }
        }
        let compile_elapsed = compile_start.elapsed();
        if cfg.record_models {
            models.push(model.to_text());
        }

        // ---- Stage 3: solve (status-quo warm start is always feasible).
        // The backend is picked by tier (tier = 2 − level unless pinned by
        // `solver_tier`); tier 2 additionally routes through the persistent
        // incremental wrapper so a bit-identical consecutive cycle is
        // answered from cache. ----
        let tier = cfg.solver_tier.unwrap_or(2 - level.min(2)).min(2);
        let milp_config = SolverConfig {
            node_limit: solver_nodes,
            time_limit: Some(solver_time),
            gap_tolerance: 1e-4,
            ..SolverConfig::default()
        };
        let warm = vec![0.0; model.num_vars()];
        let solve_start = Stopwatch::start();
        let solution = if tier == 2 && cfg.incremental_solver {
            // Rebuild the persistent solver when the budgets change —
            // dropping the cycle-N−1 cache, since the reuse contract is
            // config-exact.
            let stale = !matches!(incremental, Some((c, _)) if *c == milp_config);
            if stale {
                *incremental = None;
            }
            let (_, solver) = incremental.get_or_insert_with(|| {
                (
                    milp_config.clone(),
                    IncrementalSolver::with_config(milp_config),
                )
            });
            let reuses_before = solver.stats().reuses;
            let solution = solver.solve_with_warm_start(&model, Some(&warm));
            totals.incremental_reuses += solver.stats().reuses - reuses_before;
            solution
        } else {
            let mut solver = solver_for_tier(tier, milp_config);
            solver.solve_with_warm_start(&model, Some(&warm))
        };
        let solver_elapsed = solve_start.elapsed();

        let milp_vars = model.num_vars();
        let milp_rows = model.num_constraints();
        let nodes = solution.nodes;
        totals.solver_tier = tier as u64;
        match tier {
            0 => totals.tier0_cycles += 1,
            1 => totals.tier1_cycles += 1,
            _ => totals.tier2_cycles += 1,
        }
        totals.presolve_reductions += solution.presolve.total() as u64;
        totals.milp_nodes += solution.nodes as u64;
        totals.milp_pivots += solution.lp_iterations as u64;
        totals.milp_incumbent_updates += solution.incumbent_updates as u64;
        totals.solver_timeouts += u64::from(solution.timed_out);
        // Exactly one incumbent event means the warm-start seed was never
        // improved on: the accepted plan is the status quo.
        totals.warm_start_reuses +=
            u64::from(solution.has_solution() && solution.incumbent_updates == 1);

        // ---- Stage 4: extract placements and update cache state. ----
        let extract_start = Stopwatch::start();
        if solution.has_solution() {
            let x = &solution.values;
            // Preemptions first (their capacity becomes available now).
            let mut freed: Vec<u32> = vec![0; view.cluster.num_partitions()];
            for ri in &running_infos {
                if let Some(pv) = ri.preempt_var {
                    if x[pv.index()] > 0.5 {
                        decision.preemptions.push(ri.id);
                        for (p, n) in ri.nodes_by_part.iter().enumerate() {
                            freed[p] += n;
                        }
                    }
                }
            }
            // Immediate (slot 0) placements, best utility first.
            let mut free: Vec<u32> = view.free.iter().zip(&freed).map(|(f, e)| f + e).collect();
            let mut chosen: Vec<&CompiledOption> = compiled
                .iter()
                .filter(|o| o.slot == 0 && x[o.var.index()] > 0.5)
                .collect();
            chosen.sort_by(|a, b| {
                let ua = model.objective_coeff(a.var);
                let ub = model.objective_coeff(b.var);
                ub.total_cmp(&ua)
            });
            for opt in chosen {
                let spec = considered[opt.job_idx];
                let (start, len) = plan.group_range(opt.group);
                if let Some(alloc) =
                    pack_gang(spec.tasks, opt.mask, &free[start..start + len], start)
                {
                    for (p, n) in &alloc {
                        free[p.index()] -= n;
                    }
                    decision.placements.push(Placement {
                        job: spec.id,
                        allocation: alloc,
                    });
                } // else: Hall corner — job stays pending this cycle.
            }

            if cfg.record_plans {
                let mut record = PlanRecord {
                    now,
                    preempted: decision.preemptions.clone(),
                    cancelled: decision.cancellations.clone(),
                    objective: solution.objective,
                    ..PlanRecord::default()
                };
                let placed: std::collections::HashSet<JobId> =
                    decision.placements.iter().map(|p| p.job).collect();
                for opt in &compiled {
                    if x[opt.var.index()] <= 0.5 {
                        continue;
                    }
                    let spec = considered[opt.job_idx];
                    let planned = PlannedJob {
                        job: spec.id,
                        slot: opt.slot,
                        start: slots[opt.slot],
                        expected_utility: model.objective_coeff(opt.var),
                        preferred_space: opt.mask != plan.group_mask(opt.group),
                    };
                    if opt.slot == 0 && placed.contains(&spec.id) {
                        record.started.push(planned);
                    } else {
                        record.deferred.push(planned);
                    }
                }
                plans.push(record);
            }
        }
        // Cache bookkeeping: cancelled jobs are terminal, preempted jobs
        // re-enter pending and should be re-estimated from fresh history,
        // and newly placed attempts pin their estimate.
        for id in &decision.cancellations {
            cache.invalidate(*id);
        }
        for id in &decision.preemptions {
            cache.invalidate(*id);
        }
        for p in &decision.placements {
            cache.pin(p.job);
        }
        let extract_elapsed = extract_start.elapsed();
        totals.options_placed += decision.placements.len() as u64;

        // Deterministic cycle cost: every (space, slot) pair valued by
        // Eq. 1 plus every branch-and-bound node expanded.
        let cost_units = job_options
            .iter()
            .map(|jo| jo.enumerated as u64)
            .sum::<u64>()
            + nodes as u64;
        let timing = CycleTiming {
            pending: view.pending.len(),
            considered: considered.len(),
            milp_vars,
            milp_rows,
            total: cycle_start.elapsed(),
            generate: generate_elapsed,
            compile: compile_elapsed,
            solver: solver_elapsed,
            extract: extract_elapsed,
            nodes,
            level,
            solver_tier: tier,
            cost_units,
            shards: cfg.shards.max(1),
        };
        governor.last_cost = Some((timing.cost_units, timing.total));
        if let Some(obs) = obs {
            let stats = SchedStats {
                cache: cache.stats(),
                ..*totals
            };
            obs.flush(&stats, predictor, cache, &timing, &shard_durations);
        }
        timings.push(timing);
        if let Some(cap) = cfg.max_timings {
            if timings.len() > cap {
                let excess = timings.len() - cap;
                timings.drain(..excess);
            }
        }
        decision
    }
}

/// Greedily packs a gang of `tasks` nodes into the racks of `allowed`,
/// fullest-first. `free` is the group-local free slice and `base` its global
/// partition offset (0 on single-group clusters), so mask bit `i` lines up
/// with `free[i]` and yields partition `base + i`. Returns `None` if the
/// allowed racks cannot hold the gang.
fn pack_gang(
    tasks: u32,
    allowed: RackMask,
    free: &[u32],
    base: usize,
) -> Option<Vec<(PartitionId, u32)>> {
    let mut racks: Vec<(usize, u32)> = free
        .iter()
        .enumerate()
        .filter(|(p, f)| allowed.contains(*p) && **f > 0)
        .map(|(p, f)| (p, *f))
        .collect();
    racks.sort_by_key(|r| std::cmp::Reverse(r.1));
    let mut remaining = tasks;
    let mut alloc = Vec::new();
    for (p, f) in racks {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(f);
        alloc.push((PartitionId(base + p), take));
        remaining -= take;
    }
    (remaining == 0).then_some(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_cluster::{ClusterSpec, Engine, EngineConfig, JobKind};

    fn scheduler(source: EstimateSource) -> ThreeSigmaScheduler {
        ThreeSigmaScheduler::new(SchedConfig::default(), source, PredictorConfig::default())
    }

    fn engine(racks: usize, per_rack: u32) -> Engine {
        Engine::new(
            ClusterSpec::uniform(racks, per_rack),
            EngineConfig {
                cycle_interval: 2.0,
                drain: Some(4.0 * 3600.0),
                seed: 1,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn oracle_scheduler_completes_simple_jobs() {
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::BestEffort),
            JobSpec::new(2, 0.0, 2, 100.0, JobKind::BestEffort),
        ];
        let m = engine(1, 4).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
        // Cluster fits both: they run concurrently.
        let f1 = m.outcomes[0].finish_time.unwrap();
        let f2 = m.outcomes[1].finish_time.unwrap();
        assert!((f1 - f2).abs() < 5.0);
    }

    #[test]
    fn meets_deadlines_it_can_meet() {
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![
            JobSpec::new(1, 0.0, 4, 100.0, JobKind::Slo { deadline: 400.0 }),
            JobSpec::new(2, 0.0, 4, 100.0, JobKind::Slo { deadline: 400.0 }),
        ];
        // One job at a time: both can still finish by t=400.
        let m = engine(1, 4).run(&jobs, &mut s).unwrap();
        assert_eq!(m.slo_miss_pct(), 0.0, "{:?}", m.outcomes);
    }

    #[test]
    fn worked_example_scenario_one_prioritises_the_slo_job() {
        // §2.3 / Fig. 5 scenario 1: single node, SLO deadline 15 min, both
        // runtimes ~ U(0, 10) min. The distribution scheduler must run the
        // SLO job first.
        let dist = RuntimeDistribution::Uniform(threesigma_histogram::Uniform::new(0.0, 600.0));
        let mut map = HashMap::new();
        map.insert(JobId(1), dist.clone());
        map.insert(JobId(2), dist);
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                slot_width: 150.0,
                plan_slots: 8,
                ..SchedConfig::default()
            },
            EstimateSource::Injected(Arc::new(map)),
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 300.0, JobKind::Slo { deadline: 900.0 }).with_weight(10.0),
            JobSpec::new(2, 0.0, 1, 300.0, JobKind::BestEffort),
        ];
        let m = engine(1, 1).run(&jobs, &mut s).unwrap();
        let slo_start = m.outcomes[0].start_time.unwrap();
        let be_start = m.outcomes[1].start_time.unwrap();
        assert!(
            slo_start < be_start,
            "SLO first: slo={slo_start} be={be_start}"
        );
        assert_eq!(m.slo_miss_pct(), 0.0);
    }

    #[test]
    fn worked_example_scenario_two_lets_the_be_job_go_first() {
        // Fig. 5 scenario 2: runtimes ~ U(2.5, 7.5) min; the SLO job is safe
        // even if both hit worst case, so the BE job should start first.
        let dist = RuntimeDistribution::Uniform(threesigma_histogram::Uniform::new(150.0, 450.0));
        let mut map = HashMap::new();
        map.insert(JobId(1), dist.clone());
        map.insert(JobId(2), dist);
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                slot_width: 150.0,
                plan_slots: 8,
                ..SchedConfig::default()
            },
            EstimateSource::Injected(Arc::new(map)),
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 300.0, JobKind::Slo { deadline: 900.0 }).with_weight(10.0),
            JobSpec::new(2, 0.0, 1, 300.0, JobKind::BestEffort),
        ];
        let m = engine(1, 1).run(&jobs, &mut s).unwrap();
        let slo = &m.outcomes[0];
        let be = &m.outcomes[1];
        assert!(
            be.start_time.unwrap() < slo.start_time.unwrap(),
            "BE first: be={:?} slo={:?}",
            be.start_time,
            slo.start_time
        );
        assert_eq!(m.slo_miss_pct(), 0.0);
    }

    #[test]
    fn prefers_preferred_racks() {
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::Slo { deadline: 1000.0 })
                .with_preference(vec![PartitionId(1)], 1.5)
                .with_weight(10.0),
        ];
        let m = engine(2, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.outcomes[0].on_preferred, Some(true));
        assert_eq!(m.outcomes[0].measured_runtime, Some(100.0));
    }

    #[test]
    fn sixty_five_rack_cluster_schedules_on_high_racks() {
        // Regression: the seed's u64 masks wrapped at 64 partitions
        // (`1u64 << 64` is a masked shift in release builds, so rack 64
        // aliased rack 0). A job preferring rack 64 must run there,
        // unscaled, on a 65-rack cluster.
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::Slo { deadline: 1000.0 })
                .with_preference(vec![PartitionId(64)], 1.5)
                .with_weight(10.0),
            JobSpec::new(2, 0.0, 4, 100.0, JobKind::BestEffort),
        ];
        let m = engine(65, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.outcomes[0].on_preferred, Some(true));
        assert_eq!(m.outcomes[0].measured_runtime, Some(100.0));
        assert_eq!(m.completion_rate(), 1.0);
    }

    #[test]
    fn overestimated_job_is_rescued_by_adaptive_oe() {
        // History says ~2000 s, the job actually runs 100 s, deadline in
        // 400 s. Step utility would be ~0 (cancelled); adaptive OE keeps it
        // alive and it completes in time.
        let dist = RuntimeDistribution::from_samples(&[1900.0, 2000.0, 2100.0], 16).unwrap();
        let mut map = HashMap::new();
        map.insert(JobId(1), dist);
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig::default(),
            EstimateSource::Injected(Arc::new(map)),
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::Slo { deadline: 400.0 }).with_weight(10.0),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.slo_miss_pct(), 0.0, "{:?}", m.outcomes[0]);
    }

    #[test]
    fn overestimated_job_is_cancelled_without_oe() {
        let dist = RuntimeDistribution::from_samples(&[1900.0, 2000.0, 2100.0], 16).unwrap();
        let mut map = HashMap::new();
        map.insert(JobId(1), dist);
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                oe_mode: OverestimateMode::Off,
                ..SchedConfig::default()
            },
            EstimateSource::Injected(Arc::new(map)),
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::Slo { deadline: 400.0 }).with_weight(10.0),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.slo_miss_pct(), 100.0);
        assert_eq!(m.count(threesigma_cluster::JobState::Canceled), 1);
    }

    #[test]
    fn underestimated_job_does_not_wedge_the_schedule() {
        // History says 50 s but the job runs 500 s; a second job queued
        // behind it must still complete (exp-inc handling keeps updating
        // the expected finish).
        let dist = RuntimeDistribution::from_samples(&[45.0, 50.0, 55.0], 16).unwrap();
        let mut map = HashMap::new();
        map.insert(JobId(1), dist);
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig::default(),
            EstimateSource::Injected(Arc::new(map)),
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 500.0, JobKind::BestEffort),
            JobSpec::new(2, 10.0, 2, 50.0, JobKind::BestEffort),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0, "{:?}", m.outcomes);
    }

    #[test]
    fn pending_job_is_reestimated_after_history_sharpens() {
        // Stale-estimate regression: the seed froze a job's distribution at
        // submission. Here history says ~2000 s; job 1 (same attributes)
        // actually runs 60 s while job 2 waits behind it with a 400 s
        // deadline. Frozen at submission, job 2's step utility is zero at
        // every slot forever — it would never be placed. Re-estimating
        // pending jobs once the history epoch moves lets job 1's completion
        // sharpen job 2's distribution, so it is placed and meets its
        // deadline.
        let attrs = || {
            threesigma_cluster::Attributes::new()
                .with("user", "u")
                .with("job_name", "j")
        };
        let history: Vec<JobSpec> = (0..3)
            .map(|i| {
                JobSpec::new(100 + i, 0.0, 1, 2000.0, JobKind::BestEffort).with_attributes(attrs())
            })
            .collect();
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                oe_mode: OverestimateMode::Off,
                cancel_hopeless: false,
                ..SchedConfig::default()
            },
            EstimateSource::Predicted,
            PredictorConfig::default(),
        );
        s.pretrain(&history);
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 60.0, JobKind::BestEffort).with_attributes(attrs()),
            JobSpec::new(2, 5.0, 1, 60.0, JobKind::Slo { deadline: 400.0 })
                .with_weight(10.0)
                .with_attributes(attrs()),
        ];
        let m = engine(1, 1).run(&jobs, &mut s).unwrap();
        assert_eq!(m.slo_miss_pct(), 0.0, "{:?}", m.outcomes);
        let finish1 = m.outcomes[0].finish_time.unwrap();
        let start2 = m.outcomes[1].start_time.unwrap();
        assert!(
            start2 >= finish1,
            "job 2 placed only after the completion at {finish1} sharpened its estimate \
             (started {start2})"
        );
    }

    #[test]
    fn preempts_be_for_urgent_slo() {
        // BE job occupies the whole cluster for a long time; an SLO job
        // arrives with a tight deadline — only preemption can meet it.
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 5000.0, JobKind::BestEffort),
            JobSpec::new(2, 10.0, 2, 100.0, JobKind::Slo { deadline: 400.0 }).with_weight(10.0),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.slo_miss_pct(), 0.0, "{:?}", m.outcomes);
        assert!(m.outcomes[0].preemptions >= 1, "BE was preempted");
    }

    #[test]
    fn timings_are_recorded() {
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![JobSpec::new(1, 0.0, 1, 50.0, JobKind::BestEffort)];
        let _ = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert!(!s.timings().is_empty());
        let t = s.timings()[0];
        assert!(t.total >= t.solver);
        // The stage breakdown covers disjoint intervals of the cycle.
        let staged = t.generate + t.compile + t.solver + t.extract;
        assert!(
            t.total >= staged,
            "total {:?} < sum of stages {:?}",
            t.total,
            staged
        );
        assert!(t.generate > Duration::ZERO);
        assert!(t.compile > Duration::ZERO);
    }

    #[test]
    fn plan_records_show_deferrals() {
        // Fig. 5 scenario 2 (BE first, SLO deferred): the first cycle's
        // plan must record the SLO job as deliberately deferred.
        let dist = RuntimeDistribution::Uniform(threesigma_histogram::Uniform::new(150.0, 450.0));
        let mut map = HashMap::new();
        map.insert(JobId(1), dist.clone());
        map.insert(JobId(2), dist);
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                slot_width: 150.0,
                plan_slots: 8,
                record_plans: true,
                ..SchedConfig::default()
            },
            EstimateSource::Injected(Arc::new(map)),
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 300.0, JobKind::Slo { deadline: 900.0 }).with_weight(10.0),
            JobSpec::new(2, 0.0, 1, 300.0, JobKind::BestEffort),
        ];
        let _ = engine(1, 1).run(&jobs, &mut s).unwrap();
        let first = &s.plans()[0];
        assert_eq!(first.started.len(), 1);
        assert_eq!(first.started[0].job, JobId(2), "BE starts now");
        assert!(
            first
                .deferred
                .iter()
                .any(|p| p.job == JobId(1) && p.slot > 0),
            "SLO deferred: {first:?}"
        );
        assert!(first.objective > 0.0);
        // Recording off by default.
        let plain = scheduler(EstimateSource::OraclePoint);
        assert!(plain.plans().is_empty());
    }

    #[test]
    fn slot_grid_is_stable_across_cycles() {
        let a = slot_times(42.0, 150.0, 5);
        assert_eq!(a[0], 42.0);
        assert_eq!(&a[1..], &[150.0, 300.0, 450.0, 600.0]);
        // Two cycles later, the deferred slots have not drifted.
        let b = slot_times(44.0, 150.0, 5);
        assert_eq!(&b[1..], &a[1..]);
        // Slot 0 is always "now".
        let c = slot_times(0.0, 60.0, 3);
        assert_eq!(c, vec![0.0, 60.0, 120.0]);
    }

    #[test]
    fn pack_gang_fullest_first() {
        // free = [1, 4, 2]; allowed = all; gang of 5 → racks 1 then 2.
        let all = RackMask::all(3);
        let alloc = pack_gang(5, all, &[1, 4, 2], 0).unwrap();
        assert_eq!(alloc[0], (PartitionId(1), 4));
        assert_eq!(alloc[1], (PartitionId(2), 1));
        // Gang of 8 overflows: None.
        assert!(pack_gang(8, all, &[1, 4, 2], 0).is_none());
        // Mask restricts racks.
        let only0 = RackMask::of(&[PartitionId(0)]);
        let alloc0 = pack_gang(1, only0, &[1, 4, 2], 0).unwrap();
        assert_eq!(alloc0, vec![(PartitionId(0), 1)]);
        assert!(pack_gang(2, only0, &[1, 4, 2], 0).is_none());
        // A non-zero base maps group-local racks back to global partitions.
        let g1 = pack_gang(3, all, &[1, 4, 2], 130).unwrap();
        assert_eq!(g1[0], (PartitionId(131), 3));
    }

    fn bimodal_history() -> Vec<JobSpec> {
        (0..30)
            .map(|i| {
                let rt = if i % 2 == 0 { 50.0 } else { 150.0 };
                JobSpec::new(1000 + i, i as f64, 1, rt, JobKind::BestEffort)
                    .with_attributes(threesigma_cluster::Attributes::new().with("user", "pat"))
            })
            .collect()
    }

    fn pat_probe() -> JobSpec {
        JobSpec::new(1, 0.0, 1, 100.0, JobKind::BestEffort)
            .with_attributes(threesigma_cluster::Attributes::new().with("user", "pat"))
    }

    #[test]
    fn padded_source_is_more_conservative_than_point() {
        // Same history; the padded estimate must exceed the raw point.
        let history = bimodal_history();
        let probe = pat_probe();
        let mut plain = scheduler(EstimateSource::PredictedPoint);
        plain.pretrain(&history);
        let mut padded = scheduler(EstimateSource::PredictedPadded { sigmas: 1.0 });
        padded.pretrain(&history);
        let p_plain = plain.estimate(&probe).mean();
        let p_padded = padded.estimate(&probe).mean();
        assert!(
            p_padded > p_plain + 10.0,
            "padded {p_padded} vs plain {p_plain}"
        );
    }

    #[test]
    fn padded_source_pads_around_its_own_distribution_mean() {
        // The padding base and the variance must come from the same
        // estimator: at 0σ the padded estimate degenerates to the
        // distribution's mean, and it grows linearly in σ around that base.
        let history = bimodal_history();
        let probe = pat_probe();
        let est = |sigmas: f64| {
            let mut s = scheduler(EstimateSource::PredictedPadded { sigmas });
            s.pretrain(&history);
            s.estimate(&probe).mean()
        };
        let e0 = est(0.0);
        let e1 = est(1.0);
        let e2 = est(2.0);
        let mut dist_sched = scheduler(EstimateSource::Predicted);
        dist_sched.pretrain(&history);
        let dist_mean = dist_sched.estimate(&probe).mean();
        assert!(
            (e0 - dist_mean).abs() < 1e-9,
            "0σ padding is the distribution mean: {e0} vs {dist_mean}"
        );
        assert!(e1 > e0, "padding is positive: {e1} vs {e0}");
        assert!(
            ((e2 - e1) - (e1 - e0)).abs() < 1e-6,
            "linear in σ around one base: {e0} {e1} {e2}"
        );
    }

    #[test]
    fn preemption_disabled_is_respected() {
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                preemption_enabled: false,
                ..SchedConfig::default()
            },
            EstimateSource::OraclePoint,
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 5000.0, JobKind::BestEffort),
            JobSpec::new(2, 10.0, 2, 100.0, JobKind::Slo { deadline: 400.0 }).with_weight(10.0),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.preemptions, 0);
        assert_eq!(
            m.slo_miss_pct(),
            100.0,
            "without preemption the SLO job is stuck"
        );
    }

    #[test]
    fn be_jobs_are_never_cancelled() {
        // Even a hopeless-looking BE job keeps its utility floor.
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 400.0, JobKind::BestEffort),
            JobSpec::new(2, 0.0, 2, 400.0, JobKind::BestEffort),
            JobSpec::new(3, 0.0, 2, 400.0, JobKind::BestEffort),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.count(threesigma_cluster::JobState::Canceled), 0);
        assert_eq!(m.completion_rate(), 1.0);
    }

    #[test]
    fn exp_inc_saturates_past_sixty_three_doublings() {
        // Drive the doubling count far past 63: the 2^t factor must
        // saturate instead of overflowing to inf (which produced a
        // `point(inf)` distribution and NaN survival terms downstream).
        let mut ue = UnderEst {
            increments: 0,
            est_total_runtime: 0.0,
        };
        // hint so small relative to elapsed's float granularity that even
        // 2^63 · hint is absorbed — the doubling count must run all the
        // way to the cap and still make finite forward progress.
        let est = exp_inc(&mut ue, 1e30, 1e-6);
        assert!(ue.increments >= 64, "t = {}", ue.increments);
        assert!(est.is_finite(), "estimate must stay finite, got {est}");
        assert!(est > 1e30, "estimate must exceed elapsed, got {est}");

        // Repeated invocations with growing elapsed keep making finite
        // forward progress; the increment counter saturates, never wraps.
        let mut elapsed = est;
        for _ in 0..10 {
            let next = exp_inc(&mut ue, elapsed, 1e-6);
            assert!(next.is_finite() && next > elapsed);
            elapsed = next;
        }

        // The pre-saturation regime still doubles exactly as §4.2.1 asks.
        let mut small = UnderEst {
            increments: 0,
            est_total_runtime: 0.0,
        };
        let est = exp_inc(&mut small, 100.0, 10.0);
        assert_eq!(small.increments, 1);
        assert_eq!(est, 100.0 + 2.0 * 10.0);
        let est = exp_inc(&mut small, 130.0, 10.0);
        assert_eq!(small.increments, 2);
        assert_eq!(est, 130.0 + 4.0 * 10.0);
    }

    #[test]
    fn underestimated_job_survives_saturated_doubling_in_simulation() {
        // End-to-end: a grossly under-estimated job (history ~1 s, actual
        // 5000 s) with a tiny cycle hint accumulates many exp-inc steps;
        // the run must complete rather than wedge or panic on overflow.
        let dist = RuntimeDistribution::from_samples(&[0.9, 1.0, 1.1], 16).unwrap();
        let mut map = HashMap::new();
        map.insert(JobId(1), dist);
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                cycle_hint: 1e-3,
                ..SchedConfig::default()
            },
            EstimateSource::Injected(Arc::new(map)),
            PredictorConfig::default(),
        );
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 5000.0, JobKind::BestEffort),
            JobSpec::new(2, 10.0, 2, 50.0, JobKind::BestEffort),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0, "{:?}", m.outcomes);
    }

    #[test]
    fn nan_deadline_does_not_panic_the_urgency_sort() {
        // Regression: the urgency sort used `partial_cmp().expect(...)`,
        // so a single NaN deadline killed the engine. With `total_cmp` the
        // malformed job just sorts last and the healthy jobs schedule.
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 50.0, JobKind::Slo { deadline: f64::NAN }),
            JobSpec::new(2, 0.0, 1, 50.0, JobKind::Slo { deadline: 400.0 }).with_weight(10.0),
            JobSpec::new(3, 0.0, 1, 50.0, JobKind::BestEffort),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.outcomes[1].state, threesigma_cluster::JobState::Completed);
        assert_eq!(m.outcomes[2].state, threesigma_cluster::JobState::Completed);
    }

    #[test]
    fn stats_and_recorder_stay_consistent() {
        let recorder = Recorder::enabled();
        let mut s = scheduler(EstimateSource::OraclePoint).with_recorder(&recorder);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::BestEffort),
            JobSpec::new(2, 0.0, 2, 100.0, JobKind::Slo { deadline: 600.0 }).with_weight(5.0),
        ];
        let m = engine(1, 4).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0);

        let stats = s.stats();
        assert!(stats.cycles > 0);
        assert!(stats.options_enumerated >= stats.options_pruned + stats.options_placed);
        assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
        assert_eq!(stats.options_placed, 2);

        // The recorder mirrors the deterministic totals exactly.
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("sched_cycles_total"), Some(stats.cycles));
        assert_eq!(
            snap.counter("sched_options_enumerated_total"),
            Some(stats.options_enumerated)
        );
        assert_eq!(
            snap.counter("sched_cache_lookups_total"),
            Some(stats.cache.lookups)
        );
        assert_eq!(
            snap.counter("sched_milp_nodes_total"),
            Some(stats.milp_nodes)
        );
    }

    #[test]
    fn expert_switches_are_counted_between_predictions() {
        // Jobs alternate between carrying only a `user` attribute and only
        // a `job_name` attribute, so consecutive predictions must come from
        // different *features* — a guaranteed expert switch.
        let mk = |key: &str, val: &str, rt: f64, id: u64, t: f64| {
            JobSpec::new(id, t, 1, rt, JobKind::BestEffort)
                .with_attributes(threesigma_cluster::Attributes::new().with(key, val))
        };
        let mut history = Vec::new();
        for i in 0..20 {
            history.push(mk("user", "alice", 100.0, 1000 + i, i as f64));
            history.push(mk("job_name", "etl", 200.0, 2000 + i, i as f64));
        }
        let mut s = scheduler(EstimateSource::Predicted);
        s.pretrain(&history);
        let jobs = vec![
            mk("user", "alice", 100.0, 1, 0.0),
            mk("job_name", "etl", 200.0, 2, 1.0),
            mk("user", "alice", 100.0, 3, 2.0),
        ];
        let m = engine(1, 4).run(&jobs, &mut s).unwrap();
        assert!(m.completion_rate() > 0.0);
        assert!(s.stats().expert_switches >= 2, "stats: {:?}", s.stats());
    }

    #[test]
    fn predicted_source_uses_pretraining() {
        let mut s = scheduler(EstimateSource::Predicted);
        let history: Vec<JobSpec> = (0..20)
            .map(|i| {
                JobSpec::new(1000 + i, i as f64, 1, 100.0, JobKind::BestEffort).with_attributes(
                    threesigma_cluster::Attributes::new()
                        .with("user", "alice")
                        .with("job_name", "etl"),
                )
            })
            .collect();
        s.pretrain(&history);
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::Slo { deadline: 250.0 })
                .with_weight(10.0)
                .with_attributes(
                    threesigma_cluster::Attributes::new()
                        .with("user", "alice")
                        .with("job_name", "etl"),
                ),
        ];
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.slo_miss_pct(), 0.0);
    }

    #[test]
    fn unlimited_budget_never_engages_the_governor() {
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs: Vec<JobSpec> = (0..30)
            .map(|i| JobSpec::new(i + 1, i as f64, 1, 50.0, JobKind::BestEffort))
            .collect();
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
        let stats = s.stats();
        assert_eq!(stats.budget_overruns, 0);
        assert_eq!(stats.governor_step_ups, 0);
        assert_eq!(stats.degradation_level, 0);
        assert!(s.timings().iter().all(|t| t.level == 0));
    }

    #[test]
    fn governor_degrades_under_overload_and_recovers() {
        // 2 nodes, 24 pending single-task jobs at t=0: level-0 cycles value
        // 24 jobs × 8 slots = 192 options (> 100), so the governor must
        // step up; level-1 caps derived from budget 100 keep the cost
        // under it, so after three on-budget cycles it steps back down.
        let budget = 100u64;
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                cycle_budget: CycleBudget::WorkUnits(budget),
                ..SchedConfig::default()
            },
            EstimateSource::OraclePoint,
            PredictorConfig::default(),
        );
        let jobs: Vec<JobSpec> = (0..24)
            .map(|i| JobSpec::new(i + 1, 0.0, 1, 60.0, JobKind::BestEffort))
            .collect();
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0, "degraded cycles still place");
        let stats = s.stats();
        assert!(stats.budget_overruns >= 1, "stats: {stats:?}");
        assert!(stats.governor_step_ups >= 1);
        assert!(stats.governor_step_downs >= 1, "hysteresis recovery ran");
        // The queue drains long before the run ends, so the final level
        // is back at 0.
        assert_eq!(s.degradation_level(), 0);
        for (i, t) in s.timings().iter().enumerate() {
            assert!(t.level <= 2);
            if i > 0 {
                let prev = s.timings()[i - 1].level;
                assert!(
                    t.level.abs_diff(prev) <= 1,
                    "level moved {prev} → {} in one cycle",
                    t.level
                );
            }
            // The governor's contract: degraded cycles fit the budget.
            if t.level >= 1 {
                assert!(
                    t.cost_units <= budget,
                    "level-{} cycle cost {} > budget {budget}",
                    t.level,
                    t.cost_units
                );
            }
        }
    }

    #[test]
    fn level_two_places_jobs_through_tier_zero() {
        // Budget 0: every non-trivial cycle overruns, so the ladder climbs
        // to level 2, where a *minimal* plan-ahead window (one job, two
        // slots) is solved by the tier-0 greedy backend — zero search
        // nodes — and jobs still start.
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                cycle_budget: CycleBudget::WorkUnits(0),
                ..SchedConfig::default()
            },
            EstimateSource::OraclePoint,
            PredictorConfig::default(),
        );
        let jobs: Vec<JobSpec> = (0..10)
            .map(|i| JobSpec::new(i + 1, i as f64 * 3.0, 1, 40.0, JobKind::BestEffort))
            .collect();
        let m = engine(1, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0, "tier-0 fallback still places");
        let reached_two = s.timings().iter().any(|t| t.level == 2);
        assert!(reached_two, "ladder reached the emergency level");
        for t in s.timings() {
            if t.level == 2 {
                assert_eq!(t.solver_tier, 0, "level 2 maps to solver tier 0");
                assert_eq!(t.nodes, 0, "tier 0 expands no search nodes");
                assert!(t.considered <= 1, "level 2 plans a minimal window");
            }
        }
        assert!(s.stats().budget_overruns >= 2);
        let stats = s.stats();
        assert!(stats.tier0_cycles >= 1, "tier-0 cycles were counted");
        assert_eq!(s.solver_tier(), s.timings().last().unwrap().solver_tier);
    }

    #[test]
    fn solver_tier_override_pins_the_backend() {
        // `solver_tier: Some(0)` forces the greedy backend even at level 0;
        // jobs still complete and no branch-and-bound nodes are expanded.
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                solver_tier: Some(0),
                ..SchedConfig::default()
            },
            EstimateSource::OraclePoint,
            PredictorConfig::default(),
        );
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| JobSpec::new(i + 1, i as f64 * 2.0, 1, 30.0, JobKind::BestEffort))
            .collect();
        let m = engine(1, 4).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
        let stats = s.stats();
        assert_eq!(stats.tier1_cycles + stats.tier2_cycles, 0);
        assert!(stats.tier0_cycles >= 1);
        for t in s.timings() {
            assert_eq!(t.solver_tier, 0);
            assert_eq!(t.nodes, 0);
        }
    }

    #[test]
    fn incremental_reuses_stay_within_cycle_count() {
        // Identical consecutive cycles (no pending churn) may be answered
        // from the incremental cache; the counter can never exceed cycles.
        let mut s = scheduler(EstimateSource::OraclePoint);
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(i + 1, 0.0, 1, 50.0, JobKind::BestEffort))
            .collect();
        engine(1, 4).run(&jobs, &mut s).unwrap();
        let stats = s.stats();
        assert!(stats.incremental_reuses <= stats.cycles);
        assert_eq!(stats.tier2_cycles, stats.cycles);
    }

    #[test]
    fn killed_jobs_are_censored_not_observed() {
        let mut s = scheduler(EstimateSource::Predicted);
        let history: Vec<JobSpec> = (0..20)
            .map(|i| {
                JobSpec::new(1000 + i, i as f64, 1, 100.0, JobKind::BestEffort)
                    .with_attributes(threesigma_cluster::Attributes::new().with("user", "alice"))
            })
            .collect();
        s.pretrain(&history);
        let obs_before = s.predictor.quick_stats().observations;
        let spec = JobSpec::new(1, 0.0, 1, 100.0, JobKind::BestEffort)
            .with_attributes(threesigma_cluster::Attributes::new().with("user", "alice"));
        s.on_job_submitted(&spec, 0.0);

        // The engine reports a kill 30 s into the attempt.
        s.on_job_killed(&spec, 30.0, true, 30.0);

        let qs = s.predictor.quick_stats();
        assert_eq!(qs.censored, 1, "kill recorded as a censored lower bound");
        assert_eq!(
            qs.observations, obs_before,
            "the truncated runtime never reached the histograms"
        );
        // The dead attempt's cached estimate was dropped, so the retry
        // re-estimates from (unchanged) history.
        let d = s.cache.base(spec.id, || DiscreteDist::point(999.0));
        assert!(
            (d.mean() - 999.0).abs() < 1e-9,
            "cache entry was invalidated"
        );
    }

    #[test]
    fn engine_kills_reach_the_scheduler_as_censored_observations() {
        use threesigma_cluster::FaultEvent;
        let mut s = scheduler(EstimateSource::Predicted);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 200.0, JobKind::BestEffort),
            JobSpec::new(2, 5.0, 1, 50.0, JobKind::BestEffort),
        ];
        let eng = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                cycle_interval: 2.0,
                drain: Some(4.0 * 3600.0),
                seed: 1,
                faults: vec![FaultEvent::TaskKill {
                    at: 20.0,
                    job: JobId(1),
                }],
                ..EngineConfig::default()
            },
        );
        let m = eng.run(&jobs, &mut s).unwrap();
        assert_eq!(m.kills, 1);
        assert_eq!(s.predictor.quick_stats().censored, 1);
        // The killed job retried and completed; its *completed* runtime is
        // a legitimate observation, the truncated one is not.
        assert_eq!(m.completion_rate(), 1.0);
    }

    #[test]
    fn scaled_estimate_miss_degrades_to_the_base_distribution() {
        // Satellite: the `EstimateCache::scaled → None` fallback path. A
        // cache with no entry for the job returns `None` from `scaled`;
        // the cycle must fall back to the unscaled base instead of
        // panicking — observable as a completed run even when the cache
        // is invalidated between submission and the first cycle.
        let mut s = scheduler(EstimateSource::OraclePoint);
        let spec = JobSpec::new(1, 0.0, 1, 50.0, JobKind::BestEffort)
            .with_preference(vec![PartitionId(0)], 1.5);
        s.on_job_submitted(&spec, 0.0);
        // Simulate bookkeeping slippage: drop the entry `scaled` relies on.
        s.cache.invalidate(spec.id);
        assert!(
            s.cache.scaled(spec.id, 1.5).is_none(),
            "precondition: the scaled lookup misses"
        );
        let m = engine(2, 2).run(&[spec], &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
    }

    fn sharded_scheduler(shards: usize) -> ThreeSigmaScheduler {
        ThreeSigmaScheduler::new(
            SchedConfig {
                shards,
                ..SchedConfig::default()
            },
            EstimateSource::OraclePoint,
            PredictorConfig::default(),
        )
    }

    #[test]
    fn scale_mode_schedules_beyond_128_racks_on_preferred() {
        // Satellite (scale ceiling): a 130-rack cluster needs two mask
        // groups. With two shards the scheduler must accept it, home the
        // job preferring rack 129 into the second group, remap the mask to
        // group-local bits, and still place it on its preferred rack.
        let mut s = sharded_scheduler(2);
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::Slo { deadline: 1000.0 })
                .with_preference(vec![PartitionId(129)], 1.5)
                .with_weight(10.0),
            JobSpec::new(2, 0.0, 4, 100.0, JobKind::BestEffort),
        ];
        let m = engine(130, 2).run(&jobs, &mut s).unwrap();
        assert_eq!(m.outcomes[0].on_preferred, Some(true));
        assert_eq!(m.outcomes[0].measured_runtime, Some(100.0));
        assert_eq!(m.completion_rate(), 1.0);
    }

    #[test]
    fn rack_mask_boundary_127_128_accepted_129_rejected() {
        // Satellite (scale ceiling): at the default single shard the
        // scheduler represents at most RackMask::MAX_RACKS racks, and the
        // engine must reject a larger spec with a typed error at ingest —
        // not wrap masks silently.
        for racks in [127, 128] {
            let mut s = sharded_scheduler(1);
            let jobs = vec![JobSpec::new(1, 0.0, 1, 50.0, JobKind::BestEffort)];
            let m = engine(racks, 1).run(&jobs, &mut s).unwrap();
            assert_eq!(m.completion_rate(), 1.0, "{racks} racks must work");
        }
        let mut s = sharded_scheduler(1);
        let jobs = vec![JobSpec::new(1, 0.0, 1, 50.0, JobKind::BestEffort)];
        match engine(129, 1).run(&jobs, &mut s) {
            Err(threesigma_cluster::SimError::ClusterTooLarge { partitions, max }) => {
                assert_eq!((partitions, max), (129, 128));
            }
            other => panic!("expected ClusterTooLarge, got {other:?}"),
        }
        // Raising the shard count widens the representable cluster.
        let mut s = sharded_scheduler(2);
        let jobs = vec![JobSpec::new(1, 0.0, 1, 50.0, JobKind::BestEffort)];
        let m = engine(129, 1).run(&jobs, &mut s).unwrap();
        assert_eq!(m.completion_rate(), 1.0);
    }

    #[test]
    fn completion_in_one_shard_group_invalidates_estimates_in_the_other() {
        // Satellite (cache epochs under sharding): the estimate cache is
        // one global structure — a completion handled while group 0's jobs
        // are planned must stale-out estimates consulted for group 1's
        // jobs in the same cycle. This test fails if epoch bumps or
        // invalidation ever become shard-local.
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                shards: 2,
                ..SchedConfig::default()
            },
            EstimateSource::Predicted,
            PredictorConfig::default(),
        );
        let attrs = threesigma_cluster::Attributes::new().with("user", "pat");
        let a = JobSpec::new(1, 0.0, 1, 100.0, JobKind::BestEffort)
            .with_preference(vec![PartitionId(0)], 1.5)
            .with_attributes(attrs.clone());
        let b = JobSpec::new(2, 0.0, 1, 100.0, JobKind::BestEffort)
            .with_preference(vec![PartitionId(129)], 1.5)
            .with_attributes(attrs);
        let plan = ShardPlan::new(130, 2);
        assert_ne!(
            plan.home_group(&a),
            plan.home_group(&b),
            "precondition: the two jobs live in different mask groups"
        );
        s.on_job_submitted(&a, 0.0);
        s.on_job_submitted(&b, 0.0);
        // b's estimate is cached: the probe closure must NOT run.
        let before = s.cache.base(b.id, || DiscreteDist::point(999.0));
        assert!(
            (before.mean() - 999.0).abs() > 1e-9,
            "precondition: b's estimate is cached"
        );
        // a completes — the predictor learned, so every pending estimate
        // is stale, including b's in the other group.
        let outcome = threesigma_cluster::JobOutcome {
            id: a.id,
            kind: a.kind,
            submit_time: a.submit_time,
            tasks: a.tasks,
            state: threesigma_cluster::JobState::Completed,
            start_time: Some(0.0),
            finish_time: Some(42.0),
            measured_runtime: Some(42.0),
            preemptions: 0,
            kills: 0,
            on_preferred: Some(true),
        };
        s.on_job_completed(&a, &outcome, 42.0);
        let after = s.cache.base(b.id, || DiscreteDist::point(999.0));
        assert!(
            (after.mean() - 999.0).abs() < 1e-9,
            "b's estimate must be re-derived after the cross-group completion"
        );
    }

    fn completed(spec: &JobSpec, runtime: f64) -> threesigma_cluster::JobOutcome {
        threesigma_cluster::JobOutcome {
            id: spec.id,
            kind: spec.kind,
            submit_time: spec.submit_time,
            tasks: spec.tasks,
            state: threesigma_cluster::JobState::Completed,
            start_time: Some(spec.submit_time),
            finish_time: Some(spec.submit_time + runtime),
            measured_runtime: Some(runtime),
            preemptions: 0,
            kills: 0,
            on_preferred: Some(true),
        }
    }

    #[test]
    fn capped_cache_spares_pending_jobs_and_never_resurrects_evicted_estimates() {
        // Satellite (serve-mode cache bounds), at the scheduler level: a
        // capped cache must (a) keep every entry estimated in the current
        // epoch — those belong to still-pending jobs the in-flight cycle
        // consults — and (b) after an eviction plus further epoch bumps,
        // re-derive the evicted job's estimate from *current* history, never
        // replay the evicted distribution.
        let attrs = threesigma_cluster::Attributes::new().with("user", "u");
        let mut s = ThreeSigmaScheduler::new(
            SchedConfig {
                cache_capacity: Some(4),
                ..SchedConfig::default()
            },
            EstimateSource::Predicted,
            PredictorConfig::default(),
        );
        let spec = |id: u64| {
            JobSpec::new(id, 0.0, 1, 100.0, JobKind::BestEffort).with_attributes(attrs.clone())
        };
        let jobs: Vec<JobSpec> = (1..=12).map(spec).collect();
        for j in &jobs {
            s.on_job_submitted(j, 0.0);
        }
        assert_eq!(s.cache.len(), 12, "current-epoch entries all survive");
        assert_eq!(s.stats().cache.evictions, 0);
        // Job 1 completes: the epoch moves, the backlog goes stale, and the
        // next insert evicts down toward the cap (smallest id first).
        s.on_job_completed(&jobs[0], &completed(&jobs[0], 42.0), 42.0);
        s.on_job_submitted(&spec(13), 42.0);
        assert_eq!(s.cache.len(), 4, "stale backlog evicted down to the cap");
        assert_eq!(s.stats().cache.evictions, 8);
        // Another completion bumps the epoch past the eviction. Touching an
        // evicted job must now run the estimator afresh — the pre-eviction
        // distribution is gone for good.
        s.on_job_completed(&jobs[9], &completed(&jobs[9], 42.0), 84.0);
        let d = s.cache.base(JobId(2), || DiscreteDist::point(777.0));
        assert!(
            (d.mean() - 777.0).abs() < 1e-9,
            "evicted entry re-estimates as a fresh miss, got mean {}",
            d.mean()
        );
    }

    #[test]
    fn serve_snapshot_restore_is_byte_stable_and_preserves_predictions() {
        // A restored scheduler must serialize back to the identical bytes
        // and predict identically — the scheduler-side half of the serve
        // restart-equivalence contract.
        let attrs = || {
            threesigma_cluster::Attributes::new()
                .with("user", "u")
                .with("job_name", "j")
        };
        let config = SchedConfig {
            cache_capacity: Some(64),
            max_timings: Some(16),
            ..SchedConfig::default()
        };
        let mut s = ThreeSigmaScheduler::new(
            config.clone(),
            EstimateSource::Predicted,
            PredictorConfig::default(),
        );
        let history: Vec<JobSpec> = (0..5)
            .map(|i| {
                JobSpec::new(
                    100 + i,
                    0.0,
                    1,
                    200.0 + 10.0 * i as f64,
                    JobKind::BestEffort,
                )
                .with_attributes(attrs())
            })
            .collect();
        s.pretrain(&history);
        let probe = JobSpec::new(1, 0.0, 1, 100.0, JobKind::BestEffort).with_attributes(attrs());
        s.on_job_submitted(&probe, 0.0);
        s.on_job_completed(&probe, &completed(&probe, 150.0), 150.0);
        let snap = s.serve_snapshot();
        let bytes = serde_json::to_string(&snap).unwrap();
        assert_eq!(
            bytes,
            serde_json::to_string(&s.serve_snapshot()).unwrap(),
            "snapshotting twice yields identical bytes"
        );

        let mut r = ThreeSigmaScheduler::new(
            config,
            EstimateSource::Predicted,
            PredictorConfig::default(),
        );
        r.serve_restore(serde_json::from_str(&bytes).unwrap())
            .unwrap();
        assert_eq!(
            serde_json::to_string(&r.serve_snapshot()).unwrap(),
            bytes,
            "restore followed by snapshot reproduces the bytes"
        );
        assert_eq!(r.stats(), s.stats(), "counters carry across the restart");
        assert_eq!(r.cache.epoch(), s.cache.epoch());
        assert_eq!(r.last_expert, s.last_expert);
        let a = s
            .estimate(&JobSpec::new(2, 0.0, 1, 50.0, JobKind::BestEffort).with_attributes(attrs()));
        let b = r
            .estimate(&JobSpec::new(2, 0.0, 1, 50.0, JobKind::BestEffort).with_attributes(attrs()));
        assert_eq!(a, b, "restored predictor predicts identically");
    }
}
