//! Feasibility introspection on extracted scheduling decisions.
//!
//! The MILP's capacity rows guarantee feasibility of the *model*; this
//! module re-checks the *extracted* [`SchedulingDecision`] against the raw
//! per-partition capacity of the [`SimulationView`] it was derived from, so
//! extraction bugs (bad gang packing, double placement, phantom
//! preemptions) surface as structured violations instead of engine errors
//! deep inside a simulation. The simulation-test harness runs this check
//! on every cycle of every scheduler.

use std::collections::HashSet;

use threesigma_cluster::{JobId, SchedulingDecision, SimulationView};

/// One way a decision can be inconsistent with the view it came from.
#[derive(Debug, Clone, PartialEq)]
pub enum FeasibilityViolation {
    /// A placement references a job that is not pending.
    UnknownPlacement {
        /// Offending job.
        job: JobId,
    },
    /// The same job is placed more than once.
    DuplicatePlacement {
        /// Offending job.
        job: JobId,
    },
    /// Allocation node counts do not sum to the job's gang width.
    AllocationMismatch {
        /// Offending job.
        job: JobId,
        /// Sum of the allocation's node counts.
        allocated: u32,
        /// The job's gang width.
        tasks: u32,
    },
    /// An allocation references a partition outside the cluster.
    UnknownPartition {
        /// Offending job.
        job: JobId,
        /// Out-of-range partition index.
        partition: usize,
    },
    /// A preemption references a job that is not running.
    UnknownPreemption {
        /// Offending job.
        job: JobId,
    },
    /// The same job is preempted more than once.
    DuplicatePreemption {
        /// Offending job.
        job: JobId,
    },
    /// A cancellation references a job that is not pending.
    UnknownCancellation {
        /// Offending job.
        job: JobId,
    },
    /// A job is both cancelled and placed in the same decision.
    CancelledAndPlaced {
        /// Offending job.
        job: JobId,
    },
    /// Placements commit more nodes to a partition than free capacity plus
    /// capacity reclaimed by this decision's preemptions.
    RowOverCommit {
        /// Saturated partition index.
        partition: usize,
        /// Nodes the placements commit.
        committed: u32,
        /// Nodes actually available (free + preempted).
        available: u32,
    },
}

impl std::fmt::Display for FeasibilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownPlacement { job } => write!(f, "placement of non-pending job {job:?}"),
            Self::DuplicatePlacement { job } => write!(f, "job {job:?} placed twice"),
            Self::AllocationMismatch {
                job,
                allocated,
                tasks,
            } => write!(
                f,
                "job {job:?} allocated {allocated} nodes for a {tasks}-task gang"
            ),
            Self::UnknownPartition { job, partition } => {
                write!(f, "job {job:?} allocated on unknown partition {partition}")
            }
            Self::UnknownPreemption { job } => write!(f, "preemption of non-running job {job:?}"),
            Self::DuplicatePreemption { job } => write!(f, "job {job:?} preempted twice"),
            Self::UnknownCancellation { job } => {
                write!(f, "cancellation of non-pending job {job:?}")
            }
            Self::CancelledAndPlaced { job } => {
                write!(f, "job {job:?} both cancelled and placed")
            }
            Self::RowOverCommit {
                partition,
                committed,
                available,
            } => write!(
                f,
                "partition {partition} over-committed: {committed} placed, {available} available"
            ),
        }
    }
}

/// Static node capacity of a group-local `mask` within the mask group that
/// starts at partition `group_start` and spans `group_len` racks: mask bit
/// `i` refers to partition `group_start + i`. On a single-group cluster
/// (`group_start == 0`, `group_len == num_partitions`) this is exactly the
/// capacity of the mask's racks.
pub(crate) fn mask_capacity(
    cluster: &threesigma_cluster::ClusterSpec,
    group_start: usize,
    group_len: usize,
    mask: crate::sched::options::RackMask,
) -> u32 {
    (0..group_len)
        .filter(|i| mask.contains(*i))
        .map(|i| cluster.partition_size(threesigma_cluster::PartitionId(group_start + i)))
        .sum()
}

/// Checks an extracted `decision` against the raw capacity rows of the
/// `view` it was derived from. Returns every violation found (empty =
/// feasible). A feasible decision is exactly one the engine will apply
/// without returning a [`threesigma_cluster::SimError`].
pub fn check_decision(
    view: &SimulationView<'_>,
    decision: &SchedulingDecision,
) -> Vec<FeasibilityViolation> {
    let mut violations = Vec::new();
    let parts = view.free.len();
    let pending: HashSet<JobId> = view.pending.iter().map(|j| j.id).collect();

    // Preemptions: must reference distinct running jobs; they reclaim their
    // allocations for this cycle's placements.
    let mut available: Vec<u32> = view.free.to_vec();
    let mut preempted: HashSet<JobId> = HashSet::new();
    for id in &decision.preemptions {
        let Some(r) = view.running.iter().find(|r| r.spec.id == *id) else {
            violations.push(FeasibilityViolation::UnknownPreemption { job: *id });
            continue;
        };
        if !preempted.insert(*id) {
            violations.push(FeasibilityViolation::DuplicatePreemption { job: *id });
            continue;
        }
        for (p, n) in r.allocation {
            if p.index() < parts {
                available[p.index()] += n;
            }
        }
    }

    // Cancellations: distinct pending jobs, not simultaneously placed.
    let mut cancelled: HashSet<JobId> = HashSet::new();
    for id in &decision.cancellations {
        if !pending.contains(id) || !cancelled.insert(*id) {
            violations.push(FeasibilityViolation::UnknownCancellation { job: *id });
        }
    }

    // Placements: distinct pending jobs with exact gang-width allocations
    // on known partitions, within the reclaimed capacity rows.
    let mut placed: HashSet<JobId> = HashSet::new();
    let mut committed: Vec<u32> = vec![0; parts];
    for pl in &decision.placements {
        let Some(spec) = view.pending.iter().find(|j| j.id == pl.job) else {
            violations.push(FeasibilityViolation::UnknownPlacement { job: pl.job });
            continue;
        };
        if !placed.insert(pl.job) {
            violations.push(FeasibilityViolation::DuplicatePlacement { job: pl.job });
            continue;
        }
        if cancelled.contains(&pl.job) {
            violations.push(FeasibilityViolation::CancelledAndPlaced { job: pl.job });
        }
        let mut allocated = 0u32;
        let mut bad_partition = false;
        for (p, n) in &pl.allocation {
            allocated += n;
            if p.index() >= parts {
                violations.push(FeasibilityViolation::UnknownPartition {
                    job: pl.job,
                    partition: p.index(),
                });
                bad_partition = true;
            } else {
                committed[p.index()] += n;
            }
        }
        if allocated != spec.tasks && !bad_partition {
            violations.push(FeasibilityViolation::AllocationMismatch {
                job: pl.job,
                allocated,
                tasks: spec.tasks,
            });
        }
    }
    for p in 0..parts {
        if committed[p] > available[p] {
            violations.push(FeasibilityViolation::RowOverCommit {
                partition: p,
                committed: committed[p],
                available: available[p],
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_cluster::{
        ClusterSpec, JobKind, JobSpec, PartitionId, Placement, RunningJob, SchedulingDecision,
    };

    fn view<'a>(
        cluster: &'a ClusterSpec,
        pending: &'a [JobSpec],
        running: &'a [(JobSpec, Vec<(PartitionId, u32)>)],
        free: &'a [u32],
    ) -> SimulationView<'a> {
        SimulationView {
            cluster,
            pending: pending.iter().collect(),
            running: running
                .iter()
                .map(|(spec, alloc)| RunningJob {
                    spec,
                    start_time: 0.0,
                    allocation: alloc,
                })
                .collect(),
            free,
            now: 0.0,
        }
    }

    fn be(id: u64, tasks: u32) -> JobSpec {
        JobSpec::new(id, 0.0, tasks, 100.0, JobKind::BestEffort)
    }

    #[test]
    fn clean_decision_has_no_violations() {
        let cluster = ClusterSpec::uniform(2, 4);
        let pending = vec![be(1, 3)];
        let free = vec![4, 4];
        let v = view(&cluster, &pending, &[], &free);
        let d = SchedulingDecision {
            placements: vec![Placement {
                job: threesigma_cluster::JobId(1),
                allocation: vec![(PartitionId(0), 2), (PartitionId(1), 1)],
            }],
            ..SchedulingDecision::noop()
        };
        assert!(check_decision(&v, &d).is_empty());
    }

    #[test]
    fn overcommit_is_flagged_per_row() {
        let cluster = ClusterSpec::uniform(1, 4);
        let pending = vec![be(1, 3), be(2, 3)];
        let free = vec![4];
        let v = view(&cluster, &pending, &[], &free);
        let d = SchedulingDecision {
            placements: vec![
                Placement {
                    job: threesigma_cluster::JobId(1),
                    allocation: vec![(PartitionId(0), 3)],
                },
                Placement {
                    job: threesigma_cluster::JobId(2),
                    allocation: vec![(PartitionId(0), 3)],
                },
            ],
            ..SchedulingDecision::noop()
        };
        let violations = check_decision(&v, &d);
        assert_eq!(
            violations,
            vec![FeasibilityViolation::RowOverCommit {
                partition: 0,
                committed: 6,
                available: 4
            }]
        );
    }

    #[test]
    fn preempted_capacity_is_reclaimable() {
        let cluster = ClusterSpec::uniform(1, 4);
        let pending = vec![be(2, 4)];
        let running = vec![(be(1, 2), vec![(PartitionId(0), 2)])];
        let free = vec![2];
        let v = view(&cluster, &pending, &running, &free);
        let d = SchedulingDecision {
            placements: vec![Placement {
                job: threesigma_cluster::JobId(2),
                allocation: vec![(PartitionId(0), 4)],
            }],
            preemptions: vec![threesigma_cluster::JobId(1)],
            ..SchedulingDecision::noop()
        };
        assert!(check_decision(&v, &d).is_empty());
    }

    #[test]
    fn structural_violations_are_reported() {
        let cluster = ClusterSpec::uniform(1, 4);
        let pending = vec![be(1, 2)];
        let free = vec![4];
        let v = view(&cluster, &pending, &[], &free);
        let id = threesigma_cluster::JobId(1);
        let ghost = threesigma_cluster::JobId(99);
        let d = SchedulingDecision {
            placements: vec![
                Placement {
                    job: id,
                    allocation: vec![(PartitionId(0), 1)], // 1 ≠ 2 tasks
                },
                Placement {
                    job: id,
                    allocation: vec![(PartitionId(0), 2)],
                },
                Placement {
                    job: ghost,
                    allocation: vec![(PartitionId(0), 1)],
                },
            ],
            preemptions: vec![ghost],
            cancellations: vec![ghost],
        };
        let violations = check_decision(&v, &d);
        assert!(
            violations.contains(&FeasibilityViolation::AllocationMismatch {
                job: id,
                allocated: 1,
                tasks: 2
            })
        );
        assert!(violations.contains(&FeasibilityViolation::DuplicatePlacement { job: id }));
        assert!(violations.contains(&FeasibilityViolation::UnknownPlacement { job: ghost }));
        assert!(violations.contains(&FeasibilityViolation::UnknownPreemption { job: ghost }));
        assert!(violations.contains(&FeasibilityViolation::UnknownCancellation { job: ghost }));
    }

    #[test]
    fn unknown_partition_is_reported() {
        let cluster = ClusterSpec::uniform(1, 4);
        let pending = vec![be(1, 1)];
        let free = vec![4];
        let v = view(&cluster, &pending, &[], &free);
        let d = SchedulingDecision {
            placements: vec![Placement {
                job: threesigma_cluster::JobId(1),
                allocation: vec![(PartitionId(7), 1)],
            }],
            ..SchedulingDecision::noop()
        };
        let violations = check_decision(&v, &d);
        assert!(
            violations.contains(&FeasibilityViolation::UnknownPartition {
                job: threesigma_cluster::JobId(1),
                partition: 7
            })
        );
    }
}
