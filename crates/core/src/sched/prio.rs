//! Prio: the runtime-unaware strict-priority baseline (Table 1).
//!
//! Represents Borg-class production schedulers: SLO jobs take strict
//! priority over best-effort jobs (earliest deadline first within SLO,
//! FIFO within BE), placement is greedy preferred-racks-first, and running
//! BE jobs are preempted whenever an SLO job cannot otherwise fit. No
//! runtime information is consulted, so the scheduler can neither exploit
//! deadline slack nor avoid unnecessary preemptions.

use threesigma_cluster::{
    JobId, JobSpec, PartitionId, Placement, Scheduler, SchedulingDecision, SimulationView,
};

/// A preemptable running BE attempt: (job, start time, allocation).
type BeAttempt = (JobId, f64, Vec<(PartitionId, u32)>);

/// The priority scheduler.
#[derive(Debug, Default)]
pub struct PrioScheduler;

impl PrioScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

/// Greedy gang packing: preferred racks first (fullest-first within each
/// tier). Returns `None` if the gang does not fit in `free`.
fn pack(spec: &JobSpec, free: &[u32]) -> Option<Vec<(PartitionId, u32)>> {
    let preferred = |p: usize| -> bool {
        spec.preferred
            .as_ref()
            .is_none_or(|pref| pref.contains(&PartitionId(p)))
    };
    let mut racks: Vec<(usize, u32)> = free
        .iter()
        .enumerate()
        .filter(|(_, f)| **f > 0)
        .map(|(p, f)| (p, *f))
        .collect();
    racks.sort_by(|a, b| preferred(b.0).cmp(&preferred(a.0)).then(b.1.cmp(&a.1)));
    let mut remaining = spec.tasks;
    let mut alloc = Vec::new();
    for (p, f) in racks {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(f);
        alloc.push((PartitionId(p), take));
        remaining -= take;
    }
    (remaining == 0).then_some(alloc)
}

impl Scheduler for PrioScheduler {
    fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
        let mut decision = SchedulingDecision::noop();
        let mut free = view.free.to_vec();

        // Preemptable BE pool: youngest attempts first (least work lost).
        let mut be_running: Vec<BeAttempt> = view
            .running
            .iter()
            .filter(|r| !r.spec.kind.is_slo())
            .map(|r| (r.spec.id, r.start_time, r.allocation.to_vec()))
            .collect();
        be_running.sort_by(|a, b| b.1.total_cmp(&a.1));

        // SLO first (EDF), then BE (FIFO).
        let mut slo: Vec<&JobSpec> = view
            .pending
            .iter()
            .copied()
            .filter(|j| j.kind.is_slo())
            .collect();
        slo.sort_by(|a, b| {
            // Every job here passed is_slo(), so deadline() is Some; a job
            // with a NaN deadline still gets a stable slot via total_cmp.
            let da = a.kind.deadline().unwrap_or(f64::INFINITY);
            let db = b.kind.deadline().unwrap_or(f64::INFINITY);
            da.total_cmp(&db)
        });
        let mut be: Vec<&JobSpec> = view
            .pending
            .iter()
            .copied()
            .filter(|j| !j.kind.is_slo())
            .collect();
        be.sort_by(|a, b| a.submit_time.total_cmp(&b.submit_time));

        for spec in slo {
            if let Some(alloc) = pack(spec, &free) {
                for (p, n) in &alloc {
                    free[p.index()] -= n;
                }
                decision.placements.push(Placement {
                    job: spec.id,
                    allocation: alloc,
                });
                continue;
            }
            // Preempt BE jobs (youngest first) until the gang fits.
            let total_free: u32 = free.iter().sum();
            let mut reclaimable: u32 = be_running
                .iter()
                .map(|(_, _, a)| a.iter().map(|(_, n)| n).sum::<u32>())
                .sum();
            if total_free + reclaimable < spec.tasks {
                continue; // cannot fit even with full preemption
            }
            let mut freed = free.clone();
            while let Some((id, _, alloc)) = be_running.pop() {
                for (p, n) in &alloc {
                    freed[p.index()] += n;
                }
                reclaimable -= alloc.iter().map(|(_, n)| n).sum::<u32>();
                decision.preemptions.push(id);
                if freed.iter().sum::<u32>() >= spec.tasks {
                    if let Some(a) = pack(spec, &freed) {
                        for (p, n) in &a {
                            freed[p.index()] -= n;
                        }
                        decision.placements.push(Placement {
                            job: spec.id,
                            allocation: a,
                        });
                        break;
                    }
                }
            }
            free = freed;
            let _ = reclaimable;
        }

        for spec in be {
            if let Some(alloc) = pack(spec, &free) {
                for (p, n) in &alloc {
                    free[p.index()] -= n;
                }
                decision.placements.push(Placement {
                    job: spec.id,
                    allocation: alloc,
                });
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_cluster::{ClusterSpec, Engine, EngineConfig, JobKind, JobSpec};

    fn engine(racks: usize, per_rack: u32) -> Engine {
        Engine::new(
            ClusterSpec::uniform(racks, per_rack),
            EngineConfig {
                cycle_interval: 2.0,
                drain: Some(4.0 * 3600.0),
                seed: 1,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn slo_goes_before_earlier_be() {
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::BestEffort),
            JobSpec::new(2, 0.0, 2, 100.0, JobKind::Slo { deadline: 5000.0 }),
        ];
        let m = engine(1, 2).run(&jobs, &mut PrioScheduler::new()).unwrap();
        let be = &m.outcomes[0];
        let slo = &m.outcomes[1];
        assert!(slo.start_time.unwrap() < be.start_time.unwrap());
    }

    #[test]
    fn edf_orders_slo_jobs() {
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::Slo { deadline: 9000.0 }),
            JobSpec::new(2, 0.0, 2, 100.0, JobKind::Slo { deadline: 500.0 }),
        ];
        let m = engine(1, 2).run(&jobs, &mut PrioScheduler::new()).unwrap();
        assert!(m.outcomes[1].start_time.unwrap() < m.outcomes[0].start_time.unwrap());
        assert_eq!(m.slo_miss_pct(), 0.0);
    }

    #[test]
    fn preempts_be_for_slo_even_with_ample_slack() {
        // The signature Prio pathology: it preempts even though the SLO
        // deadline has plenty of slack.
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 300.0, JobKind::BestEffort),
            JobSpec::new(
                2,
                10.0,
                2,
                100.0,
                JobKind::Slo {
                    deadline: 100_000.0,
                },
            ),
        ];
        let m = engine(1, 2).run(&jobs, &mut PrioScheduler::new()).unwrap();
        assert!(m.outcomes[0].preemptions >= 1, "{:?}", m.outcomes[0]);
        assert_eq!(m.slo_miss_pct(), 0.0);
    }

    #[test]
    fn prefers_preferred_racks() {
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 100.0, JobKind::Slo { deadline: 5000.0 })
                .with_preference(vec![PartitionId(1)], 1.5),
        ];
        let m = engine(2, 2).run(&jobs, &mut PrioScheduler::new()).unwrap();
        assert_eq!(m.outcomes[0].on_preferred, Some(true));
    }

    #[test]
    fn places_off_preferred_rather_than_waiting() {
        // Preferred rack fully busy with an SLO job (not preemptable):
        // Prio places the new SLO job off-preferred immediately.
        let jobs = vec![
            JobSpec::new(1, 0.0, 2, 1000.0, JobKind::Slo { deadline: 2000.0 })
                .with_preference(vec![PartitionId(0)], 1.5),
            JobSpec::new(2, 10.0, 2, 100.0, JobKind::Slo { deadline: 3000.0 })
                .with_preference(vec![PartitionId(0)], 1.5),
        ];
        let m = engine(2, 2).run(&jobs, &mut PrioScheduler::new()).unwrap();
        let second = &m.outcomes[1];
        assert_eq!(second.on_preferred, Some(false));
        assert_eq!(second.measured_runtime, Some(150.0));
        assert!(second.start_time.unwrap() < 100.0, "did not wait");
    }

    #[test]
    fn be_jobs_fill_leftover_capacity() {
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::Slo { deadline: 5000.0 }),
            JobSpec::new(2, 0.0, 1, 100.0, JobKind::BestEffort),
        ];
        let m = engine(1, 2).run(&jobs, &mut PrioScheduler::new()).unwrap();
        // Both fit simultaneously.
        let s1 = m.outcomes[0].start_time.unwrap();
        let s2 = m.outcomes[1].start_time.unwrap();
        assert!((s1 - s2).abs() < 1e-9);
    }
}
