//! Scheduling-cycle hot path: rack masks, the cross-cycle estimate cache,
//! parallel placement-option generation, and (mask, slot) bucketing.
//!
//! Every cycle, 3σSched enumerates placement options — (equivalence set,
//! start slot) pairs — for each considered job, then charges each option
//! its expected resource consumption in one capacity row per (equivalence
//! set, time slot). This module keeps that path cheap:
//!
//! * [`RackMask`] is a fixed-width partition bitmask (128 racks) replacing
//!   the raw `u64` masks that silently wrapped at 64 partitions.
//! * [`EstimateCache`] holds each job's discretised base distribution and
//!   its slowdown-scaled variants across cycles, re-estimating *pending*
//!   jobs only when the predictor has learned something new (an epoch
//!   counter bumped per observation) and pinning estimates for running
//!   attempts so Eq. 2's conditioning always renormalises the same prior.
//! * [`generate`] fans per-job option valuation (Eq. 1 over every
//!   (space, slot) pair) out over `std::thread::scope` threads; the output
//!   is ordered by job index, so results are bit-identical to a sequential
//!   pass and simulations stay exactly reproducible.
//! * [`OptionBuckets`] groups compiled options by (mask, slot) once, so
//!   each capacity row visits only the options that can actually consume
//!   from its equivalence set and have started by its slot — instead of
//!   scanning every option for every (set, slot) pair.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use threesigma_cluster::{JobId, PartitionId};
use threesigma_milp::VarId;

use crate::dist::DiscreteDist;
use crate::sched::clock::Stopwatch;
use crate::utility::UtilityCurve;

/// A set of rack partitions as a fixed-width (128-bit) bitmask.
///
/// The seed implementation used raw `u64` masks; `1u64 << p.index()` is a
/// masked shift in release builds, so rack 64 silently aliased rack 0 on
/// clusters with more than 64 partitions. `RackMask` widens the mask and
/// panics with a clear message beyond its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RackMask(u128);

impl RackMask {
    /// The empty set.
    pub const EMPTY: RackMask = RackMask(0);
    /// Maximum number of partitions representable.
    pub const MAX_RACKS: usize = 128;

    /// The singleton set `{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is beyond [`Self::MAX_RACKS`].
    pub fn single(index: usize) -> Self {
        assert!(
            index < Self::MAX_RACKS,
            "rack index {index} exceeds RackMask capacity of {} partitions",
            Self::MAX_RACKS
        );
        RackMask(1u128 << index)
    }

    /// The set of the given partitions.
    pub fn of(parts: &[PartitionId]) -> Self {
        parts
            .iter()
            .fold(Self::EMPTY, |m, p| m.with(Self::single(p.index())))
    }

    /// The full set `{0, …, n-1}`.
    pub fn all(n: usize) -> Self {
        assert!(
            n <= Self::MAX_RACKS,
            "cluster has {n} partitions but RackMask supports at most {}",
            Self::MAX_RACKS
        );
        if n == Self::MAX_RACKS {
            RackMask(u128::MAX)
        } else {
            RackMask((1u128 << n) - 1)
        }
    }

    /// Union with another mask.
    pub fn with(self, other: RackMask) -> Self {
        RackMask(self.0 | other.0)
    }

    /// True if partition `index` is in the set.
    pub fn contains(self, index: usize) -> bool {
        index < Self::MAX_RACKS && self.0 & (1u128 << index) != 0
    }

    /// True if every partition of `self` is also in `other`.
    pub fn is_subset_of(self, other: RackMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Cached estimate state for one job.
struct CacheEntry {
    /// Unscaled discretised distribution.
    base: Arc<DiscreteDist>,
    /// Slowdown-scaled variants, keyed by the scale factor's bit pattern.
    /// Ordered map by the scheduler's no-hash-container rule (eviction and
    /// serve-mode bookkeeping must never observe hash order).
    scaled: BTreeMap<u64, Arc<DiscreteDist>>,
    /// History epoch `base` was estimated at.
    epoch: u64,
    /// Pinned while the job's current attempt is running: the conditional
    /// consumption (Eq. 2) must renormalise a stable prior, and §4.2.1's
    /// exp-inc handling assumes the distribution under it does not move.
    pinned: bool,
}

/// Cross-cycle cache of per-job discretised runtime distributions.
///
/// Replaces the per-cycle `clone()`/`scale()` churn of rebuilding every
/// considered job's distribution each cycle. Invalidation rules:
///
/// * [`EstimateCache::bump_epoch`] marks that the predictor learned from a
///   completion; *pending* jobs are lazily re-estimated on next access, so
///   a job frozen with a poor submission-time estimate sharpens as history
///   accumulates (the seed froze estimates at submission forever).
/// * [`EstimateCache::pin`] freezes a job's estimate for the duration of a
///   running attempt.
/// * [`EstimateCache::invalidate`] drops a job's entry outright
///   (completion, preemption, cancellation).
pub struct EstimateCache {
    /// Ordered map: capacity eviction scans this smallest-id-first, so its
    /// victim choice must be independent of hash order.
    entries: BTreeMap<JobId, CacheEntry>,
    /// Optional entry cap (see [`EstimateCache::with_capacity`]).
    capacity: Option<usize>,
    epoch: u64,
    hits: u64,
    misses: u64,
    lookups: u64,
    evictions: u64,
}

/// Deterministic hit/miss counters for the [`EstimateCache`].
///
/// `lookups` is maintained independently of `hits` and `misses` so the
/// simtest counter-consistency invariant (`hits + misses == lookups`) checks
/// real bookkeeping rather than an identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses served from a cached entry (base or scaled variant).
    pub hits: u64,
    /// Accesses that had to (re-)estimate or (re-)scale a distribution.
    pub misses: u64,
    /// Total accesses.
    pub lookups: u64,
    /// Entries evicted by the capacity cap (0 when unbounded).
    pub evictions: u64,
}

impl Default for EstimateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EstimateCache {
    /// An empty cache at epoch zero, unbounded (batch runs hold one entry
    /// per live job, which the run length already bounds).
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
            capacity: None,
            epoch: 0,
            hits: 0,
            misses: 0,
            lookups: 0,
            evictions: 0,
        }
    }

    /// An empty cache holding at most `capacity` entries. When an insert
    /// would exceed the cap, *stale unpinned* entries (epoch older than
    /// current) are evicted smallest job id first. Pinned entries (running
    /// attempts) and current-epoch entries (estimated this cycle, possibly
    /// for still-pending jobs) are never evicted, so the cache may
    /// temporarily overflow rather than drop an estimate the current cycle
    /// relies on.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity.max(1)),
            ..Self::new()
        }
    }

    /// The configured entry cap, if any (bound gauge).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted by the capacity cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evicts stale unpinned entries, smallest job id first, until the cap
    /// is met or no safe victim remains.
    fn enforce_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        if self.entries.len() <= cap {
            return;
        }
        let epoch = self.epoch;
        let mut victims: Vec<JobId> = Vec::new();
        let mut excess = self.entries.len() - cap;
        for (id, e) in &self.entries {
            if excess == 0 {
                break;
            }
            if !e.pinned && e.epoch < epoch {
                victims.push(*id);
                excess -= 1;
            }
        }
        for id in victims {
            self.entries.remove(&id);
            self.evictions += 1;
        }
    }

    /// Cumulative hit/miss counters over the cache's lifetime.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            lookups: self.lookups,
            evictions: self.evictions,
        }
    }

    /// Overwrites the lifetime counters (serve-mode restore: a restarted
    /// service reports stream-lifetime totals, not process totals).
    pub fn restore_stats(&mut self, stats: CacheStats, epoch: u64) {
        self.hits = stats.hits;
        self.misses = stats.misses;
        self.lookups = stats.lookups;
        self.evictions = stats.evictions;
        self.epoch = epoch;
    }

    /// Records that the estimation history changed (e.g. the predictor
    /// observed a completed runtime). Unpinned entries become stale.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Current history epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The job's base distribution; `estimate` is invoked only when the
    /// entry is missing or stale (unpinned and older than the current
    /// epoch).
    pub fn base(
        &mut self,
        job: JobId,
        estimate: impl FnOnce() -> DiscreteDist,
    ) -> Arc<DiscreteDist> {
        let epoch = self.epoch;
        self.lookups += 1;
        match self.entries.get_mut(&job) {
            Some(e) if e.pinned || e.epoch == epoch => {
                self.hits += 1;
                e.base.clone()
            }
            Some(e) => {
                self.misses += 1;
                e.base = Arc::new(estimate());
                e.epoch = epoch;
                e.scaled.clear();
                e.base.clone()
            }
            None => {
                self.misses += 1;
                let base = Arc::new(estimate());
                self.entries.insert(
                    job,
                    CacheEntry {
                        base: base.clone(),
                        scaled: BTreeMap::new(),
                        epoch,
                        pinned: false,
                    },
                );
                self.enforce_capacity();
                base
            }
        }
    }

    /// The job's distribution scaled by `scale`, cached per scale factor.
    /// Expects a prior [`Self::base`] call in the same cycle; returns
    /// `None` if the job has no cached entry, so a bookkeeping slip
    /// degrades the caller's decision instead of panicking mid-cycle.
    pub fn scaled(&mut self, job: JobId, scale: f64) -> Option<Arc<DiscreteDist>> {
        self.lookups += 1;
        let Some(e) = self.entries.get_mut(&job) else {
            self.misses += 1;
            return None;
        };
        if scale == 1.0 {
            self.hits += 1;
            return Some(e.base.clone());
        }
        let mut rescaled = false;
        let d = e
            .scaled
            .entry(scale.to_bits())
            .or_insert_with(|| {
                rescaled = true;
                Arc::new(e.base.scale(scale))
            })
            .clone();
        if rescaled {
            self.misses += 1;
        } else {
            self.hits += 1;
        }
        Some(d)
    }

    /// Pins the job's current estimate (attempt started running).
    pub fn pin(&mut self, job: JobId) {
        if let Some(e) = self.entries.get_mut(&job) {
            e.pinned = true;
        }
    }

    /// Drops the job's entry (completed, preempted, or cancelled). A
    /// preempted job re-enters the pending queue and is re-estimated from
    /// the *current* history on next access.
    pub fn invalidate(&mut self, job: JobId) {
        self.entries.remove(&job);
    }

    /// Number of cached jobs (for tests/introspection).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the job's entry is pinned (for tests/introspection).
    pub fn is_pinned(&self, job: JobId) -> bool {
        self.entries.get(&job).is_some_and(|e| e.pinned)
    }
}

/// Per-job input to option generation, prepared sequentially (the estimate
/// cache and predictor are not shared across threads).
pub(crate) struct GenInput {
    /// Candidate equivalence sets with their (already scaled) runtime
    /// distributions: preferred racks at 1×, whole cluster at the job's
    /// slowdown — or just the whole cluster for indifferent jobs.
    pub spaces: Vec<(RackMask, Arc<DiscreteDist>)>,
    /// The job's utility curve (over-estimate handling already applied).
    pub curve: UtilityCurve,
}

/// One placement option valued by Eq. 1, before MILP compilation. The
/// owning job is implied by the option's position in [`generate`]'s output.
pub(crate) struct GenOption {
    /// Start-slot index within the plan-ahead window.
    pub slot: usize,
    /// Equivalence set the option may run in.
    pub mask: RackMask,
    /// Scaled distribution used for consumption (Eq. 3).
    pub dist: Arc<DiscreteDist>,
    /// Expected utility (Eq. 1) of this option.
    pub utility: f64,
}

/// All options generated for one job.
pub(crate) struct JobOptions {
    /// Options with positive expected utility, in (space, slot) order.
    pub options: Vec<GenOption>,
    /// Best expected utility over *all* (space, slot) pairs, including
    /// pruned ones — drives hopeless-job cancellation.
    pub best_utility: f64,
    /// Total (space, slot) pairs valued, including pruned ones.
    pub enumerated: usize,
    /// Pairs dropped by the §4.3.6 zero-value prune.
    pub pruned: usize,
}

fn generate_one(input: &GenInput, slots: &[f64], max_options: Option<usize>) -> JobOptions {
    let mut options = Vec::new();
    let mut best_utility = 0.0f64;
    let mut enumerated = 0usize;
    let mut pruned = 0usize;
    for (mask, dist) in &input.spaces {
        for (slot, &start) in slots.iter().enumerate() {
            enumerated += 1;
            let eu = input.curve.expected(start, dist);
            // A non-finite expected utility (NaN deadline, inf weight)
            // must never reach the MILP objective; treat it as zero-value.
            let eu = if eu.is_finite() { eu } else { 0.0 };
            best_utility = best_utility.max(eu);
            if eu <= 1e-9 {
                pruned += 1;
                continue; // §4.3.6: prune zero-value terms
            }
            options.push(GenOption {
                slot,
                mask: *mask,
                dist: dist.clone(),
                utility: eu,
            });
        }
    }
    // Aggressive §4.3.6 prune (degraded cycles): keep only the job's top-k
    // options by expected utility, ties broken by original (space, slot)
    // order so the result is deterministic; survivors keep that order.
    if let Some(k) = max_options {
        if options.len() > k {
            let mut idx: Vec<usize> = (0..options.len()).collect();
            idx.sort_by(|&a, &b| {
                options[b]
                    .utility
                    .total_cmp(&options[a].utility)
                    .then(a.cmp(&b))
            });
            idx.truncate(k);
            idx.sort_unstable();
            pruned += options.len() - k;
            let mut keep = idx.into_iter();
            let mut next = keep.next();
            let mut i = 0;
            options.retain(|_| {
                let kept = next == Some(i);
                if kept {
                    next = keep.next();
                }
                i += 1;
                kept
            });
        }
    }
    JobOptions {
        options,
        best_utility,
        enumerated,
        pruned,
    }
}

/// Values every (space, slot) option for every job, in parallel.
///
/// Work is split into contiguous chunks over scoped threads; the result is
/// reassembled in job order, and per-job valuation is pure floating-point
/// math, so the output is identical to a sequential pass regardless of
/// thread count — simulations remain exactly reproducible.
pub(crate) fn generate(
    inputs: &[GenInput],
    slots: &[f64],
    max_options: Option<usize>,
) -> Vec<JobOptions> {
    let n = inputs.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    // Below this many jobs the spawn overhead outweighs the fan-out.
    if threads <= 1 || n < 16 {
        return inputs
            .iter()
            .map(|g| generate_one(g, slots, max_options))
            .collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<JobOptions>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .map(|ch| {
                s.spawn(move || {
                    ch.iter()
                        .map(|g| generate_one(g, slots, max_options))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        out.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("option generation thread panicked")),
        );
    });
    out.into_iter().flatten().collect()
}

/// Like [`generate`], but fans out over exactly `shards` deterministic
/// worker shards behind a bounded channel, pipelining the ordered merge.
///
/// Each shard owns a contiguous slice of the (job-ordered) inputs and
/// streams `(shard id, elapsed, results)` into a `sync_channel`; the
/// consumer appends results in ascending shard id — stashing any shard that
/// finishes early — so the merge of shard *k* overlaps the enumeration of
/// shards *> k* instead of waiting on a full barrier. Per-job valuation is
/// pure, the shard split is a function of `(n, shards)` alone, and the merge
/// order is total, so the output is byte-identical to a sequential pass at
/// every shard count.
///
/// Returns the merged per-job options plus each shard's enumeration wall
/// time (budget telemetry only — never fed back into decisions).
pub(crate) fn generate_sharded(
    inputs: &[GenInput],
    slots: &[f64],
    max_options: Option<usize>,
    shards: usize,
) -> (Vec<JobOptions>, Vec<Duration>) {
    let n = inputs.len();
    if shards <= 1 || n < 2 {
        let sw = Stopwatch::start();
        let out = generate(inputs, slots, max_options);
        return (out, vec![sw.elapsed()]);
    }
    let chunk = n.div_ceil(shards.min(n));
    let num_shards = n.div_ceil(chunk);
    let mut merged: Vec<JobOptions> = Vec::with_capacity(n);
    let mut durations = vec![Duration::ZERO; num_shards];
    std::thread::scope(|s| {
        // Bounded: a shard racing far ahead of the merge blocks instead of
        // buffering the whole cycle's output at once.
        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Duration, Vec<JobOptions>)>(2);
        for (shard_id, ch) in inputs.chunks(chunk).enumerate() {
            let tx = tx.clone();
            s.spawn(move || {
                let sw = Stopwatch::start();
                let out: Vec<JobOptions> = ch
                    .iter()
                    .map(|g| generate_one(g, slots, max_options))
                    .collect();
                // Send fails only if the merge side panicked; nothing to
                // salvage from a worker thread in that case.
                let _ = tx.send((shard_id, sw.elapsed(), out));
            });
        }
        drop(tx);
        // Deterministic ordered merge: ascending shard id, which is job
        // order because shard slices are contiguous.
        let mut next = 0usize;
        let mut stash: BTreeMap<usize, (Duration, Vec<JobOptions>)> = BTreeMap::new();
        while let Ok((shard_id, took, out)) = rx.recv() {
            stash.insert(shard_id, (took, out));
            while let Some((took, out)) = stash.remove(&next) {
                durations[next] = took;
                merged.extend(out);
                next += 1;
            }
        }
    });
    (merged, durations)
}

/// A generated option compiled into the MILP (has a binary variable).
pub(crate) struct CompiledOption {
    /// Index into the cycle's considered-job list.
    pub job_idx: usize,
    /// Mask group the option's coordinates live in: `mask` bit *i* means
    /// group-local rack *i* (global partition `group_start + i`). Always 0
    /// on clusters that fit a single [`RackMask`].
    pub group: usize,
    /// The option's binary indicator in the MILP.
    pub var: VarId,
    /// Start-slot index.
    pub slot: usize,
    /// Equivalence set (group-local coordinates).
    pub mask: RackMask,
    /// Scaled distribution for consumption rows.
    pub dist: Arc<DiscreteDist>,
    /// Gang width (tasks) as a float coefficient base.
    pub tasks: f64,
}

/// Options indexed by (mask group, equivalence-set mask, start slot), built
/// once per cycle so each capacity row iterates only the options that can
/// consume from its set and have started by its slot. Masks in different
/// groups use independent local coordinates and never mix.
pub(crate) struct OptionBuckets {
    keys: Vec<(usize, RackMask)>,
    /// `buckets[key_id][slot]` → indices into the compiled-option vec.
    buckets: Vec<Vec<Vec<usize>>>,
}

impl OptionBuckets {
    /// Groups `options` by (group, mask, slot).
    pub fn build(options: &[CompiledOption], num_slots: usize) -> Self {
        let mut keys: Vec<(usize, RackMask)> = Vec::new();
        let mut buckets: Vec<Vec<Vec<usize>>> = Vec::new();
        for (i, opt) in options.iter().enumerate() {
            let key = (opt.group, opt.mask);
            let mid = match keys.iter().position(|&k| k == key) {
                Some(m) => m,
                None => {
                    keys.push(key);
                    buckets.push(vec![Vec::new(); num_slots]);
                    keys.len() - 1
                }
            };
            buckets[mid][opt.slot].push(i);
        }
        Self { keys, buckets }
    }

    /// Visits every option in `group` whose equivalence set is contained in
    /// `space` and whose start slot is at most `slot` — exactly the options
    /// a capacity row for (`group`, `space`, `slot`) must charge.
    pub fn for_each_contained(
        &self,
        group: usize,
        space: RackMask,
        slot: usize,
        mut f: impl FnMut(usize),
    ) {
        for (mid, (g, mask)) in self.keys.iter().enumerate() {
            if *g != group || !mask.is_subset_of(space) {
                continue;
            }
            for bucket in self.buckets[mid].iter().take(slot + 1) {
                for &oi in bucket {
                    f(oi);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_mask_handles_more_than_64_racks() {
        let m = RackMask::single(64);
        assert!(m.contains(64));
        assert!(!m.contains(0), "rack 64 must not alias rack 0");
        let all = RackMask::all(65);
        assert!(all.contains(64));
        assert!(m.is_subset_of(all));
        assert!(!all.is_subset_of(m));
        let full = RackMask::all(128);
        assert!(full.contains(127));
        assert!(RackMask::all(65).is_subset_of(full));
    }

    #[test]
    fn rack_mask_set_algebra() {
        let a = RackMask::of(&[PartitionId(0), PartitionId(3)]);
        assert!(a.contains(0) && a.contains(3) && !a.contains(1));
        assert!(RackMask::EMPTY.is_empty());
        assert!(RackMask::EMPTY.is_subset_of(a));
        let b = a.with(RackMask::single(7));
        assert!(a.is_subset_of(b) && !b.is_subset_of(a));
        assert!(!a.contains(200), "out-of-range membership is just false");
    }

    #[test]
    #[should_panic(expected = "exceeds RackMask capacity")]
    fn rack_mask_overflow_panics_clearly() {
        let _ = RackMask::single(128);
    }

    #[test]
    fn rack_mask_word_boundary_widths() {
        // The u64 seed masks wrapped at exactly these widths; pin down the
        // boundary behaviour at 63 / 64 / 65 / 127 / 128 racks.
        for n in [63usize, 64, 65, 127, 128] {
            let all = RackMask::all(n);
            assert!(all.contains(n - 1), "all({n}) must contain rack {}", n - 1);
            assert!(!all.contains(n), "all({n}) must exclude rack {n}");
            assert!(!all.is_empty());
            // Membership count is exactly n: each singleton up to n is a
            // subset, the one just past n is not.
            assert!(RackMask::single(n - 1).is_subset_of(all));
            if n < RackMask::MAX_RACKS {
                assert!(!RackMask::single(n).is_subset_of(all));
            }
        }
        // Widths one apart differ in exactly the boundary rack.
        assert!(!RackMask::all(63).contains(63));
        assert!(RackMask::all(64).contains(63));
        assert!(
            !RackMask::all(64).contains(64),
            "no aliasing at the u64 edge"
        );
        assert!(RackMask::all(65).contains(64));
        assert!(RackMask::all(128).contains(127));
        assert!(RackMask::all(63).is_subset_of(RackMask::all(64)));
        assert!(RackMask::all(127).is_subset_of(RackMask::all(128)));
        assert!(!RackMask::all(128).is_subset_of(RackMask::all(127)));
    }

    #[test]
    #[should_panic(expected = "RackMask supports at most")]
    fn rack_mask_all_past_capacity_panics() {
        let _ = RackMask::all(129);
    }

    #[test]
    fn estimate_cache_coalesces_multiple_epoch_bumps() {
        // Invalidation is lazy: three completions between accesses cost one
        // re-estimation, not three, and the counter is monotone.
        let mut cache = EstimateCache::new();
        let job = JobId(11);
        let mut calls = 0;
        let _ = cache.base(job, || {
            calls += 1;
            DiscreteDist::point(100.0)
        });
        assert_eq!(cache.epoch(), 0);
        cache.bump_epoch();
        cache.bump_epoch();
        cache.bump_epoch();
        assert_eq!(cache.epoch(), 3);
        let _ = cache.base(job, || {
            calls += 1;
            DiscreteDist::point(80.0)
        });
        let _ = cache.base(job, || {
            calls += 1;
            DiscreteDist::point(60.0)
        });
        assert_eq!(calls, 2, "three bumps coalesce into one re-estimation");
        // A job first seen after bumps is already at the current epoch.
        let other = JobId(12);
        let _ = cache.base(other, || DiscreteDist::point(10.0));
        let d = cache.base(other, || unreachable!("fresh entry must be reused"));
        assert_eq!(d.mean(), 10.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn estimate_cache_reestimates_only_on_epoch_change() {
        let mut cache = EstimateCache::new();
        let mut calls = 0;
        let job = JobId(1);
        for _ in 0..3 {
            let _ = cache.base(job, || {
                calls += 1;
                DiscreteDist::point(100.0)
            });
        }
        assert_eq!(calls, 1, "fresh entry is reused");
        cache.bump_epoch();
        let d = cache.base(job, || {
            calls += 1;
            DiscreteDist::point(50.0)
        });
        assert_eq!(calls, 2, "stale entry is re-estimated");
        assert_eq!(d.mean(), 50.0);
    }

    #[test]
    fn estimate_cache_pins_running_attempts() {
        let mut cache = EstimateCache::new();
        let job = JobId(7);
        let _ = cache.base(job, || DiscreteDist::point(100.0));
        cache.pin(job);
        assert!(cache.is_pinned(job));
        cache.bump_epoch();
        let d = cache.base(job, || unreachable!("pinned entries never re-estimate"));
        assert_eq!(d.mean(), 100.0);
        // Preemption invalidates; the next access re-estimates fresh.
        cache.invalidate(job);
        assert!(!cache.is_pinned(job));
        let d = cache.base(job, || DiscreteDist::point(25.0));
        assert_eq!(d.mean(), 25.0);
    }

    #[test]
    fn estimate_cache_scales_once_per_factor() {
        let mut cache = EstimateCache::new();
        let job = JobId(3);
        let _ = cache.base(job, || DiscreteDist::point(100.0));
        let a = cache.scaled(job, 1.5).unwrap();
        let b = cache.scaled(job, 1.5).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same Arc, no re-scale");
        assert_eq!(a.mean(), 150.0);
        let unit = cache.scaled(job, 1.0).unwrap();
        assert_eq!(unit.mean(), 100.0);
        // Re-estimation clears stale scaled variants.
        cache.bump_epoch();
        let _ = cache.base(job, || DiscreteDist::point(10.0));
        assert_eq!(cache.scaled(job, 1.5).unwrap().mean(), 15.0);
    }

    #[test]
    fn estimate_cache_scaled_without_base_degrades_gracefully() {
        // Regression: `scaled()` used to panic when the base entry was
        // missing; a bookkeeping slip must degrade the decision, not kill
        // the engine.
        let mut cache = EstimateCache::new();
        assert!(cache.scaled(JobId(99), 1.5).is_none());
        assert!(cache.scaled(JobId(99), 1.0).is_none());
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.lookups, 2);
    }

    #[test]
    fn estimate_cache_counts_hits_and_misses() {
        let mut cache = EstimateCache::new();
        let job = JobId(5);
        let _ = cache.base(job, || DiscreteDist::point(100.0)); // miss
        let _ = cache.base(job, || unreachable!()); // hit
        let _ = cache.scaled(job, 2.0); // miss (first scale)
        let _ = cache.scaled(job, 2.0); // hit
        let _ = cache.scaled(job, 1.0); // hit (base reuse)
        cache.bump_epoch();
        let _ = cache.base(job, || DiscreteDist::point(50.0)); // miss (stale)
        let s = cache.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 3);
        assert_eq!(s.lookups, 6);
        assert_eq!(s.hits + s.misses, s.lookups);
    }

    #[test]
    fn estimate_cache_never_evicts_current_cycle_entries() {
        // Every entry estimated this epoch may belong to a still-pending
        // job the in-flight cycle will consult again; the cap must overflow
        // rather than drop one.
        let mut cache = EstimateCache::with_capacity(4);
        for i in 0..10 {
            let _ = cache.base(JobId(i), || DiscreteDist::point(100.0));
        }
        assert_eq!(cache.len(), 10, "current-epoch entries are safe");
        assert_eq!(cache.evictions(), 0);
        for i in 0..10 {
            let d = cache.base(JobId(i), || unreachable!("entry {i} must survive"));
            assert_eq!(d.mean(), 100.0);
        }
        // Next cycle: the backlog is stale and fair game, except for pinned
        // (running) entries, which survive any number of epochs.
        cache.pin(JobId(2));
        cache.bump_epoch();
        let _ = cache.base(JobId(10), || DiscreteDist::point(50.0));
        assert_eq!(cache.len(), 4, "evicted down to the cap");
        assert_eq!(cache.evictions(), 7, "exactly the excess over the cap");
        assert!(cache.is_pinned(JobId(2)), "pinned entry spared");
        let d = cache.base(JobId(2), || unreachable!("pinned entry must survive"));
        assert_eq!(d.mean(), 100.0);
        let d = cache.base(JobId(10), || {
            unreachable!("current-epoch entry must survive")
        });
        assert_eq!(d.mean(), 50.0);
    }

    #[test]
    fn estimate_cache_epoch_bump_after_eviction_does_not_resurrect() {
        // Regression shape: evict a stale entry, bump the epoch (history
        // changed again), then touch the job. The access must re-estimate
        // from current history — never replay the evicted distribution.
        let mut cache = EstimateCache::with_capacity(1);
        let victim = JobId(1);
        let _ = cache.base(victim, || DiscreteDist::point(100.0));
        cache.bump_epoch();
        let _ = cache.base(JobId(2), || DiscreteDist::point(10.0));
        assert_eq!(cache.evictions(), 1, "victim evicted by the cap");
        assert_eq!(cache.len(), 1);
        cache.bump_epoch();
        let mut calls = 0;
        let d = cache.base(victim, || {
            calls += 1;
            DiscreteDist::point(30.0)
        });
        assert_eq!(calls, 1, "evicted entry re-estimates as a fresh miss");
        assert_eq!(d.mean(), 30.0, "the pre-eviction estimate must not return");
        // Scaled variants of the evicted entry are gone too.
        assert_eq!(cache.scaled(victim, 2.0).unwrap().mean(), 60.0);
        let s = cache.stats();
        assert_eq!(s.evictions, cache.evictions());
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let slots = [0.0, 60.0, 120.0, 180.0];
        let inputs: Vec<GenInput> = (0..64)
            .map(|i| GenInput {
                spaces: vec![
                    (
                        RackMask::single(i % 3),
                        Arc::new(DiscreteDist::point(50.0 + i as f64)),
                    ),
                    (
                        RackMask::all(8),
                        Arc::new(DiscreteDist::point((50.0 + i as f64) * 1.5)),
                    ),
                ],
                curve: UtilityCurve::SloStep {
                    weight: 10.0,
                    deadline: 200.0 + i as f64,
                },
            })
            .collect();
        let par = generate(&inputs, &slots, None);
        let seq: Vec<JobOptions> = inputs
            .iter()
            .map(|g| generate_one(g, &slots, None))
            .collect();
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.best_utility.to_bits(), s.best_utility.to_bits());
            assert_eq!(p.options.len(), s.options.len());
            assert_eq!(p.enumerated, s.enumerated);
            assert_eq!(p.pruned, s.pruned);
            assert_eq!(p.enumerated, 8, "2 spaces × 4 slots");
            assert_eq!(p.options.len() + p.pruned, p.enumerated);
            for (po, so) in p.options.iter().zip(&s.options) {
                assert_eq!(po.slot, so.slot);
                assert_eq!(po.mask, so.mask);
                assert_eq!(po.utility.to_bits(), so.utility.to_bits());
            }
        }
    }

    #[test]
    fn aggressive_prune_keeps_the_top_k_options_deterministically() {
        let slots = [0.0, 60.0, 120.0, 180.0];
        let input = GenInput {
            spaces: vec![
                (RackMask::single(0), Arc::new(DiscreteDist::point(50.0))),
                (RackMask::all(4), Arc::new(DiscreteDist::point(75.0))),
            ],
            curve: UtilityCurve::SloStep {
                weight: 10.0,
                deadline: 500.0,
            },
        };
        let full = generate_one(&input, &slots, None);
        let capped = generate_one(&input, &slots, Some(3));
        assert!(full.options.len() > 3, "test needs something to prune");
        assert_eq!(capped.options.len(), 3);
        // Same enumeration count — the cap prunes, it does not skip work.
        assert_eq!(capped.enumerated, full.enumerated);
        assert_eq!(capped.options.len() + capped.pruned, capped.enumerated);
        assert_eq!(capped.best_utility.to_bits(), full.best_utility.to_bits());
        // The survivors are exactly the top-3 utilities of the full set,
        // still in (space, slot) order.
        let mut best: Vec<u64> = full.options.iter().map(|o| o.utility.to_bits()).collect();
        best.sort_by(|a, b| f64::from_bits(*b).total_cmp(&f64::from_bits(*a)));
        best.truncate(3);
        for o in &capped.options {
            assert!(best.contains(&o.utility.to_bits()));
        }
        for w in capped.options.windows(2) {
            assert!(
                w[0].mask != w[1].mask || w[0].slot < w[1].slot,
                "survivors keep (space, slot) order"
            );
        }
        // Re-running is bit-identical (deterministic tie-breaks).
        let again = generate_one(&input, &slots, Some(3));
        assert_eq!(again.options.len(), capped.options.len());
        for (a, b) in again.options.iter().zip(&capped.options) {
            assert_eq!(a.utility.to_bits(), b.utility.to_bits());
            assert_eq!(a.slot, b.slot);
        }
    }

    #[test]
    fn buckets_visit_exactly_contained_started_options() {
        let d = Arc::new(DiscreteDist::point(10.0));
        let mut model = threesigma_milp::Model::new();
        let mut mk = |job_idx, slot, mask| CompiledOption {
            job_idx,
            group: 0,
            var: model.add_binary(0.0),
            slot,
            mask,
            dist: d.clone(),
            tasks: 1.0,
        };
        let a = RackMask::of(&[PartitionId(0)]);
        let b = RackMask::of(&[PartitionId(1)]);
        let full = RackMask::all(2);
        let options = vec![
            mk(0, 0, a),
            mk(0, 1, full),
            mk(1, 0, b),
            mk(1, 2, a),
            mk(2, 1, b),
        ];
        let buckets = OptionBuckets::build(&options, 3);
        let collect = |space, slot| {
            let mut got = Vec::new();
            buckets.for_each_contained(0, space, slot, |oi| got.push(oi));
            got.sort_unstable();
            got
        };
        // Space {0}: only mask-a options, started by the slot.
        assert_eq!(collect(a, 0), vec![0]);
        assert_eq!(collect(a, 2), vec![0, 3]);
        // Space {1}: only mask-b options.
        assert_eq!(collect(b, 1), vec![2, 4]);
        // Full cluster: everything started by the slot.
        assert_eq!(collect(full, 0), vec![0, 2]);
        assert_eq!(collect(full, 2), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn buckets_never_mix_mask_groups() {
        // Identical local masks in different groups address different
        // physical racks; a capacity row for group 1 must not charge group
        // 0's options even though the bit patterns match.
        let d = Arc::new(DiscreteDist::point(10.0));
        let mut model = threesigma_milp::Model::new();
        let mut mk = |job_idx, group, mask| CompiledOption {
            job_idx,
            group,
            var: model.add_binary(0.0),
            slot: 0,
            mask,
            dist: d.clone(),
            tasks: 1.0,
        };
        let local = RackMask::all(2);
        let options = vec![mk(0, 0, local), mk(1, 1, local), mk(2, 1, local)];
        let buckets = OptionBuckets::build(&options, 1);
        let collect = |group| {
            let mut got = Vec::new();
            buckets.for_each_contained(group, local, 0, |oi| got.push(oi));
            got.sort_unstable();
            got
        };
        assert_eq!(collect(0), vec![0]);
        assert_eq!(collect(1), vec![1, 2]);
        assert_eq!(collect(2), Vec::<usize>::new());
    }

    #[test]
    fn sharded_generation_is_byte_identical_across_shard_counts() {
        let slots = [0.0, 60.0, 120.0, 180.0];
        let inputs: Vec<GenInput> = (0..23)
            .map(|i| GenInput {
                spaces: vec![
                    (
                        RackMask::single(i % 5),
                        Arc::new(DiscreteDist::point(40.0 + i as f64)),
                    ),
                    (
                        RackMask::all(8),
                        Arc::new(DiscreteDist::point((40.0 + i as f64) * 1.5)),
                    ),
                ],
                curve: UtilityCurve::SloStep {
                    weight: 10.0,
                    deadline: 250.0 + i as f64,
                },
            })
            .collect();
        let baseline = generate(&inputs, &slots, Some(5));
        for shards in [1usize, 2, 3, 8, 64] {
            let (sharded, durations) = generate_sharded(&inputs, &slots, Some(5), shards);
            assert_eq!(sharded.len(), baseline.len(), "shards={shards}");
            assert!(!durations.is_empty() && durations.len() <= shards.max(1));
            for (a, b) in sharded.iter().zip(&baseline) {
                assert_eq!(a.best_utility.to_bits(), b.best_utility.to_bits());
                assert_eq!(a.enumerated, b.enumerated);
                assert_eq!(a.pruned, b.pruned);
                assert_eq!(a.options.len(), b.options.len());
                for (x, y) in a.options.iter().zip(&b.options) {
                    assert_eq!(x.slot, y.slot);
                    assert_eq!(x.mask, y.mask);
                    assert_eq!(x.utility.to_bits(), y.utility.to_bits());
                }
            }
        }
    }
}
