//! Shard planning for the sharded decide stage.
//!
//! Two distinct concepts meet here:
//!
//! * **Worker shards** — how many threads fan out over option enumeration
//!   ([`crate::SchedConfig::shards`]). Purely a parallelism knob: work is
//!   split deterministically and merged back in shard order, so results are
//!   byte-identical at every shard count.
//! * **Mask groups** — contiguous partition (rack) ranges small enough for a
//!   group-local [`RackMask`], i.e. at most [`RackMask::MAX_RACKS`] racks
//!   each. Groups exist to lift the 128-rack mask ceiling: mask bit `i`
//!   inside group `g` refers to partition `start(g) + i`.
//!
//! On clusters that fit a single mask group (≤ 128 racks — every corpus
//! scenario) the plan degenerates to one group spanning every rack, local
//! coordinates equal global coordinates, and the sharded pipeline is
//! bit-identical to the sequential path. On larger clusters each job is
//! *homed* to one group (first preferred rack's group, or a deterministic
//! spread by job id) and its placement options are enumerated against that
//! group's local mask space only.

use crate::sched::options::RackMask;
use threesigma_cluster::{JobSpec, PartitionId};

/// Deterministic partition-to-group layout for one cluster size.
///
/// Groups are contiguous, cover every partition exactly once, and are sized
/// as evenly as possible (larger groups first), so the layout is a pure
/// function of `(num_partitions, shards)`.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    num_partitions: usize,
    /// `(start, len)` per group, in ascending partition order.
    groups: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Builds the layout for `num_partitions` racks under `shards` workers.
    ///
    /// Clusters that fit one mask group get exactly one group regardless of
    /// the worker count — sharding the *work* never changes the *mask
    /// coordinates*, which is what keeps digests shard-invariant. Larger
    /// clusters get `max(shards, ceil(n / MAX_RACKS))` groups (clamped to
    /// `n`) so every group fits a `RackMask`.
    pub fn new(num_partitions: usize, shards: usize) -> Self {
        let n = num_partitions.max(1);
        let num_groups = if n <= RackMask::MAX_RACKS {
            1
        } else {
            shards.max(n.div_ceil(RackMask::MAX_RACKS)).min(n)
        };
        let base = n / num_groups;
        let rem = n % num_groups;
        let mut groups = Vec::with_capacity(num_groups);
        let mut start = 0;
        for g in 0..num_groups {
            let len = base + usize::from(g < rem);
            groups.push((start, len));
            start += len;
        }
        debug_assert_eq!(start, n, "groups must tile the cluster");
        Self {
            num_partitions: n,
            groups,
        }
    }

    /// Number of mask groups (1 on every ≤128-rack cluster).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// `(start, len)` of group `g` in global partition coordinates.
    pub fn group_range(&self, g: usize) -> (usize, usize) {
        self.groups[g]
    }

    /// The group containing global partition `p`.
    pub fn group_of(&self, p: PartitionId) -> usize {
        debug_assert!(p.index() < self.num_partitions, "partition out of range");
        // Larger groups come first, so a partition at index i is in group
        // i / (base+1) until the remainder runs out, then strides by base.
        match self.groups.binary_search_by(|&(start, len)| {
            if p.index() < start {
                std::cmp::Ordering::Greater
            } else if p.index() >= start + len {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(g) => g,
            Err(_) => unreachable!("groups tile the cluster"),
        }
    }

    /// The group a job's options are enumerated in: the group of its first
    /// preferred rack, else a deterministic spread by job id.
    pub fn home_group(&self, spec: &JobSpec) -> usize {
        if self.groups.len() == 1 {
            return 0;
        }
        if let Some(p) = spec.preferred.as_ref().and_then(|ps| ps.first()) {
            if p.index() < self.num_partitions {
                return self.group_of(*p);
            }
        }
        (spec.id.0 % self.groups.len() as u64) as usize
    }

    /// Global partition → group-local mask bit (caller guarantees membership).
    pub fn to_local(&self, g: usize, p: PartitionId) -> usize {
        let (start, len) = self.groups[g];
        debug_assert!(
            p.index() >= start && p.index() < start + len,
            "partition {p:?} outside group {g}"
        );
        p.index() - start
    }

    /// Group-local mask bit → global partition.
    pub fn to_global(&self, g: usize, local: usize) -> PartitionId {
        let (start, len) = self.groups[g];
        debug_assert!(local < len, "local index {local} outside group {g}");
        PartitionId(start + local)
    }

    /// Full mask of group `g` (all racks in the group).
    pub fn group_mask(&self, g: usize) -> RackMask {
        RackMask::all(self.groups[g].1)
    }

    /// Largest cluster (in racks) a scheduler configured with `shards`
    /// workers accepts: each worker contributes one mask group of capacity
    /// [`RackMask::MAX_RACKS`].
    pub fn max_partitions(shards: usize) -> usize {
        shards.max(1) * RackMask::MAX_RACKS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_cluster::JobKind;

    fn be(id: u64) -> JobSpec {
        JobSpec::new(id, 0.0, 1, 10.0, JobKind::BestEffort)
    }

    #[test]
    fn small_cluster_is_one_group_regardless_of_shards() {
        for shards in [1, 2, 8, 64] {
            let plan = ShardPlan::new(4, shards);
            assert_eq!(plan.num_groups(), 1);
            assert_eq!(plan.group_range(0), (0, 4));
            assert_eq!(plan.home_group(&be(7)), 0);
            assert_eq!(plan.to_local(0, PartitionId(3)), 3);
            assert_eq!(plan.to_global(0, 3), PartitionId(3));
        }
    }

    #[test]
    fn boundary_128_is_one_group_129_splits() {
        assert_eq!(ShardPlan::new(128, 8).num_groups(), 1);
        let plan = ShardPlan::new(129, 2);
        assert_eq!(plan.num_groups(), 2);
        assert_eq!(plan.group_range(0), (0, 65));
        assert_eq!(plan.group_range(1), (65, 64));
    }

    #[test]
    fn groups_tile_and_fit_masks() {
        for (n, shards) in [(129, 1), (1000, 2), (12_584, 8), (300, 300)] {
            let plan = ShardPlan::new(n, shards);
            let mut covered = 0;
            for g in 0..plan.num_groups() {
                let (start, len) = plan.group_range(g);
                assert_eq!(start, covered, "groups must be contiguous");
                assert!((1..=RackMask::MAX_RACKS).contains(&len));
                covered += len;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn group_of_agrees_with_ranges() {
        let plan = ShardPlan::new(1000, 3);
        for g in 0..plan.num_groups() {
            let (start, len) = plan.group_range(g);
            for p in [start, start + len - 1] {
                assert_eq!(plan.group_of(PartitionId(p)), g);
            }
        }
    }

    #[test]
    fn home_group_follows_preference_then_id() {
        let plan = ShardPlan::new(256, 2);
        assert_eq!(plan.num_groups(), 2);
        let j = be(1).with_preference(vec![PartitionId(200)], 1.5);
        assert_eq!(plan.home_group(&j), 1);
        // No preference: deterministic spread by id.
        assert_eq!(plan.home_group(&be(4)), 0);
        assert_eq!(plan.home_group(&be(5)), 1);
    }

    #[test]
    fn max_partitions_scales_with_shards() {
        assert_eq!(ShardPlan::max_partitions(0), 128);
        assert_eq!(ShardPlan::max_partitions(1), 128);
        assert_eq!(ShardPlan::max_partitions(8), 1024);
    }

    #[test]
    fn local_global_roundtrip() {
        let plan = ShardPlan::new(12_584, 8);
        for g in 0..plan.num_groups() {
            let (start, len) = plan.group_range(g);
            assert_eq!(plan.to_local(g, plan.to_global(g, 0)), 0);
            assert_eq!(plan.to_local(g, PartitionId(start + len - 1)), len - 1);
        }
    }
}
