//! The scheduler's only wall-clock access point.
//!
//! Decision-path code never calls `Instant::now` directly: every elapsed-time
//! read goes through a [`Stopwatch`] started here, so the sites that touch
//! the real clock stay greppable (and enforceable — `threesigma-lint`'s
//! time-source rule allowlists exactly this module). Clock reads feed only
//! *budget* decisions (cycle deadlines, degradation), never simulated time,
//! which always comes from the virtual clock.

use std::time::{Duration, Instant};

/// A started timer; the one sanctioned way to measure elapsed wall time.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
