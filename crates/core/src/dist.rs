//! Discrete working form of a runtime distribution.
//!
//! The scheduler reduces every [`RuntimeDistribution`] to a small set of
//! `(runtime, probability)` mass points once per cycle. All of §3's math
//! then becomes cheap sums: Eq. 1's expected utility is a weighted sum over
//! the points, Eq. 3's expected resource consumption is the survival
//! function of the point set, and Eq. 2's conditional update is a filter
//! plus renormalisation. Off-preferred placement (×1.5 runtime) is a scale
//! of the point abscissae.
//!
//! Survival queries are the capacity-row hot path (one per option per time
//! slot per equivalence set, every cycle), so construction precomputes a
//! suffix-sum table over the sorted points: [`DiscreteDist::survival`] is
//! then a binary search plus a table lookup instead of a full scan. The
//! table stores *forward* partial sums (`suffix[k]` is `p[k] + p[k+1] + …`
//! accumulated left-to-right), which makes the lookup bit-for-bit identical
//! to the linear filter-and-sum it replaces; [`DiscreteDist::survival_linear`]
//! keeps that reference implementation alive for the property tests.

use threesigma_histogram::{Dist, RuntimeDistribution};

/// Instrumentation: counts mass-point entries examined by survival queries.
///
/// [`DiscreteDist::survival_linear`] charges one op per point;
/// [`DiscreteDist::survival`] charges one op per binary-search probe plus
/// one for the table lookup. The `micro_latency` bench uses the counter to
/// demonstrate the scan-op reduction of the precomputed table; the counter
/// has no effect on results.
pub mod scan_ops {
    use std::sync::atomic::{AtomicU64, Ordering};

    static OPS: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn add(n: u64) {
        OPS.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets the global counter to zero.
    pub fn reset() {
        OPS.store(0, Ordering::Relaxed);
    }

    /// Current counter value (entries examined since the last reset).
    pub fn get() -> u64 {
        OPS.load(Ordering::Relaxed)
    }
}

/// A discrete runtime distribution: sorted `(runtime, probability)` points
/// with probabilities summing to 1, plus a precomputed survival table.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    points: Vec<(f64, f64)>,
    /// `suffix[k] = p[k] + p[k+1] + … + p[n-1]` (forward accumulation);
    /// `suffix[n]` is the empty sum. `survival(t)` is
    /// `suffix[partition_point(t)]`.
    suffix: Vec<f64>,
}

impl DiscreteDist {
    /// Builds from sorted points, precomputing the survival table.
    ///
    /// Each `suffix[k]` is accumulated left-to-right over `points[k..]`, in
    /// the same order as the linear scan it replaces, so lookups agree
    /// exactly (not just approximately) with [`Self::survival_linear`].
    /// The O(n²) construction is amortised across cycles by the scheduler's
    /// estimate cache (n ≤ the configured `mass_points`, typically 40).
    fn with_points(points: Vec<(f64, f64)>) -> Self {
        let n = points.len();
        // Every entry — including the empty tail at k = n — uses the same
        // sum expression as the linear scan, so even the empty-sum zero has
        // the same sign bit (`Iterator::sum` for floats starts from -0.0).
        let suffix = (0..=n)
            .map(|k| points[k..].iter().map(|(_, p)| p).sum())
            .collect();
        Self { points, suffix }
    }

    /// Discretises a [`RuntimeDistribution`] into at most `max_points`
    /// mass points.
    pub fn from_distribution(dist: &RuntimeDistribution, max_points: usize) -> Self {
        let mut points = dist.mass_points(max_points.max(1));
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        let d = Self::with_points(points);
        debug_assert!(d.is_normalised());
        d
    }

    /// A single point mass (how point-estimate schedulers see a job).
    pub fn point(runtime: f64) -> Self {
        Self::with_points(vec![(runtime.max(0.0), 1.0)])
    }

    /// Builds directly from points (must be sorted; for tests/examples).
    ///
    /// # Panics
    ///
    /// Panics if the points are unsorted or probabilities do not sum to ~1.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "points must be sorted by runtime"
        );
        let d = Self::with_points(points);
        assert!(d.is_normalised(), "probabilities must sum to 1");
        d
    }

    fn is_normalised(&self) -> bool {
        let total: f64 = self.points.iter().map(|(_, p)| p).sum();
        (total - 1.0).abs() < 1e-6
    }

    /// The mass points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Scales all runtimes by `factor` (off-preferred slowdown).
    ///
    /// Probabilities are unchanged, so the survival table carries over.
    pub fn scale(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self {
            points: self.points.iter().map(|(t, p)| (t * factor, *p)).collect(),
            suffix: self.suffix.clone(),
        }
    }

    /// Conditions on the job having already run `elapsed` seconds (Eq. 2).
    ///
    /// If `elapsed` exceeds every supported runtime (the distribution is
    /// exhausted — an under-estimate), the conditional collapses to a point
    /// mass at `elapsed`; the caller layers exp-inc handling on top.
    pub fn condition(&self, elapsed: f64) -> Self {
        let kept: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|(t, _)| *t > elapsed)
            .copied()
            .collect();
        let total: f64 = kept.iter().map(|(_, p)| p).sum();
        if total <= 1e-12 {
            return Self::point(elapsed);
        }
        Self::with_points(kept.into_iter().map(|(t, p)| (t, p / total)).collect())
    }

    /// `P(T > t)` — probability the job still holds resources after running
    /// for `t` seconds (Eq. 3's `1 − CDF`).
    ///
    /// O(log n): binary search for the first point past `t`, then a suffix
    /// table lookup. Agrees exactly with [`Self::survival_linear`].
    pub fn survival(&self, t: f64) -> f64 {
        let mut probes = 0u64;
        let k = self.points.partition_point(|&(ti, _)| {
            probes += 1;
            ti <= t
        });
        scan_ops::add(probes + 1);
        self.suffix[k]
    }

    /// Reference O(n) survival: the filter-and-sum scan the suffix table
    /// replaced. Kept public so property tests can assert exact agreement.
    pub fn survival_linear(&self, t: f64) -> f64 {
        scan_ops::add(self.points.len() as u64);
        self.points
            .iter()
            .filter(|(ti, _)| *ti > t)
            .map(|(_, p)| p)
            .sum()
    }

    /// `P(T ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }

    /// Expected runtime.
    pub fn mean(&self) -> f64 {
        self.points.iter().map(|(t, p)| t * p).sum()
    }

    /// Variance of the runtime (second central moment of the mass points).
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.points
            .iter()
            .map(|(t, p)| p * (t - mean) * (t - mean))
            .sum()
    }

    /// Largest supported runtime (the under-estimate trigger of §4.2.1).
    pub fn upper(&self) -> f64 {
        self.points.last().map_or(0.0, |(t, _)| *t)
    }

    /// Smallest supported runtime.
    pub fn lower(&self) -> f64 {
        self.points.first().map_or(0.0, |(t, _)| *t)
    }

    /// True once `elapsed` exceeds every supported runtime.
    pub fn is_exhausted_at(&self, elapsed: f64) -> bool {
        elapsed >= self.upper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_histogram::Uniform;

    fn uniform_0_10() -> DiscreteDist {
        DiscreteDist::from_distribution(&RuntimeDistribution::Uniform(Uniform::new(0.0, 10.0)), 40)
    }

    #[test]
    fn from_distribution_preserves_mean() {
        let d = uniform_0_10();
        assert!((d.mean() - 5.0).abs() < 0.2, "mean {}", d.mean());
        assert!(d.points().len() <= 40);
    }

    #[test]
    fn survival_decreases_like_fig5() {
        let d = uniform_0_10();
        assert!((d.survival(0.0) - 1.0).abs() < 0.05);
        assert!((d.survival(2.5) - 0.75).abs() < 0.05);
        assert!((d.survival(5.0) - 0.5).abs() < 0.05);
        assert!((d.survival(7.5) - 0.25).abs() < 0.05);
        assert_eq!(d.survival(10.0), 0.0);
    }

    #[test]
    fn survival_table_matches_linear_scan_exactly() {
        // Bitwise agreement, including at and around every support point.
        let samples: Vec<f64> = (0..500).map(|i| 50.0 + (i % 97) as f64 * 13.0).collect();
        let rd = RuntimeDistribution::from_samples(&samples, 80).unwrap();
        for d in [
            uniform_0_10(),
            DiscreteDist::from_distribution(&rd, 40),
            DiscreteDist::point(5.0),
            DiscreteDist::from_points(vec![(1.0, 0.25), (1.0, 0.25), (2.0, 0.5)]),
        ] {
            let mut probes: Vec<f64> = vec![-1.0, 0.0, f64::INFINITY];
            for &(t, _) in d.points() {
                probes.extend([t - 1e-9, t, t + 1e-9, t / 2.0, t * 2.0]);
            }
            for t in probes {
                assert_eq!(
                    d.survival(t).to_bits(),
                    d.survival_linear(t).to_bits(),
                    "survival({t}) diverges"
                );
            }
        }
    }

    #[test]
    fn survival_table_survives_scale_and_condition() {
        let d = uniform_0_10();
        for dd in [d.scale(1.5), d.condition(4.0), d.scale(2.0).condition(3.0)] {
            for t in [0.0, 3.0, 4.5, 6.0, 11.0, 25.0] {
                assert_eq!(dd.survival(t).to_bits(), dd.survival_linear(t).to_bits());
            }
        }
    }

    #[test]
    fn binary_search_survival_uses_fewer_scan_ops() {
        let d = uniform_0_10();
        assert!(d.points().len() >= 16, "need a non-trivial point count");
        scan_ops::reset();
        for t in [1.0, 3.0, 5.0, 7.0, 9.0] {
            let _ = d.survival_linear(t);
        }
        let linear = scan_ops::get();
        scan_ops::reset();
        for t in [1.0, 3.0, 5.0, 7.0, 9.0] {
            let _ = d.survival(t);
        }
        let indexed = scan_ops::get();
        assert!(
            indexed * 2 <= linear,
            "expected ≥2× fewer ops: indexed={indexed} linear={linear}"
        );
    }

    #[test]
    fn scaling_stretches_time() {
        let d = DiscreteDist::point(100.0).scale(1.5);
        assert_eq!(d.mean(), 150.0);
        assert_eq!(d.upper(), 150.0);
        assert_eq!(d.survival(149.0), 1.0);
        assert_eq!(d.survival(150.0), 0.0);
    }

    #[test]
    fn conditioning_renormalises() {
        let d = uniform_0_10().condition(5.0);
        assert!((d.survival(7.5) - 0.5).abs() < 0.07, "{}", d.survival(7.5));
        assert!(d.lower() > 5.0);
        let total: f64 = d.points().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exhausted_condition_is_point_at_elapsed() {
        let d = uniform_0_10();
        assert!(d.is_exhausted_at(10.0));
        let c = d.condition(12.0);
        assert_eq!(c.points(), &[(12.0, 1.0)]);
    }

    #[test]
    fn point_mass_cdf_is_a_step() {
        let d = DiscreteDist::point(5.0);
        assert_eq!(d.cdf(4.9), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert!(!d.is_exhausted_at(4.9));
        assert!(d.is_exhausted_at(5.0));
    }

    #[test]
    fn conditioning_is_idempotent_past_elapsed() {
        let d = uniform_0_10();
        let once = d.condition(4.0);
        let twice = once.condition(4.0);
        assert_eq!(once.points().len(), twice.points().len());
        for (a, b) in once.points().iter().zip(twice.points()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12, "re-conditioning is a no-op");
        }
        // Conditioning further ahead only removes more mass.
        let further = once.condition(6.0);
        assert!(further.lower() >= 6.0);
        assert!(further.points().len() <= once.points().len());
    }

    #[test]
    fn condition_then_scale_commutes_with_scale_then_condition() {
        let d = uniform_0_10();
        let a = d.scale(1.5).condition(6.0);
        let b = d.condition(4.0).scale(1.5);
        // Same support and mass (scaling time by 1.5 maps elapsed 4 → 6).
        assert!((a.lower() - b.lower()).abs() < 1e-9);
        assert!((a.upper() - b.upper()).abs() < 1e-9);
        assert!((a.mean() - b.mean()).abs() < 1e-9);
    }

    #[test]
    fn survival_plus_cdf_is_one() {
        let d = DiscreteDist::from_points(vec![(1.0, 0.25), (2.0, 0.25), (5.0, 0.5)]);
        for t in [0.0, 1.0, 1.5, 2.0, 4.9, 5.0, 9.0] {
            assert!((d.survival(t) + d.cdf(t) - 1.0).abs() < 1e-12);
        }
        assert_eq!(d.lower(), 1.0);
        assert_eq!(d.upper(), 5.0);
    }

    #[test]
    fn variance_of_symmetric_two_point_mass() {
        let d = DiscreteDist::from_points(vec![(50.0, 0.5), (150.0, 0.5)]);
        assert_eq!(d.mean(), 100.0);
        assert_eq!(d.variance(), 2500.0);
        assert_eq!(DiscreteDist::point(42.0).variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_points_panic() {
        let _ = DiscreteDist::from_points(vec![(5.0, 0.5), (1.0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn unnormalised_points_panic() {
        let _ = DiscreteDist::from_points(vec![(1.0, 0.5), (2.0, 0.2)]);
    }
}
