//! Paper-to-code map: where each concept of the EuroSys'18 paper lives.
//!
//! This module contains no code — it is a reviewer's index from the paper's
//! sections, equations, figures, and tables to the items implementing them.
//!
//! # Concepts and mechanisms
//!
//! | Paper | Code |
//! |---|---|
//! | §3.1 utility functions, Fig. 3(a)/(d) | [`UtilityCurve`](crate::UtilityCurve) (`SloStep`, `SloDecay`, `BeLinear`) |
//! | Eq. 1 expected utility | [`UtilityCurve::expected`](crate::UtilityCurve::expected) over [`DiscreteDist`](crate::DiscreteDist) mass points |
//! | §3.2 expected resource consumption (`1 − CDF`) | [`DiscreteDist::survival`](crate::DiscreteDist::survival); capacity rows in `ThreeSigmaScheduler::schedule` |
//! | Eq. 2 conditional distribution of running jobs | [`DiscreteDist::condition`](crate::DiscreteDist::condition) / `threesigma_histogram::ConditionalDist` |
//! | §4.1 3σPredict features | `threesigma_predict::FeatureSet::standard` |
//! | §4.1 experts (average / median / rolling α=0.6 / recent-X) | `threesigma_predict::EstimatorKind`, scored by NMAE in `ValueState` |
//! | §4.1 streaming histogram (≤80 bins) | `threesigma_histogram::StreamingHistogram` (Ben-Haim & Tom-Tov) |
//! | §4.2.1 exp-inc under-estimate handling | `UnderEst` state inside [`ThreeSigmaScheduler`](crate::ThreeSigmaScheduler) |
//! | §4.2.2 over-estimate handling (decaying utility) | `UtilityCurve::SloDecay` via [`OverestimateMode::Always`](crate::OverestimateMode) |
//! | §4.2.3 adaptive enabling (deadline as upper-bound proxy) | [`OverestimateMode::Adaptive`](crate::OverestimateMode) + `oe_threshold` |
//! | §4.3.3 MILP formulation (indicators, demand, capacity) | `ThreeSigmaScheduler::schedule` compiling into `threesigma_milp::Model` |
//! | §4.3.3 equivalence sets | capacity rows per distinct preferred rack-set (bitmasks) |
//! | §4.3.5 preemption terms (cost `P_r`, capacity credit) | preemption indicator variables + `preemption_cost` |
//! | §4.3.6 warm start / best-within-budget / plan-ahead bound / pruning | `threesigma_milp::BranchAndBound::solve_with_warm_start`, `SolverConfig`, `plan_slots`, zero-term pruning in `Model::add_constraint` |
//! | Table 1 systems | [`SchedulerKind`](crate::SchedulerKind) |
//! | §5 workloads (E2E, DEADLINE-n, LOAD-ℓ, SAMPLE-n, SCALABILITY-n) | `threesigma_workload::WorkloadConfig` (+ `with_slack`, `with_load`, `ArrivalTarget::JobsPerHour`, `PredictorConfig::sample_cap`) |
//! | §5 cluster RC256/SC256 | `threesigma_cluster::ClusterSpec` (+ `RcFidelity`) |
//! | §5 success metrics | `threesigma_cluster::Metrics` |
//!
//! # Figures and tables → bench harnesses
//!
//! | Paper | Harness |
//! |---|---|
//! | Fig. 1 | Google rows of `benches/fig07_workloads` |
//! | Fig. 2(a–d) | `benches/fig02_traces` |
//! | Figs. 3 & 5 (worked example) | `examples/worked_example.rs`; unit tests in [`utility`](crate::utility) and `sched::threesigma` |
//! | Fig. 6 + Table 2 | `benches/fig06_e2e_real` |
//! | Fig. 7 | `benches/fig07_workloads` |
//! | Fig. 8 | `benches/fig08_ablation` |
//! | Fig. 9 | `benches/fig09_perturb` |
//! | Fig. 10 | `benches/fig10_load` |
//! | Fig. 11 | `benches/fig11_samples` |
//! | Fig. 12 | `benches/fig12_scalability` + `benches/micro_latency` |
//!
//! # Extensions beyond the paper
//!
//! * [`SchedulerKind::PointPaddedEst`](crate::SchedulerKind) — §2.2's "stochastic scheduler" heuristic.
//! * [`SchedulerKind::Backfill`](crate::SchedulerKind) — EASY backfilling ([`BackfillScheduler`](crate::BackfillScheduler)).
//! * [`PlanRecord`](crate::PlanRecord) — per-cycle plan introspection.
//! * `benches/ablation_knobs` — quantifies the engineering knobs the paper leaves unquantified.
//! * `threesigma_predict::Predictor::snapshot` — history persistence.
//! * The `threesigma` CLI (`crates/cli`).
