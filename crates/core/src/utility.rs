//! Utility curves and expected utility (§3.1, Fig. 3).
//!
//! Each job maps completion time to utility. SLO jobs are a step: full
//! utility up to the deadline, zero after (Fig. 3(a)). Over-estimate
//! handling replaces the hard drop with a linear decay past the deadline
//! (Fig. 3(d)) so seemingly impossible jobs keep a small positive utility
//! and still get scheduled when resources are idle (§4.2.2). Best-effort
//! jobs decay linearly from submission to express "the sooner the better".
//!
//! Eq. 1 — the expected utility of starting a job at `start` — is the
//! utility at each possible completion time weighted by the runtime mass
//! points.

use crate::dist::DiscreteDist;

/// A job's utility as a function of its completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UtilityCurve {
    /// SLO step: `weight` until `deadline`, zero after (Fig. 3(a)).
    SloStep {
        /// Utility while the deadline is met.
        weight: f64,
        /// Absolute deadline.
        deadline: f64,
    },
    /// SLO step with over-estimate handling: `weight` until `deadline`,
    /// then a linear decay hitting zero at `zero_at` (Fig. 3(d)).
    SloDecay {
        /// Utility while the deadline is met.
        weight: f64,
        /// Absolute deadline.
        deadline: f64,
        /// Completion time at which the post-deadline utility reaches zero.
        zero_at: f64,
    },
    /// Best-effort: linear decay from `weight` at `submit` down to
    /// `weight · floor` at `submit + horizon` (and flat after), expressing
    /// latency sensitivity while keeping starvation impossible.
    BeLinear {
        /// Utility at instant completion.
        weight: f64,
        /// Submission time.
        submit: f64,
        /// Time span over which utility decays to the floor.
        horizon: f64,
        /// Fraction of `weight` retained forever (> 0 avoids starvation).
        floor: f64,
    },
}

impl UtilityCurve {
    /// Utility of completing at `completion`.
    pub fn value(&self, completion: f64) -> f64 {
        match *self {
            UtilityCurve::SloStep { weight, deadline } => {
                if completion <= deadline {
                    weight
                } else {
                    0.0
                }
            }
            UtilityCurve::SloDecay {
                weight,
                deadline,
                zero_at,
            } => {
                if completion <= deadline {
                    weight
                } else if completion >= zero_at || zero_at <= deadline {
                    // A degenerate decay window (zero_at ≤ deadline, e.g.
                    // zero step height or span 0) acts like the hard step:
                    // the slope is never evaluated, so it cannot divide by
                    // zero or go negative.
                    0.0
                } else {
                    // Both differences are positive here; the clamp keeps
                    // the fraction in [0, 1] even at float extremes (e.g.
                    // a huge zero_at where the ratio rounds past 1), so no
                    // NaN or negative utility can reach the MILP objective.
                    let frac = ((zero_at - completion) / (zero_at - deadline)).clamp(0.0, 1.0);
                    weight * frac
                }
            }
            UtilityCurve::BeLinear {
                weight,
                submit,
                horizon,
                floor,
            } => {
                let age = (completion - submit).max(0.0);
                let frac = if horizon > 0.0 {
                    (1.0 - age / horizon).max(floor)
                } else {
                    floor
                };
                weight * frac
            }
        }
    }

    /// Eq. 1: expected utility of starting at `start` under runtime
    /// distribution `dist` (mass points over runtimes).
    pub fn expected(&self, start: f64, dist: &DiscreteDist) -> f64 {
        dist.points()
            .iter()
            .map(|(t, p)| p * self.value(start + t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_histogram::{RuntimeDistribution, Uniform};

    fn uniform(lo: f64, hi: f64) -> DiscreteDist {
        DiscreteDist::from_distribution(&RuntimeDistribution::Uniform(Uniform::new(lo, hi)), 64)
    }

    #[test]
    fn slo_step_is_binary() {
        let u = UtilityCurve::SloStep {
            weight: 10.0,
            deadline: 100.0,
        };
        assert_eq!(u.value(99.0), 10.0);
        assert_eq!(u.value(100.0), 10.0);
        assert_eq!(u.value(100.1), 0.0);
    }

    #[test]
    fn slo_decay_degrades_gracefully() {
        let u = UtilityCurve::SloDecay {
            weight: 10.0,
            deadline: 100.0,
            zero_at: 200.0,
        };
        assert_eq!(u.value(50.0), 10.0);
        assert!((u.value(150.0) - 5.0).abs() < 1e-12);
        assert_eq!(u.value(200.0), 0.0);
        assert_eq!(u.value(500.0), 0.0);
    }

    #[test]
    fn degenerate_decay_window_acts_like_step() {
        let u = UtilityCurve::SloDecay {
            weight: 1.0,
            deadline: 100.0,
            zero_at: 100.0,
        };
        assert_eq!(u.value(100.0), 1.0);
        assert_eq!(u.value(101.0), 0.0);
    }

    #[test]
    fn be_linear_prefers_sooner_and_never_starves() {
        let u = UtilityCurve::BeLinear {
            weight: 1.0,
            submit: 0.0,
            horizon: 100.0,
            floor: 0.05,
        };
        assert!(u.value(10.0) > u.value(50.0));
        assert!((u.value(0.0) - 1.0).abs() < 1e-12);
        assert!((u.value(1e6) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn expected_utility_matches_fig5_scenario1() {
        // Fig. 5(e): SLO job, deadline 15, runtime ~ U(0,10). Expected
        // utility at start s is P(completion ≤ 15) = P(T ≤ 15 − s).
        let u = UtilityCurve::SloStep {
            weight: 1.0,
            deadline: 15.0,
        };
        let d = uniform(0.0, 10.0);
        assert!((u.expected(0.0, &d) - 1.0).abs() < 0.02);
        assert!((u.expected(5.0, &d) - 1.0).abs() < 0.02);
        assert!((u.expected(7.5, &d) - 0.75).abs() < 0.05);
        assert!((u.expected(10.0, &d) - 0.5).abs() < 0.05);
        assert!((u.expected(12.5, &d) - 0.25).abs() < 0.05);
        assert!(u.expected(15.0, &d) < 0.05);
    }

    #[test]
    fn expected_utility_matches_fig5_scenario2() {
        // Fig. 5(f): runtime ~ U(2.5, 7.5): utility 1 up to s = 7.5, then a
        // steeper fall to 0 at s = 12.5.
        let u = UtilityCurve::SloStep {
            weight: 1.0,
            deadline: 15.0,
        };
        let d = uniform(2.5, 7.5);
        assert!((u.expected(7.5, &d) - 1.0).abs() < 0.03);
        assert!((u.expected(10.0, &d) - 0.5).abs() < 0.05);
        assert!(u.expected(12.5, &d) < 0.03);
    }

    #[test]
    fn point_estimates_cliff_versus_distribution_slope() {
        // The point scheduler sees utility 1 right up to deadline − 5 and 0
        // after — no risk gradient; the distribution sees the slope.
        let u = UtilityCurve::SloStep {
            weight: 1.0,
            deadline: 15.0,
        };
        let point = DiscreteDist::point(5.0);
        assert_eq!(u.expected(10.0, &point), 1.0);
        assert_eq!(u.expected(10.1, &point), 0.0);
        let dist = uniform(0.0, 10.0);
        let e = u.expected(10.0, &dist);
        assert!(e > 0.4 && e < 0.6, "graded risk, got {e}");
    }

    #[test]
    fn expected_utility_never_exceeds_weight() {
        let d = uniform(1.0, 100.0);
        for curve in [
            UtilityCurve::SloStep {
                weight: 7.0,
                deadline: 50.0,
            },
            UtilityCurve::SloDecay {
                weight: 7.0,
                deadline: 50.0,
                zero_at: 200.0,
            },
            UtilityCurve::BeLinear {
                weight: 7.0,
                submit: 0.0,
                horizon: 100.0,
                floor: 0.1,
            },
        ] {
            for start in [0.0, 25.0, 80.0, 500.0] {
                let e = curve.expected(start, &d);
                assert!((0.0..=7.0 + 1e-9).contains(&e), "{curve:?} at {start}: {e}");
            }
        }
    }

    #[test]
    fn be_expected_utility_decreases_with_start() {
        let d = uniform(10.0, 50.0);
        let u = UtilityCurve::BeLinear {
            weight: 1.0,
            submit: 0.0,
            horizon: 1000.0,
            floor: 0.02,
        };
        let mut prev = f64::INFINITY;
        for start in [0.0, 100.0, 400.0, 900.0, 2000.0] {
            let e = u.expected(start, &d);
            assert!(e <= prev + 1e-12);
            prev = e;
        }
        // The floor keeps even very late completions attractive enough.
        assert!(u.expected(1e6, &d) > 0.0);
    }

    #[test]
    fn decay_curve_dominates_step_curve() {
        let d = uniform(1.0, 300.0);
        let step = UtilityCurve::SloStep {
            weight: 5.0,
            deadline: 100.0,
        };
        let decay = UtilityCurve::SloDecay {
            weight: 5.0,
            deadline: 100.0,
            zero_at: 500.0,
        };
        for start in [0.0, 50.0, 150.0, 300.0] {
            assert!(decay.expected(start, &d) >= step.expected(start, &d) - 1e-12);
        }
    }

    #[test]
    fn zero_step_height_and_zero_span_are_well_defined() {
        // Step height 0: utility is identically zero, never NaN (the slope
        // would be 0/positive or, with span 0, 0/0 if evaluated naively).
        let flat = UtilityCurve::SloDecay {
            weight: 0.0,
            deadline: 100.0,
            zero_at: 100.0,
        };
        for c in [0.0, 100.0, 100.5, 1e9] {
            let v = flat.value(c);
            assert_eq!(v, 0.0, "value({c}) = {v}");
            assert!(!v.is_nan());
        }
        // Decay window starting exactly at the deadline (zero span, nonzero
        // weight): behaves as a step with no NaN at the boundary.
        let step_like = UtilityCurve::SloDecay {
            weight: 5.0,
            deadline: 100.0,
            zero_at: 100.0,
        };
        assert_eq!(step_like.value(100.0), 5.0);
        assert_eq!(step_like.value(100.0 + f64::EPSILON * 200.0), 0.0);
        let d = DiscreteDist::point(50.0);
        assert!(step_like.expected(0.0, &d).is_finite());
        assert!(flat.expected(0.0, &d) == 0.0);
    }

    mod decay_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // §4.2.2 safety envelope: for any decay curve (including zero
            // weight and zero span) utility is finite, within [0, weight],
            // and monotone non-increasing in completion time — in
            // particular past the deadline, where the slope lives.
            #[test]
            fn decay_utility_is_monotone_and_bounded(
                weight in 0.0f64..100.0,
                deadline in 0.0f64..1e6,
                span in 0.0f64..1e6,
                mut completions in prop::collection::vec(0.0f64..4e6, 2..32),
            ) {
                let u = UtilityCurve::SloDecay {
                    weight,
                    deadline,
                    zero_at: deadline + span,
                };
                completions.sort_by(f64::total_cmp);
                let mut prev = f64::INFINITY;
                for &c in &completions {
                    let v = u.value(c);
                    prop_assert!(v.is_finite(), "value({c}) = {v}");
                    prop_assert!(v >= 0.0, "negative utility {v} at {c}");
                    prop_assert!(v <= weight, "utility {v} above weight {weight}");
                    prop_assert!(
                        v <= prev,
                        "not non-increasing: value({c}) = {v} after {prev}"
                    );
                    prev = v;
                }
            }

            // Eq. 1 under the decay curve inherits the envelope: finite
            // and within [0, weight] for any start and mass points.
            #[test]
            fn decay_expected_utility_stays_in_envelope(
                weight in 0.0f64..100.0,
                deadline in 0.0f64..1e5,
                span in 0.0f64..1e5,
                start in 0.0f64..1e6,
                lo in 0.1f64..1e3,
                width in 0.0f64..1e3,
            ) {
                let u = UtilityCurve::SloDecay {
                    weight,
                    deadline,
                    zero_at: deadline + span,
                };
                let d = DiscreteDist::from_distribution(
                    &RuntimeDistribution::Uniform(Uniform::new(lo, lo + width.max(1e-6))),
                    16,
                );
                let e = u.expected(start, &d);
                prop_assert!(e.is_finite(), "expected({start}) = {e}");
                prop_assert!((0.0..=weight * (1.0 + 1e-12)).contains(&e), "{e}");
            }
        }
    }

    #[test]
    fn overestimate_handling_keeps_impossible_jobs_alive() {
        // All history says 200 s, deadline is in 100 s: step utility is 0,
        // decay utility is positive.
        let step = UtilityCurve::SloStep {
            weight: 10.0,
            deadline: 100.0,
        };
        let decay = UtilityCurve::SloDecay {
            weight: 10.0,
            deadline: 100.0,
            zero_at: 400.0,
        };
        let d = DiscreteDist::point(200.0);
        assert_eq!(step.expected(0.0, &d), 0.0);
        let e = decay.expected(0.0, &d);
        assert!(e > 0.0 && e < 10.0, "positive but discounted, got {e}");
    }
}
