//! 3σSched: distribution-based cluster scheduling for runtime uncertainty.
//!
//! This crate is the paper's primary contribution (EuroSys'18): a
//! cycle-based MILP scheduler that plans over *runtime distributions*
//! instead of point estimates, together with the baseline schedulers the
//! paper compares against and an end-to-end experiment driver.
//!
//! # Architecture (Fig. 4)
//!
//! 1. Jobs arrive via the cluster manager ([`threesigma_cluster::Engine`]).
//! 2. [`threesigma_predict::Predictor`] supplies each job's estimated
//!    runtime distribution from history.
//! 3. Each scheduling cycle, [`ThreeSigmaScheduler`] enumerates
//!    placement options (equivalence set × start slot within a plan-ahead
//!    window), values each by **expected utility** ([`utility`], Eq. 1),
//!    charges **expected resource consumption** ([`dist`], Eq. 2/3),
//!    compiles everything into a MILP ([`threesigma_milp`]) including
//!    preemption options, solves with a warm start and time budget, and
//!    converts the solution into placements.
//! 4. Measured runtimes feed back into the predictor on completion.
//!
//! Mis-estimation handling (§4.2): exponential-increment under-estimate
//! handling, graceful-decay over-estimate handling, and the adaptive policy
//! that enables the decay only for jobs whose distribution says the
//! deadline is likely unreachable.
//!
//! # Quickstart
//!
//! ```
//! use threesigma::driver::{Experiment, SchedulerKind};
//! use threesigma_workload::{generate, Environment, WorkloadConfig};
//!
//! let config = WorkloadConfig::e2e(Environment::Google, 42)
//!     .with_duration(600.0); // 10-minute toy trace
//! let trace = generate(&config);
//! let experiment = Experiment::paper_sc256();
//! let result = threesigma::driver::run(SchedulerKind::ThreeSigma, &trace, &experiment)
//!     .expect("simulation runs");
//! println!("SLO miss rate: {:.1}%", result.metrics.slo_miss_pct());
//! ```

pub mod dist;
pub mod driver;
pub mod paper;
pub mod sched;
pub mod utility;

pub use dist::DiscreteDist;
pub use driver::{
    run, run_observed, run_with_source, run_with_source_observed, CycleTraceWriter, Experiment,
    RunResult, SchedulerKind,
};
pub use sched::backfill::{BackfillScheduler, PointSource};
pub use sched::feasibility::{check_decision, FeasibilityViolation};
pub use sched::options::{CacheStats, EstimateCache, RackMask};
pub use sched::prio::PrioScheduler;
pub use sched::shard::ShardPlan;
pub use sched::threesigma::{
    CycleBudget, CycleTiming, EstimateSource, OverestimateMode, PlanRecord, PlannedJob,
    SchedConfig, SchedSnapshot, SchedStats, ThreeSigmaScheduler,
};
pub use utility::UtilityCurve;
