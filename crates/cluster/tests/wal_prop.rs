//! Property tests: the journal frame decoder is total and torn-write
//! tolerant.
//!
//! [`decode_journal`] is the trust boundary between disk bytes and
//! recovered state, so its contract is checked against adversarial
//! inputs rather than examples:
//!
//! * it never panics, on *any* byte string;
//! * it never returns a record whose CRC did not match — after any
//!   single-bit flip, the decoded entries are a strict prefix of the
//!   originals (the flipped frame and everything after it are dropped,
//!   never silently altered);
//! * torn-write recovery is byte-equivalent to a clean stop: truncating
//!   the file to the reported `valid_len` re-decodes with no defect and
//!   the identical entries;
//! * duplicated frames (what an interrupted truncation leaves behind) are
//!   skipped by sequence number, not re-applied.

use proptest::prelude::*;
use threesigma_cluster::wal::{decode_journal, encode_frame};
use threesigma_cluster::{JobKind, JobSpec, WalEntry, WalRecord, WAL_MAGIC};

/// Builds a valid journal byte stream of `n` frames from flat samples.
fn journal(n: usize, ids: &[u64], times: &[f64]) -> (Vec<u8>, Vec<WalEntry>) {
    let mut bytes = WAL_MAGIC.to_vec();
    let mut entries = Vec::new();
    for i in 0..n {
        let record = match i % 3 {
            0 => WalRecord::Clock { now: times[i] },
            1 => WalRecord::Job(
                JobSpec::new(
                    ids[i],
                    times[i],
                    1 + (ids[i] % 7) as u32,
                    10.0,
                    JobKind::BestEffort,
                )
                .with_attributes(
                    threesigma_cluster::Attributes::new()
                        .with("tenant", format!("t{}", ids[i] % 5)),
                ),
            ),
            _ => WalRecord::Job(JobSpec::new(
                ids[i],
                times[i],
                2,
                30.0,
                JobKind::Slo {
                    deadline: times[i] + 120.0,
                },
            )),
        };
        let entry = WalEntry {
            seq: (i + 1) as u64,
            record,
        };
        bytes.extend_from_slice(&encode_frame(&entry).expect("small frame encodes"));
        entries.push(entry);
    }
    (bytes, entries)
}

/// Clean-stop equivalence: re-decoding the reported valid prefix must be
/// defect-free and reproduce exactly the same entries. This is the
/// property `Wal::open` relies on when it repairs a torn tail by
/// truncation.
fn assert_prefix_clean(bytes: &[u8]) {
    let first = decode_journal(bytes);
    let prefix = &bytes[..first.valid_len as usize];
    let again = decode_journal(prefix);
    prop_assert_eq!(again.defect, None, "valid prefix re-decodes cleanly");
    prop_assert_eq!(again.entries, first.entries);
    prop_assert_eq!(again.duplicates, first.duplicates);
    prop_assert_eq!(again.valid_len, first.valid_len);
}

proptest! {
    /// Totality on garbage: arbitrary bytes never panic the decoder, the
    /// valid prefix never exceeds the input, and the prefix property
    /// holds even for junk that happens to start with the magic.
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in prop::collection::vec(0u16..256, 0..400),
        with_magic in 0u8..2,
    ) {
        let mut bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        if with_magic == 1 {
            let mut prefixed = WAL_MAGIC.to_vec();
            prefixed.append(&mut bytes);
            bytes = prefixed;
        }
        let decode = decode_journal(&bytes);
        prop_assert!(decode.valid_len as usize <= bytes.len());
        assert_prefix_clean(&bytes);
    }

    /// Truncation at any offset models a torn write: the decoded entries
    /// are a prefix of the originals and the repaired file is
    /// byte-equivalent to a clean stop.
    #[test]
    fn truncation_yields_a_clean_prefix(
        n in 1usize..12,
        ids in prop::collection::vec(1u64..1_000, 12),
        times in prop::collection::vec(0.0f64..10_000.0, 12),
        cut_frac in 0.0f64..1.0,
    ) {
        let (bytes, entries) = journal(n, &ids, &times);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let torn = &bytes[..cut];
        let decode = decode_journal(torn);
        prop_assert!(decode.entries.len() <= entries.len());
        prop_assert_eq!(
            &decode.entries[..],
            &entries[..decode.entries.len()],
            "decoded entries must be a prefix of what was written"
        );
        prop_assert_eq!(decode.duplicates, 0);
        assert_prefix_clean(torn);
    }

    /// A single flipped bit anywhere in the stream never panics and never
    /// leaks a corrupt record: the output is still a prefix of the
    /// original entries (the CRC, length, or magic check stops decoding
    /// at the damaged frame).
    #[test]
    fn bit_flips_never_leak_corrupt_records(
        n in 1usize..12,
        ids in prop::collection::vec(1u64..1_000, 12),
        times in prop::collection::vec(0.0f64..10_000.0, 12),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut bytes, entries) = journal(n, &ids, &times);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let decode = decode_journal(&bytes);
        // Strictly fewer entries than written iff the flip landed in a
        // live frame; either way nothing corrupt is surfaced.
        prop_assert!(decode.entries.len() <= entries.len());
        prop_assert_eq!(
            &decode.entries[..],
            &entries[..decode.entries.len()],
            "a flipped bit must truncate, never alter, the recovered log"
        );
        assert_prefix_clean(&bytes);
    }

    /// Re-appended old frames (an interrupted truncation's leftovers) are
    /// skipped by their stale sequence numbers, not applied twice.
    #[test]
    fn duplicated_frames_are_skipped(
        n in 2usize..12,
        ids in prop::collection::vec(1u64..1_000, 12),
        times in prop::collection::vec(0.0f64..10_000.0, 12),
        dup_frac in 0.0f64..1.0,
    ) {
        let (mut bytes, entries) = journal(n, &ids, &times);
        let dup = (n as f64 * dup_frac) as usize % n;
        let frame = encode_frame(&entries[dup]).expect("frame re-encodes");
        bytes.extend_from_slice(&frame);
        let decode = decode_journal(&bytes);
        prop_assert_eq!(decode.defect, None);
        prop_assert_eq!(decode.entries, entries);
        prop_assert_eq!(decode.duplicates, 1);
        prop_assert_eq!(decode.valid_len as usize, bytes.len());
        assert_prefix_clean(&bytes);
    }
}
