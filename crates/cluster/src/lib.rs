//! Discrete-event cluster simulator substrate for 3Sigma.
//!
//! The paper evaluates on a 256-node physical cluster driven through YARN
//! (RC256) and on a faster simulated twin (SC256), and validates that both
//! agree (Table 2). This crate is our substitute for both: a deterministic
//! discrete-event engine that models
//!
//! * a cluster as a set of resource **partitions** (racks) holding
//!   interchangeable nodes — the "equivalence set" granularity 3σSched
//!   reasons at (§4.3.3),
//! * **gang-scheduled** jobs: all `tasks` nodes are held from placement until
//!   the job finishes or is preempted (kill-based, as in container clusters),
//! * **placement preference**: a job runs `nonpreferred_slowdown`× longer if
//!   any of its allocation lands outside its preferred partitions (§5),
//! * a pluggable [`Scheduler`] invoked on a periodic scheduling cycle with a
//!   full view of pending/running jobs and free capacity,
//! * an optional **real-cluster fidelity** mode ([`RcFidelity`]) adding the
//!   runtime jitter and placement latency that separate RC256 from SC256.
//!
//! The engine is single-threaded and fully deterministic given a seed, so
//! every experiment in the bench harness is reproducible.

pub mod engine;
pub mod job;
pub mod metrics;
pub mod serve;
pub mod spec;
pub mod wal;

pub use engine::{
    CycleObserver, CycleStats, Engine, EngineConfig, EngineSnapshot, FaultEvent, Placement,
    RunningJob, Scheduler, SchedulingDecision, SimError, SimulationView, SnapshotRunning,
};
pub use job::{Attributes, JobId, JobKind, JobSpec, RetryPolicy};
pub use metrics::{JobOutcome, JobState, Metrics};
pub use serve::{
    RetiredAggregate, ServeConfig, ServeSession, ServeSnapshot, ServeSummary, SNAPSHOT_VERSION,
};
pub use spec::{ClusterSpec, PartitionId, RcFidelity};
pub use wal::{
    DataDir, FrameDefect, JournalDecode, Recovered, SnapshotFile, Wal, WalEntry, WalError,
    WalMetrics, WalRecord, WalRecovery, SNAPSHOT_FORMAT_VERSION, WAL_MAGIC,
};
