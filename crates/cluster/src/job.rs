//! Job model: what the cluster manager knows about a job.
//!
//! The *actual* runtime is carried in the spec (the trace knows it) but is
//! hidden from schedulers by the engine — only `PointPerfEst`-style oracle
//! schedulers are handed it explicitly by the experiment harness.

use serde::{Deserialize, Serialize};

use crate::spec::PartitionId;

/// Unique job identifier within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// SLO (deadline) or latency-sensitive best-effort job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobKind {
    /// Production job with a completion deadline (absolute time).
    Slo {
        /// Absolute deadline (seconds since trace start).
        deadline: f64,
    },
    /// Latency-sensitive best-effort job (the sooner the better).
    BestEffort,
}

impl JobKind {
    /// True for SLO jobs.
    pub fn is_slo(&self) -> bool {
        matches!(self, JobKind::Slo { .. })
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<f64> {
        match self {
            JobKind::Slo { deadline } => Some(*deadline),
            JobKind::BestEffort => None,
        }
    }
}

/// Opaque job attributes (user, job name, priority, ...) — the features
/// 3σPredict builds histories over. Order-preserving list of key/value
/// pairs; keys are unique.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attributes(Vec<(String, String)>);

impl Attributes {
    /// Empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces an attribute.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        match self.0.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.0.push((key, value)),
        }
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up an attribute value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Retry policy for jobs killed mid-flight by faults.
///
/// A killed job re-enters the pending queue after an exponential backoff
/// (`backoff_base · 2^(attempt−1)`, saturating at `backoff_cap` — the same
/// saturating-doubling shape as the §4.2.1 exp-inc fix, so repeated kills
/// can neither overflow nor collapse the delay). After `max_retries` killed
/// attempts have been retried, the next kill cancels the job permanently
/// and it is counted as a retry cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Kills tolerated before the job is cancelled (0 = cancel on the
    /// first kill).
    pub max_retries: u32,
    /// Backoff before the first retry, in seconds.
    pub backoff_base: f64,
    /// Saturation cap on the backoff, in seconds.
    pub backoff_cap: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base: 5.0,
            backoff_cap: 300.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before retry number `attempt` (1-based; `0` means "no
    /// kill yet" and gets no delay). Monotone non-decreasing in `attempt`
    /// and saturating at [`Self::backoff_cap`].
    pub fn delay_for(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        // Saturating doubling: 2^(attempt-1) clamps to u64::MAX rather than
        // wrapping, so the min() below always lands on the cap.
        let factor = 1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX) as f64;
        (self.backoff_base * factor).min(self.backoff_cap)
    }
}

/// Full specification of one job in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Arrival time (seconds since trace start).
    pub submit_time: f64,
    /// Nodes required, gang-scheduled (the paper models Mapper-only jobs;
    /// one task per node).
    pub tasks: u32,
    /// Actual runtime in seconds on *preferred* resources. Hidden from
    /// schedulers; the engine uses it to generate completion events.
    pub duration: f64,
    /// SLO or best-effort.
    pub kind: JobKind,
    /// Preferred partitions (soft constraint). `None` — indifferent.
    pub preferred: Option<Vec<PartitionId>>,
    /// Runtime multiplier when any allocation is off-preferred (§5 uses
    /// 1.5×). Ignored when `preferred` is `None`.
    pub nonpreferred_slowdown: f64,
    /// Relative weight of this job's utility (SLO jobs outweigh BE jobs).
    pub utility_weight: f64,
    /// Attributes used by 3σPredict for history grouping.
    pub attributes: Attributes,
}

impl JobSpec {
    /// Minimal valid job; customise via struct update or the setters.
    pub fn new(id: u64, submit_time: f64, tasks: u32, duration: f64, kind: JobKind) -> Self {
        assert!(tasks > 0, "a job needs at least one task");
        assert!(duration > 0.0, "duration must be positive");
        assert!(submit_time >= 0.0, "submit time must be non-negative");
        Self {
            id: JobId(id),
            submit_time,
            tasks,
            duration,
            kind,
            preferred: None,
            nonpreferred_slowdown: 1.0,
            utility_weight: 1.0,
            attributes: Attributes::new(),
        }
    }

    /// Sets soft placement preference with the given off-preferred slowdown.
    pub fn with_preference(mut self, preferred: Vec<PartitionId>, slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be ≥ 1");
        self.preferred = Some(preferred);
        self.nonpreferred_slowdown = slowdown;
        self
    }

    /// Sets the utility weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.utility_weight = weight;
        self
    }

    /// Sets the attribute map.
    pub fn with_attributes(mut self, attributes: Attributes) -> Self {
        self.attributes = attributes;
        self
    }

    /// Runtime if executed on the given allocation: `duration`, scaled by
    /// the slowdown when any node is outside the preferred set.
    pub fn runtime_on(&self, allocation: &[(PartitionId, u32)]) -> f64 {
        match &self.preferred {
            None => self.duration,
            Some(pref) => {
                let off = allocation.iter().any(|(p, n)| *n > 0 && !pref.contains(p));
                if off {
                    self.duration * self.nonpreferred_slowdown
                } else {
                    self.duration
                }
            }
        }
    }

    /// Deadline slack fraction `(deadline − submit − duration) / duration`,
    /// if this is an SLO job (the workload knob of §5).
    pub fn deadline_slack(&self) -> Option<f64> {
        let deadline = self.kind.deadline()?;
        Some((deadline - self.submit_time - self.duration) / self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_set_get_replace() {
        let mut a = Attributes::new();
        a.set("user", "alice");
        a.set("job_name", "etl");
        assert_eq!(a.get("user"), Some("alice"));
        a.set("user", "bob");
        assert_eq!(a.get("user"), Some("bob"));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn runtime_scales_off_preferred() {
        let job = JobSpec::new(1, 0.0, 4, 100.0, JobKind::BestEffort)
            .with_preference(vec![PartitionId(0), PartitionId(1)], 1.5);
        let on = vec![(PartitionId(0), 2), (PartitionId(1), 2)];
        let off = vec![(PartitionId(0), 2), (PartitionId(2), 2)];
        assert_eq!(job.runtime_on(&on), 100.0);
        assert_eq!(job.runtime_on(&off), 150.0);
    }

    #[test]
    fn zero_count_allocations_do_not_trigger_slowdown() {
        let job = JobSpec::new(1, 0.0, 2, 50.0, JobKind::BestEffort)
            .with_preference(vec![PartitionId(0)], 2.0);
        let alloc = vec![(PartitionId(0), 2), (PartitionId(1), 0)];
        assert_eq!(job.runtime_on(&alloc), 50.0);
    }

    #[test]
    fn indifferent_jobs_never_slow_down() {
        let job = JobSpec::new(1, 0.0, 2, 50.0, JobKind::BestEffort);
        assert_eq!(job.runtime_on(&[(PartitionId(7), 2)]), 50.0);
    }

    #[test]
    fn deadline_slack_matches_definition() {
        // slack 60%: deadline = submit + 1.6·runtime.
        let job = JobSpec::new(1, 100.0, 1, 50.0, JobKind::Slo { deadline: 180.0 });
        assert!((job.deadline_slack().unwrap() - 0.6).abs() < 1e-12);
        let be = JobSpec::new(2, 0.0, 1, 50.0, JobKind::BestEffort);
        assert_eq!(be.deadline_slack(), None);
    }

    #[test]
    fn attributes_iterate_in_insertion_order() {
        let a = Attributes::new()
            .with("z", "1")
            .with("a", "2")
            .with("m", "3");
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
        assert!(!a.is_empty());
        assert!(Attributes::new().is_empty());
    }

    #[test]
    fn kind_helpers() {
        let slo = JobKind::Slo { deadline: 42.0 };
        assert!(slo.is_slo());
        assert_eq!(slo.deadline(), Some(42.0));
        assert!(!JobKind::BestEffort.is_slo());
        assert_eq!(JobKind::BestEffort.deadline(), None);
    }

    #[test]
    fn spec_json_roundtrip() {
        let job = JobSpec::new(9, 5.0, 3, 120.0, JobKind::Slo { deadline: 500.0 })
            .with_preference(vec![PartitionId(1), PartitionId(2)], 1.5)
            .with_weight(10.0)
            .with_attributes(Attributes::new().with("user", "u1"));
        let json = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn sub_unit_slowdown_panics() {
        let _ = JobSpec::new(1, 0.0, 1, 10.0, JobKind::BestEffort)
            .with_preference(vec![PartitionId(0)], 0.5);
    }

    #[test]
    #[should_panic(expected = "task")]
    fn zero_tasks_panic() {
        let _ = JobSpec::new(1, 0.0, 0, 10.0, JobKind::BestEffort);
    }

    mod backoff_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Safety envelope of the retry state machine: for any policy,
            // the backoff is finite, non-negative, monotone non-decreasing
            // in the attempt number, and saturates exactly at the cap —
            // even for attempt counts far past where 2^(attempt-1) would
            // overflow.
            #[test]
            fn backoff_is_monotone_and_saturating(
                base in 0.0f64..1e4,
                cap_factor in 1.0f64..1e6,
                attempts in prop::collection::vec(0u32..10_000, 2..32),
            ) {
                let policy = RetryPolicy {
                    max_retries: 3,
                    backoff_base: base,
                    backoff_cap: base * cap_factor,
                };
                let mut sorted = attempts;
                sorted.sort_unstable();
                let mut prev = 0.0f64;
                for &a in &sorted {
                    let d = policy.delay_for(a);
                    prop_assert!(d.is_finite(), "delay_for({a}) = {d}");
                    prop_assert!(d >= 0.0);
                    prop_assert!(
                        d <= policy.backoff_cap,
                        "delay {d} above cap {}",
                        policy.backoff_cap
                    );
                    prop_assert!(d >= prev, "backoff shrank: {prev} → {d} at attempt {a}");
                    prev = d;
                }
                // Far past the doubling range the delay IS the cap.
                prop_assert_eq!(policy.delay_for(100), policy.backoff_cap.min(
                    if policy.backoff_base > 0.0 { policy.backoff_cap } else { 0.0 }
                ));
            }
        }
    }

    #[test]
    fn retry_backoff_doubles_then_saturates() {
        let p = RetryPolicy {
            max_retries: 10,
            backoff_base: 5.0,
            backoff_cap: 30.0,
        };
        assert_eq!(p.delay_for(0), 0.0);
        assert_eq!(p.delay_for(1), 5.0);
        assert_eq!(p.delay_for(2), 10.0);
        assert_eq!(p.delay_for(3), 20.0);
        assert_eq!(p.delay_for(4), 30.0, "saturates at the cap");
        assert_eq!(p.delay_for(1000), 30.0, "huge attempts cannot overflow");
    }
}
