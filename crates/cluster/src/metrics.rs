//! Per-job outcomes and the paper's success metrics (§5).

use serde::{Deserialize, Serialize};

use crate::job::{JobId, JobKind};

/// Terminal (or final observed) state of a job after a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Never started before the simulation ended.
    Pending,
    /// Still running when the simulation ended.
    Running,
    /// Ran to completion.
    Completed,
    /// Explicitly cancelled by the scheduler.
    Canceled,
}

/// Everything recorded about one job during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id.
    pub id: JobId,
    /// SLO/BE and deadline.
    pub kind: JobKind,
    /// Arrival time.
    pub submit_time: f64,
    /// Gang width (nodes held while running).
    pub tasks: u32,
    /// Final state.
    pub state: JobState,
    /// Start of the (last) successful execution attempt.
    pub start_time: Option<f64>,
    /// Completion time, if completed.
    pub finish_time: Option<f64>,
    /// Observed runtime of the completed execution (includes off-preferred
    /// slowdown and any RC-fidelity jitter) — what 3σPredict gets to see.
    pub measured_runtime: Option<f64>,
    /// Times this job was preempted (work lost, job requeued).
    pub preemptions: u32,
    /// Times a fault killed a running attempt of this job (each kill either
    /// requeued the job under retry backoff or, once the retry budget was
    /// exhausted, cancelled it).
    pub kills: u32,
    /// Whether the completed run was entirely on preferred partitions.
    pub on_preferred: Option<bool>,
}

impl JobOutcome {
    /// True for SLO jobs.
    pub fn is_slo(&self) -> bool {
        self.kind.is_slo()
    }

    /// An SLO job *met* its deadline iff it completed by the deadline.
    /// `None` for best-effort jobs.
    pub fn deadline_met(&self) -> Option<bool> {
        let deadline = self.kind.deadline()?;
        Some(
            matches!(self.state, JobState::Completed)
                && self.finish_time.is_some_and(|t| t <= deadline),
        )
    }

    /// Response time (completion − submission), if completed.
    pub fn latency(&self) -> Option<f64> {
        Some(self.finish_time? - self.submit_time)
    }

    /// Machine-seconds of completed work (`tasks × measured runtime`), zero
    /// unless completed.
    pub fn machine_seconds(&self) -> f64 {
        match (self.state, self.measured_runtime) {
            (JobState::Completed, Some(rt)) => self.tasks as f64 * rt,
            _ => 0.0,
        }
    }
}

/// Aggregated results of a simulation run.
///
/// Goodput counts *useful* completed work: SLO jobs contribute only when
/// they met their deadline; best-effort jobs contribute whenever they
/// completed. (The SLO miss rate alone does not represent BE work or late
/// SLO work, which is why the paper reports goodput separately.)
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Per-job records, in trace order.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated time at which the run ended.
    pub end_time: f64,
    /// Scheduling cycles executed.
    pub cycles: usize,
    /// Total preemptions applied.
    pub preemptions: usize,
    /// Running attempts killed by faults (`NodeCrash`/`TaskKill`).
    pub kills: usize,
    /// Jobs cancelled because a kill exhausted their retry budget.
    pub retry_cancellations: usize,
    /// Machine-seconds of work destroyed by kill-based preemption or fault
    /// kills (elapsed execution time × gang width of every killed attempt).
    pub wasted_machine_seconds: f64,
}

impl Metrics {
    /// **Percentage (0–100)** of SLO jobs that missed their deadline. Jobs
    /// that never completed count as misses. (Named `_pct` to distinguish it
    /// from the 0–1 fractions like [`Self::completion_rate`].)
    pub fn slo_miss_pct(&self) -> f64 {
        let slo: Vec<_> = self.outcomes.iter().filter(|o| o.is_slo()).collect();
        if slo.is_empty() {
            return 0.0;
        }
        let missed = slo
            .iter()
            .filter(|o| o.deadline_met() == Some(false))
            .count();
        100.0 * missed as f64 / slo.len() as f64
    }

    /// Machine-hours of SLO work completed within deadline (unit:
    /// machine-hours = gang width × measured runtime / 3600).
    pub fn slo_goodput_hours(&self) -> f64 {
        self.outcomes
            .iter()
            .filter(|o| o.deadline_met() == Some(true))
            .map(|o| o.machine_seconds())
            .sum::<f64>()
            / 3600.0
    }

    /// Machine-hours of completed best-effort work (unit: machine-hours).
    pub fn be_goodput_hours(&self) -> f64 {
        self.outcomes
            .iter()
            .filter(|o| !o.is_slo() && o.state == JobState::Completed)
            .map(|o| o.machine_seconds())
            .sum::<f64>()
            / 3600.0
    }

    /// Total goodput (SLO-within-deadline + completed BE), in machine-hours.
    pub fn goodput_hours(&self) -> f64 {
        self.slo_goodput_hours() + self.be_goodput_hours()
    }

    /// Mean response time (completion − submission) of completed
    /// best-effort jobs, in seconds. `None` when no BE job completed.
    pub fn mean_be_latency(&self) -> Option<f64> {
        let lat: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| !o.is_slo() && o.state == JobState::Completed)
            .filter_map(|o| o.latency())
            .collect();
        if lat.is_empty() {
            return None;
        }
        Some(lat.iter().sum::<f64>() / lat.len() as f64)
    }

    /// Number of jobs whose final state matches `state` (a plain count).
    pub fn count(&self, state: JobState) -> usize {
        self.outcomes.iter().filter(|o| o.state == state).count()
    }

    /// Machine-hours of work destroyed by preemptions (unit: machine-hours).
    pub fn wasted_hours(&self) -> f64 {
        self.wasted_machine_seconds / 3600.0
    }

    /// **Fraction (0–1)** of all jobs that ran to completion.
    pub fn completion_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.count(JobState::Completed) as f64 / self.outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, kind: JobKind, state: JobState, finish: Option<f64>) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            kind,
            submit_time: 0.0,
            tasks: 2,
            state,
            start_time: finish.map(|f| f - 10.0),
            finish_time: finish,
            measured_runtime: finish.map(|_| 10.0),
            preemptions: 0,
            kills: 0,
            on_preferred: Some(true),
        }
    }

    #[test]
    fn miss_rate_counts_unfinished_slo_jobs() {
        let m = Metrics {
            outcomes: vec![
                outcome(
                    1,
                    JobKind::Slo { deadline: 100.0 },
                    JobState::Completed,
                    Some(50.0),
                ),
                outcome(
                    2,
                    JobKind::Slo { deadline: 100.0 },
                    JobState::Completed,
                    Some(150.0),
                ),
                outcome(3, JobKind::Slo { deadline: 100.0 }, JobState::Pending, None),
                outcome(4, JobKind::BestEffort, JobState::Completed, Some(80.0)),
            ],
            ..Metrics::default()
        };
        assert!((m.slo_miss_pct() - 66.666).abs() < 0.01);
    }

    #[test]
    fn goodput_splits_slo_and_be() {
        let m = Metrics {
            outcomes: vec![
                // met deadline: counts (2 tasks × 10 s).
                outcome(
                    1,
                    JobKind::Slo { deadline: 100.0 },
                    JobState::Completed,
                    Some(50.0),
                ),
                // missed: excluded from goodput.
                outcome(
                    2,
                    JobKind::Slo { deadline: 100.0 },
                    JobState::Completed,
                    Some(150.0),
                ),
                outcome(3, JobKind::BestEffort, JobState::Completed, Some(80.0)),
            ],
            ..Metrics::default()
        };
        let unit = 2.0 * 10.0 / 3600.0;
        assert!((m.slo_goodput_hours() - unit).abs() < 1e-12);
        assert!((m.be_goodput_hours() - unit).abs() < 1e-12);
        assert!((m.goodput_hours() - 2.0 * unit).abs() < 1e-12);
    }

    #[test]
    fn be_latency_ignores_slo_and_incomplete() {
        let m = Metrics {
            outcomes: vec![
                outcome(1, JobKind::BestEffort, JobState::Completed, Some(30.0)),
                outcome(2, JobKind::BestEffort, JobState::Completed, Some(50.0)),
                outcome(3, JobKind::BestEffort, JobState::Pending, None),
                outcome(
                    4,
                    JobKind::Slo { deadline: 10.0 },
                    JobState::Completed,
                    Some(5.0),
                ),
            ],
            ..Metrics::default()
        };
        assert!((m.mean_be_latency().unwrap() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_calm() {
        let m = Metrics::default();
        assert_eq!(m.slo_miss_pct(), 0.0);
        assert_eq!(m.goodput_hours(), 0.0);
        assert_eq!(m.mean_be_latency(), None);
        assert_eq!(m.completion_rate(), 0.0);
    }

    #[test]
    fn canceled_slo_is_a_miss() {
        let m = Metrics {
            outcomes: vec![outcome(
                1,
                JobKind::Slo { deadline: 100.0 },
                JobState::Canceled,
                None,
            )],
            ..Metrics::default()
        };
        assert_eq!(m.slo_miss_pct(), 100.0);
    }
}
