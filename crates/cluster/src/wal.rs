//! Crash-safe durability layer for [`ServeSession`]: a CRC32-framed
//! write-ahead journal plus watermarked snapshot files in a data directory.
//!
//! # Journal format
//!
//! A journal file is the 8-byte magic [`WAL_MAGIC`] followed by frames:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! The payload is the canonical JSON encoding of one [`WalEntry`] — a
//! monotonically increasing sequence number plus the [`WalRecord`] it
//! carries (an accepted job, an injected fault, or a clock advance). The
//! CRC covers the payload bytes only; `len` is bounded by
//! [`MAX_FRAME_LEN`] so a corrupt length field cannot trigger a huge
//! allocation.
//!
//! # Torn-tail tolerance
//!
//! [`decode_journal`] never panics on arbitrary bytes. It walks frames
//! until the first defect (truncated header, truncated payload, CRC
//! mismatch, oversized length, undecodable payload) and reports the byte
//! length of the valid prefix; [`Wal::open`] truncates the file to that
//! prefix, so recovery after a torn write is byte-equivalent to recovery
//! after a clean stop at the last good frame. Duplicated or stale frames
//! (sequence number not above the last accepted one) are skipped, not
//! errors — an interrupted truncation can legitimately leave them behind.
//!
//! # Snapshot watermark and truncation protocol
//!
//! A [`SnapshotFile`] records `wal_seq`, the sequence number of the last
//! journal record folded into its payload. The writer first persists the
//! snapshot (`snapshot-<seq>.json`, temp-file + rename, newest two
//! generations kept), *then* truncates the journal past the watermark
//! ([`Wal::truncate_through`], itself a temp-file + rename rewrite). A
//! crash between the two steps leaves already-covered records in the
//! journal; recovery filters them out by sequence number, so nothing is
//! replayed twice. `wal_truncated_bytes` is carried in the snapshot —
//! counted at snapshot-write time — so the lifetime truncation total is
//! itself crash-consistent.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use threesigma_obs::{Counter, Gauge, Recorder};

use crate::engine::{FaultEvent, Scheduler, SimError};
use crate::job::JobSpec;
use crate::serve::ServeSession;

/// First 8 bytes of every journal file.
pub const WAL_MAGIC: [u8; 8] = *b"3SIGWAL1";

/// Upper bound on one frame's payload length; a corrupt length field is
/// detected instead of honoured.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Format version written into every [`SnapshotFile`]. Files with a newer
/// version are refused with [`WalError::UnsupportedSnapshotVersion`].
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// One durable event on the serve boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A job accepted by admission control (journaled before it is
    /// acknowledged to the client).
    Job(JobSpec),
    /// A fault injected into the live session at runtime (scripted
    /// `ServeConfig::faults` travel in the config, not the journal).
    Fault(FaultEvent),
    /// The stream went idle and the session drained to `now` (journaled at
    /// end-of-stream so the final drain survives a crash before the
    /// closing snapshot lands).
    Clock {
        /// Simulated time the session drained to.
        now: f64,
    },
}

/// One journal frame's payload: a lifetime-monotonic sequence number plus
/// the record it carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalEntry {
    /// Lifetime-monotonic sequence number (1-based; survives truncation).
    pub seq: u64,
    /// The durable record.
    pub record: WalRecord,
}

/// Typed durability-layer failures. I/O and codec problems never panic;
/// they surface here so the serve daemon can refuse or degrade.
#[derive(Debug)]
pub enum WalError {
    /// An operating-system I/O failure.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// What was being attempted.
        op: &'static str,
        /// The underlying error, stringified.
        error: String,
    },
    /// A snapshot file was produced by a newer build than this one.
    UnsupportedSnapshotVersion {
        /// The offending file.
        path: PathBuf,
        /// Version recorded in the file.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// A record could not be encoded (or a trusted structure re-decoded).
    Codec {
        /// What failed.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, op, error } => {
                write!(f, "wal: {op} {} failed: {error}", path.display())
            }
            WalError::UnsupportedSnapshotVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "wal: snapshot {} has format version {found}, newer than the \
                 newest supported version {supported}; refusing to restore",
                path.display()
            ),
            WalError::Codec { detail } => write!(f, "wal: codec failure: {detail}"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, op: &'static str, error: &std::io::Error) -> WalError {
    WalError::Io {
        path: path.to_path_buf(),
        op,
        error: error.to_string(),
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xff;
        // Table lookup cannot miss: the index is masked to 0..=255.
        let entry = CRC32_TABLE.get(idx as usize).copied().unwrap_or(0);
        crc = (crc >> 8) ^ entry;
    }
    !crc
}

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Encodes one entry as a `[len][crc][payload]` frame.
///
/// # Errors
///
/// [`WalError::Codec`] if the entry cannot be serialized or exceeds
/// [`MAX_FRAME_LEN`].
pub fn encode_frame(entry: &WalEntry) -> Result<Vec<u8>, WalError> {
    let payload = serde_json::to_string(entry)
        .map_err(|e| WalError::Codec {
            detail: format!("encode wal entry {}: {e}", entry.seq),
        })?
        .into_bytes();
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(WalError::Codec {
            detail: format!(
                "wal entry {} payload is {} bytes (limit {MAX_FRAME_LEN})",
                entry.seq,
                payload.len()
            ),
        });
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Why journal decoding stopped before the end of the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// The file does not start with [`WAL_MAGIC`]; nothing is recoverable.
    BadMagic,
    /// Fewer than 8 header bytes remain — a torn header write.
    TornHeader,
    /// The payload extends past the end of the file — a torn payload write.
    TornPayload,
    /// The length field exceeds [`MAX_FRAME_LEN`] (or is zero) — corrupt.
    BadLength,
    /// The payload does not match its CRC — corrupt bytes.
    CrcMismatch,
    /// The payload passed its CRC but is not a valid [`WalEntry`] encoding.
    BadPayload,
}

/// Result of tolerant journal decoding: everything recoverable, plus where
/// and why decoding stopped.
#[derive(Debug, Clone)]
pub struct JournalDecode {
    /// Decoded entries with strictly increasing sequence numbers, in file
    /// order. Duplicated/stale frames are dropped (see `duplicates`).
    pub entries: Vec<WalEntry>,
    /// Byte length of the valid prefix (magic + every good frame). The
    /// file truncated to this length decodes identically with no defect.
    pub valid_len: u64,
    /// The first defect found, if decoding stopped early.
    pub defect: Option<FrameDefect>,
    /// Valid frames skipped because their sequence number was not above
    /// the last accepted one (interrupted truncation leaves these behind).
    pub duplicates: u64,
}

fn read_u32(bytes: &[u8], off: usize) -> Option<u32> {
    bytes
        .get(off..off.checked_add(4)?)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .map(u32::from_le_bytes)
}

/// Decodes a journal byte stream, tolerating a torn or corrupt tail.
/// Never panics; never returns an entry whose CRC did not match.
pub fn decode_journal(bytes: &[u8]) -> JournalDecode {
    let mut out = JournalDecode {
        entries: Vec::new(),
        valid_len: 0,
        defect: None,
        duplicates: 0,
    };
    if bytes.is_empty() {
        return out;
    }
    if bytes.get(..WAL_MAGIC.len()) != Some(WAL_MAGIC.as_slice()) {
        out.defect = Some(FrameDefect::BadMagic);
        return out;
    }
    let mut off = WAL_MAGIC.len();
    out.valid_len = off as u64;
    let mut last_seq = 0u64;
    while off < bytes.len() {
        let Some(len) = read_u32(bytes, off) else {
            out.defect = Some(FrameDefect::TornHeader);
            return out;
        };
        let Some(crc) = read_u32(bytes, off + 4) else {
            out.defect = Some(FrameDefect::TornHeader);
            return out;
        };
        if len == 0 || len > MAX_FRAME_LEN {
            out.defect = Some(FrameDefect::BadLength);
            return out;
        }
        let start = off + 8;
        let Some(end) = start.checked_add(len as usize) else {
            out.defect = Some(FrameDefect::TornPayload);
            return out;
        };
        let Some(payload) = bytes.get(start..end) else {
            out.defect = Some(FrameDefect::TornPayload);
            return out;
        };
        if crc32(payload) != crc {
            out.defect = Some(FrameDefect::CrcMismatch);
            return out;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            out.defect = Some(FrameDefect::BadPayload);
            return out;
        };
        let Ok(entry) = serde_json::from_str::<WalEntry>(text) else {
            out.defect = Some(FrameDefect::BadPayload);
            return out;
        };
        if entry.seq > last_seq {
            last_seq = entry.seq;
            out.entries.push(entry);
        } else {
            out.duplicates += 1;
        }
        off = end;
        out.valid_len = off as u64;
    }
    out
}

/// What [`Wal::open`] found (and repaired) in an existing journal.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// Entries recovered from the valid prefix, strictly increasing `seq`.
    pub entries: Vec<WalEntry>,
    /// Bytes discarded past the first defect (0 for a clean journal).
    pub torn_bytes: u64,
    /// The defect that ended decoding, if any (already repaired by
    /// truncation when this is returned).
    pub defect: Option<FrameDefect>,
    /// Stale/duplicated frames skipped inside the valid prefix.
    pub duplicates: u64,
}

/// An open, append-only journal handle.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: fs::File,
    next_seq: u64,
    sync: bool,
    len: u64,
}

impl Wal {
    /// Opens (creating if absent) the journal at `path`, repairing any
    /// torn tail by truncating to the last good frame. With `sync`,
    /// every append is fsynced before returning — the ack-after-journal
    /// barrier.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failures.
    pub fn open(path: &Path, sync: bool) -> Result<(Self, WalRecovery), WalError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(path, "read", &e)),
        };
        let decode = decode_journal(&bytes);
        let valid_len = if decode.defect == Some(FrameDefect::BadMagic) {
            // Header corrupt: no frame is attributable; restart the file.
            0
        } else {
            decode.valid_len
        };
        let torn_bytes = (bytes.len() as u64).saturating_sub(valid_len);
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, "open", &e))?;
        let mut len = valid_len;
        if valid_len == 0 {
            file.set_len(0).map_err(|e| io_err(path, "truncate", &e))?;
            file.write_all(&WAL_MAGIC)
                .map_err(|e| io_err(path, "write header", &e))?;
            len = WAL_MAGIC.len() as u64;
        } else if torn_bytes > 0 {
            file.set_len(valid_len)
                .map_err(|e| io_err(path, "truncate", &e))?;
        }
        if sync && (torn_bytes > 0 || valid_len == 0) {
            file.sync_data().map_err(|e| io_err(path, "sync", &e))?;
        }
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err(path, "seek", &e))?;
        let next_seq = decode.entries.last().map_or(1, |e| e.seq + 1);
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
                next_seq,
                sync,
                len,
            },
            WalRecovery {
                entries: decode.entries,
                torn_bytes,
                defect: decode.defect,
                duplicates: decode.duplicates,
            },
        ))
    }

    /// Raises the next sequence number to at least `floor` (used after
    /// loading a snapshot whose watermark is past the journal's tail, so
    /// lifetime numbering continues across truncations).
    pub fn ensure_next_seq(&mut self, floor: u64) {
        self.next_seq = self.next_seq.max(floor);
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Lifetime records appended (sequence numbers are 1-based).
    pub fn appended_records(&self) -> u64 {
        self.next_seq - 1
    }

    /// Current journal file length in bytes (header + live frames).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Appends one record, returning its sequence number. With `sync`
    /// enabled the record is durable when this returns — only then may
    /// the caller acknowledge it.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] / [`WalError::Codec`]; the journal is unchanged
    /// logically (a torn partial write is repaired on next open).
    pub fn append(&mut self, record: WalRecord) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let frame = encode_frame(&WalEntry { seq, record })?;
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, "append", &e))?;
        if self.sync {
            self.file
                .sync_data()
                .map_err(|e| io_err(&self.path, "sync", &e))?;
        }
        self.next_seq += 1;
        self.len += frame.len() as u64;
        Ok(seq)
    }

    /// Drops every record with `seq <= watermark` by atomically rewriting
    /// the journal (temp file + rename), returning the bytes removed.
    /// Call *after* the covering snapshot is durable.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] / [`WalError::Codec`]; on error the original
    /// journal is untouched (the rewrite is atomic).
    pub fn truncate_through(&mut self, watermark: u64) -> Result<u64, WalError> {
        let bytes = fs::read(&self.path).map_err(|e| io_err(&self.path, "read", &e))?;
        let decode = decode_journal(&bytes);
        let mut fresh: Vec<u8> = WAL_MAGIC.to_vec();
        for entry in &decode.entries {
            if entry.seq > watermark {
                fresh.extend_from_slice(&encode_frame(entry)?);
            }
        }
        let dropped = self.len.saturating_sub(fresh.len() as u64);
        if dropped == 0 {
            return Ok(0);
        }
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
            f.write_all(&fresh).map_err(|e| io_err(&tmp, "write", &e))?;
            if self.sync {
                f.sync_data().map_err(|e| io_err(&tmp, "sync", &e))?;
            }
        }
        fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, "rename", &e))?;
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, "reopen", &e))?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err(&self.path, "seek", &e))?;
        self.file = file;
        self.len = fresh.len() as u64;
        Ok(dropped)
    }
}

/// One durable snapshot file: a version-stamped envelope around an opaque
/// payload (the caller's own serialized session/scheduler state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Envelope format version ([`SNAPSHOT_FORMAT_VERSION`]); newer
    /// versions are refused on load.
    pub format_version: u32,
    /// Watermark: sequence number of the last journal record folded into
    /// the payload. Recovery replays only records past it.
    pub wal_seq: u64,
    /// Lifetime journal bytes truncated, counted at snapshot-write time so
    /// the total is crash-consistent.
    pub wal_truncated_bytes: u64,
    /// Caller-defined state (e.g. the CLI's engine + scheduler snapshot),
    /// opaque to the durability layer.
    pub payload: serde::Value,
}

/// A serve data directory: one journal plus rotating snapshot files and a
/// quarantine file for poison input lines.
#[derive(Debug, Clone)]
pub struct DataDir {
    dir: PathBuf,
}

impl DataDir {
    /// Opens (creating if absent) a data directory.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create dir", &e))?;
        Ok(Self { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.wal")
    }

    /// Path of the quarantine file for sampled poison input lines.
    pub fn quarantine_path(&self) -> PathBuf {
        self.dir.join("quarantine.jsonl")
    }

    fn snapshot_name(seq: u64) -> String {
        // Zero-padded so lexical filename order equals watermark order.
        format!("snapshot-{seq:020}.json")
    }

    /// Writes a snapshot durably (temp file + rename) and prunes all but
    /// the newest two generations. Returns the snapshot's path.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] / [`WalError::Codec`]. On error no existing
    /// snapshot has been damaged.
    pub fn write_snapshot(&self, snap: &SnapshotFile) -> Result<PathBuf, WalError> {
        let text = serde_json::to_string(snap).map_err(|e| WalError::Codec {
            detail: format!("encode snapshot: {e}"),
        })?;
        let path = self.dir.join(Self::snapshot_name(snap.wal_seq));
        let tmp = path.with_extension("json.tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
            f.write_all(text.as_bytes())
                .map_err(|e| io_err(&tmp, "write", &e))?;
            f.sync_data().map_err(|e| io_err(&tmp, "sync", &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", &e))?;
        // Prune older generations, newest two kept (the newest may be the
        // one just written; the previous one survives as a fallback should
        // the newest prove unreadable later).
        let mut names = self.snapshot_names()?;
        names.sort();
        names.reverse();
        for stale in names.iter().skip(2) {
            let p = self.dir.join(stale);
            let _ = fs::remove_file(&p);
        }
        Ok(path)
    }

    fn snapshot_names(&self) -> Result<Vec<String>, WalError> {
        let mut names = Vec::new();
        let iter = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read dir", &e))?;
        for entry in iter {
            let entry = entry.map_err(|e| io_err(&self.dir, "read dir", &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("snapshot-") && name.ends_with(".json") {
                names.push(name);
            }
        }
        Ok(names)
    }

    /// Loads the newest readable snapshot, falling back past corrupt or
    /// partially written candidates. `Ok(None)` when no snapshot exists.
    ///
    /// # Errors
    ///
    /// [`WalError::UnsupportedSnapshotVersion`] if the newest readable
    /// candidate was produced by a newer build (a hard, typed refusal —
    /// silently falling back could silently lose committed state), and
    /// [`WalError::Io`] for directory-scan failures.
    pub fn load_latest_snapshot(&self) -> Result<Option<SnapshotFile>, WalError> {
        let mut names = self.snapshot_names()?;
        names.sort();
        names.reverse();
        for name in names {
            let path = self.dir.join(&name);
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(value) = serde_json::from_str::<serde::Value>(&text) else {
                continue; // torn/corrupt candidate: fall back to the previous one
            };
            let Some(found) = value.get("format_version").and_then(serde::Value::as_u64) else {
                continue;
            };
            if found > u64::from(SNAPSHOT_FORMAT_VERSION) {
                return Err(WalError::UnsupportedSnapshotVersion {
                    path,
                    found: u32::try_from(found).unwrap_or(u32::MAX),
                    supported: SNAPSHOT_FORMAT_VERSION,
                });
            }
            let Ok(snap) = serde_json::from_value::<SnapshotFile>(&value) else {
                continue;
            };
            return Ok(Some(snap));
        }
        Ok(None)
    }
}

/// Everything recovered from a data directory: the newest valid snapshot
/// (if any), the opened journal, and the journal suffix past the
/// snapshot's watermark, ready to [`replay`].
#[derive(Debug)]
pub struct Recovered {
    /// Newest valid snapshot, if one exists.
    pub snapshot: Option<SnapshotFile>,
    /// The opened journal, sequence numbering continued past the
    /// snapshot watermark.
    pub wal: Wal,
    /// Journal records past the snapshot watermark, in order.
    pub suffix: Vec<WalEntry>,
    /// Bytes discarded from a torn journal tail.
    pub torn_bytes: u64,
    /// Stale/duplicated frames skipped (interrupted truncation debris).
    pub duplicates: u64,
    /// Journal records already covered by the snapshot (also truncation
    /// debris; filtered, never replayed).
    pub covered: u64,
}

/// Opens a data directory and reassembles its durable state: newest valid
/// snapshot + journal suffix past the watermark. The caller restores its
/// session from the snapshot payload, then [`replay`]s the suffix.
///
/// # Errors
///
/// [`WalError`] on I/O failures or a snapshot from a newer build.
pub fn recover_data_dir(data: &DataDir, sync: bool) -> Result<Recovered, WalError> {
    let snapshot = data.load_latest_snapshot()?;
    let (mut wal, recovery) = Wal::open(&data.journal_path(), sync)?;
    let watermark = snapshot.as_ref().map_or(0, |s| s.wal_seq);
    wal.ensure_next_seq(watermark + 1);
    let mut suffix = recovery.entries;
    let before = suffix.len();
    suffix.retain(|e| e.seq > watermark);
    let covered = (before - suffix.len()) as u64;
    Ok(Recovered {
        snapshot,
        wal,
        suffix,
        torn_bytes: recovery.torn_bytes,
        duplicates: recovery.duplicates,
        covered,
    })
}

/// Replays recovered journal records through a session, mirroring the
/// serve ingest loop exactly (pump to each job's submit time, then
/// submit; drain to each journaled clock advance; re-inject faults), so
/// the replayed session is digest-identical to the original. Returns the
/// number of records applied.
///
/// # Errors
///
/// Any [`SimError`] the original ingest could have produced — a replay
/// rejection means the journal and configuration disagree (for example,
/// admission bounds lowered between runs).
pub fn replay(
    session: &mut ServeSession,
    scheduler: &mut dyn Scheduler,
    entries: &[WalEntry],
) -> Result<u64, SimError> {
    let mut applied = 0u64;
    for entry in entries {
        match &entry.record {
            WalRecord::Job(spec) => {
                session.pump_until(spec.submit_time, scheduler)?;
                session.submit(spec.clone())?;
            }
            WalRecord::Clock { now } => {
                session.drain(*now, scheduler)?;
            }
            WalRecord::Fault(fault) => {
                session.inject_fault(*fault)?;
            }
        }
        applied += 1;
    }
    Ok(applied)
}

/// Durability metric handles. Totals are published with `set_total` so a
/// recovered process reports stream-lifetime values: `appended_records`
/// mirrors the lifetime sequence counter and `truncated_bytes` the
/// snapshot-carried total, both independent of crash timing.
/// `recovered_records` is genuinely process-local (zero on a straight-
/// through run) — crash-equivalence comparisons filter it out.
#[derive(Debug)]
pub struct WalMetrics {
    /// `wal_appended_records_total` — lifetime journal records.
    pub appended_records: Counter,
    /// `wal_truncated_bytes_total` — lifetime journal bytes truncated.
    pub truncated_bytes: Counter,
    /// `wal_recovered_records` — records replayed at the last startup.
    pub recovered_records: Gauge,
    /// `wal_journal_bytes` — current journal file size.
    pub journal_bytes: Gauge,
}

impl WalMetrics {
    /// Registers the durability metrics on `rec`.
    pub fn register(rec: &Recorder) -> Self {
        Self {
            appended_records: rec.counter(
                "wal_appended_records_total",
                "Records appended to the write-ahead journal over the stream lifetime",
            ),
            truncated_bytes: rec.counter(
                "wal_truncated_bytes_total",
                "Journal bytes truncated past snapshot watermarks over the stream lifetime",
            ),
            recovered_records: rec.gauge(
                "wal_recovered_records",
                "Journal records replayed during the last startup recovery",
            ),
            journal_bytes: rec.gauge("wal_journal_bytes", "Current journal file size in bytes"),
        }
    }

    /// Publishes the journal-derived values (`truncated_total` is the
    /// caller's lifetime total, carried through snapshots).
    pub fn publish(&self, wal: &Wal, truncated_total: u64) {
        self.appended_records.set_total(wal.appended_records());
        self.truncated_bytes.set_total(truncated_total);
        self.journal_bytes.set(wal.len_bytes() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn job(id: u64, submit: f64) -> WalRecord {
        WalRecord::Job(JobSpec::new(id, submit, 2, 10.0, JobKind::BestEffort))
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("threesigma_wal_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_recover_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("journal.wal");
        let (mut wal, rec) = Wal::open(&path, true).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(wal.append(job(1, 0.0)).unwrap(), 1);
        assert_eq!(wal.append(job(2, 5.0)).unwrap(), 2);
        assert_eq!(wal.append(WalRecord::Clock { now: 42.0 }).unwrap(), 3);
        drop(wal);

        let (wal, rec) = Wal::open(&path, true).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.entries.len(), 3);
        assert_eq!(rec.entries[0].seq, 1);
        assert_eq!(rec.entries[2].record, WalRecord::Clock { now: 42.0 });
        assert_eq!(wal.next_seq(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_good_frame() {
        let dir = tmpdir("torn");
        let path = dir.join("journal.wal");
        let (mut wal, _) = Wal::open(&path, true).unwrap();
        wal.append(job(1, 0.0)).unwrap();
        wal.append(job(2, 1.0)).unwrap();
        drop(wal);

        let full = fs::read(&path).unwrap();
        // Truncate mid-way through the second frame.
        let cut = full.len() - 5;
        fs::write(&path, &full[..cut]).unwrap();

        let (wal, rec) = Wal::open(&path, true).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].seq, 1);
        assert!(rec.torn_bytes > 0);
        assert_eq!(rec.defect, Some(FrameDefect::TornPayload));
        // Byte-equivalent to a clean stop: the repaired file decodes with
        // no defect and the same single entry.
        let repaired = fs::read(&path).unwrap();
        let clean = decode_journal(&repaired);
        assert!(clean.defect.is_none());
        assert_eq!(clean.entries.len(), 1);
        assert_eq!(wal.next_seq(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_decoding_without_panicking() {
        let dir = tmpdir("crc");
        let path = dir.join("journal.wal");
        let (mut wal, _) = Wal::open(&path, true).unwrap();
        wal.append(job(1, 0.0)).unwrap();
        wal.append(job(2, 1.0)).unwrap();
        drop(wal);

        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload bit in the second frame.
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        let dec = decode_journal(&bytes);
        assert_eq!(dec.entries.len(), 1);
        assert_eq!(dec.defect, Some(FrameDefect::CrcMismatch));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_frames_are_skipped_on_decode() {
        let e1 = WalEntry {
            seq: 1,
            record: job(1, 0.0),
        };
        let e2 = WalEntry {
            seq: 2,
            record: job(2, 1.0),
        };
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(&e1).unwrap());
        bytes.extend_from_slice(&encode_frame(&e1).unwrap()); // duplicate
        bytes.extend_from_slice(&encode_frame(&e2).unwrap());
        let dec = decode_journal(&bytes);
        assert!(dec.defect.is_none());
        assert_eq!(dec.duplicates, 1);
        assert_eq!(
            dec.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn corrupt_header_restarts_the_journal() {
        let dir = tmpdir("magic");
        let path = dir.join("journal.wal");
        fs::write(&path, b"garbage-not-a-journal").unwrap();
        let (mut wal, rec) = Wal::open(&path, true).unwrap();
        assert_eq!(rec.defect, Some(FrameDefect::BadMagic));
        assert!(rec.entries.is_empty());
        assert_eq!(rec.torn_bytes, 21);
        wal.append(job(1, 0.0)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, true).unwrap();
        assert_eq!(rec.entries.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_drops_covered_records_and_survives_interruption() {
        let dir = tmpdir("truncate");
        let data = DataDir::open(&dir).unwrap();
        let (mut wal, _) = Wal::open(&data.journal_path(), true).unwrap();
        for i in 1..=4u64 {
            wal.append(job(i, i as f64)).unwrap();
        }
        let before = wal.len_bytes();
        let dropped = wal.truncate_through(2).unwrap();
        assert!(dropped > 0);
        assert_eq!(wal.len_bytes(), before - dropped);
        drop(wal);

        let (mut wal, rec) = Wal::open(&data.journal_path(), true).unwrap();
        assert_eq!(
            rec.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Appends continue lifetime numbering.
        assert_eq!(wal.append(job(5, 10.0)).unwrap(), 5);
        // An "interrupted" truncation (snapshot written, truncate never
        // ran) is repaired by the watermark filter in recover_data_dir.
        let snap = SnapshotFile {
            format_version: SNAPSHOT_FORMAT_VERSION,
            wal_seq: 4,
            wal_truncated_bytes: dropped,
            payload: serde::Value::Null,
        };
        data.write_snapshot(&snap).unwrap();
        drop(wal);
        let recovered = recover_data_dir(&data, true).unwrap();
        assert_eq!(recovered.covered, 2); // seqs 3 and 4 skipped
        assert_eq!(
            recovered.suffix.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![5]
        );
        assert_eq!(recovered.wal.next_seq(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_rotate_and_newest_valid_wins() {
        let dir = tmpdir("rotate");
        let data = DataDir::open(&dir).unwrap();
        for seq in [1u64, 2, 3] {
            data.write_snapshot(&SnapshotFile {
                format_version: SNAPSHOT_FORMAT_VERSION,
                wal_seq: seq,
                wal_truncated_bytes: 0,
                payload: serde::Value::Null,
            })
            .unwrap();
        }
        // Only the newest two generations remain.
        let mut kept: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("snapshot-"))
            .collect();
        kept.sort();
        assert_eq!(kept.len(), 2);
        // Corrupt the newest: loading falls back to the previous one.
        fs::write(dir.join(&kept[1]), b"{torn").unwrap();
        let snap = data.load_latest_snapshot().unwrap().unwrap();
        assert_eq!(snap.wal_seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newer_snapshot_version_is_a_typed_error() {
        let dir = tmpdir("version");
        let data = DataDir::open(&dir).unwrap();
        data.write_snapshot(&SnapshotFile {
            format_version: SNAPSHOT_FORMAT_VERSION + 7,
            wal_seq: 1,
            wal_truncated_bytes: 0,
            payload: serde::Value::Null,
        })
        .unwrap();
        let err = data.load_latest_snapshot().unwrap_err();
        assert!(matches!(
            err,
            WalError::UnsupportedSnapshotVersion { found, supported, .. }
                if found == SNAPSHOT_FORMAT_VERSION + 7 && supported == SNAPSHOT_FORMAT_VERSION
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_prefix_corruption() {
        // Deterministic sweep: every truncation point and a bit flip at
        // every byte of a three-record journal decode without panicking,
        // and the valid prefix always re-decodes cleanly.
        let mut bytes = WAL_MAGIC.to_vec();
        for i in 1..=3u64 {
            bytes.extend_from_slice(
                &encode_frame(&WalEntry {
                    seq: i,
                    record: job(i, i as f64),
                })
                .unwrap(),
            );
        }
        for cut in 0..bytes.len() {
            let dec = decode_journal(&bytes[..cut]);
            let again = decode_journal(&bytes[..dec.valid_len as usize]);
            assert!(again.defect.is_none());
            assert_eq!(again.entries, dec.entries);
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x10;
            let dec = decode_journal(&flipped);
            let again = decode_journal(&flipped[..dec.valid_len as usize]);
            assert!(again.defect.is_none());
            assert_eq!(again.entries, dec.entries);
        }
    }
}
