//! The discrete-event simulation engine.
//!
//! Drives a trace of [`JobSpec`]s against a pluggable [`Scheduler`]:
//! arrivals and completions are events; every `cycle_interval` seconds the
//! scheduler is shown the cluster state and returns placements, preemptions,
//! and cancellations, which the engine validates and applies. Completion
//! events carry an epoch so that preempting a job invalidates its stale
//! finish event.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use threesigma_obs::{Counter, Gauge, Recorder};

use crate::job::{JobId, JobSpec, RetryPolicy};
use crate::metrics::{JobOutcome, JobState, Metrics};
use crate::spec::{ClusterSpec, PartitionId};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seconds between scheduling cycles (the paper uses 1–2 s; long sweeps
    /// in the bench harness use coarser cycles).
    pub cycle_interval: f64,
    /// Extra simulated time after the last arrival before the run is cut
    /// off and unfinished jobs are recorded as such. `None` derives
    /// `max(4 × longest job, 3600 s)` from the trace.
    pub drain: Option<f64>,
    /// RNG seed for RC-fidelity noise (unused in the clean simulator).
    pub seed: u64,
    /// Scripted capacity faults injected during the run (empty = none).
    pub faults: Vec<FaultEvent>,
    /// Retry policy applied to jobs killed by [`FaultEvent::NodeCrash`] or
    /// [`FaultEvent::TaskKill`].
    pub retry: RetryPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cycle_interval: 2.0,
            drain: None,
            seed: 0x3516,
            faults: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }
}

/// A scripted fault (see [`EngineConfig::faults`]).
///
/// Faults model nodes failing and recovering underneath the scheduler.
/// [`PartitionDown`](FaultEvent::PartitionDown) is *graceful* drain: nodes
/// taken down while busy are *owed*, the loss applied as soon as running
/// jobs release capacity in that partition, so running gangs are never
/// killed (the scheduler simply sees less free capacity). Capacity a
/// scheduling decision reclaims by preemption is fully spendable by that
/// same decision's placements — the owed debt settles only from capacity
/// still free after the decision applies, since the scheduler cannot
/// observe `owed` through [`SimulationView`]. The engine maintains
/// `free + allocated + offline == capacity` per partition at all times.
///
/// [`NodeCrash`](FaultEvent::NodeCrash) and
/// [`TaskKill`](FaultEvent::TaskKill) are *abrupt*: they kill running gangs
/// mid-flight. Killed jobs re-enter the pending queue under the engine's
/// [`RetryPolicy`] (exponential backoff, bounded retry budget, then
/// cancellation), and the scheduler is told via
/// [`Scheduler::on_job_killed`] so predictors can record the truncated run
/// as a censored observation rather than a completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// `nodes` of `partition` drain gracefully at time `at` (busy nodes are
    /// owed; no gang is killed).
    PartitionDown {
        /// Injection time (simulated seconds).
        at: f64,
        /// Affected partition.
        partition: PartitionId,
        /// Number of nodes lost.
        nodes: u32,
    },
    /// `nodes` of `partition` recover at time `at`. Restoring more nodes
    /// than are currently offline (or owed) is clamped, not an error.
    PartitionUp {
        /// Injection time (simulated seconds).
        at: f64,
        /// Affected partition.
        partition: PartitionId,
        /// Number of nodes restored.
        nodes: u32,
    },
    /// `nodes` of `partition` crash *abruptly* at time `at`: free nodes are
    /// taken offline first, then running gangs holding nodes on the
    /// partition are killed (smallest job id first) until the crash is
    /// covered. Killed jobs follow the retry state machine. Recovery is via
    /// [`PartitionUp`](FaultEvent::PartitionUp).
    NodeCrash {
        /// Injection time (simulated seconds).
        at: f64,
        /// Affected partition.
        partition: PartitionId,
        /// Number of nodes crashing.
        nodes: u32,
    },
    /// The single running job `job` is killed at time `at` (a task-level
    /// failure: the gang dies, its nodes stay healthy and return to the
    /// free pool). A no-op if the job is not running at `at`.
    TaskKill {
        /// Injection time (simulated seconds).
        at: f64,
        /// The job to kill.
        job: JobId,
    },
}

impl FaultEvent {
    /// The fault's injection time.
    ///
    /// Exhaustive on purpose: adding a fault variant must be a compile
    /// error here, not a silently wrong default.
    pub fn at(&self) -> f64 {
        match self {
            FaultEvent::PartitionDown { at, .. } => *at,
            FaultEvent::PartitionUp { at, .. } => *at,
            FaultEvent::NodeCrash { at, .. } => *at,
            FaultEvent::TaskKill { at, .. } => *at,
        }
    }

    /// The fault's target partition; `None` for job-targeted faults.
    ///
    /// Exhaustive on purpose: adding a fault variant must be a compile
    /// error here, not a silently wrong default.
    pub fn partition(&self) -> Option<PartitionId> {
        match self {
            FaultEvent::PartitionDown { partition, .. } => Some(*partition),
            FaultEvent::PartitionUp { partition, .. } => Some(*partition),
            FaultEvent::NodeCrash { partition, .. } => Some(*partition),
            FaultEvent::TaskKill { .. } => None,
        }
    }
}

/// One gang placement: `allocation[i]` nodes taken from each partition;
/// counts must sum to the job's `tasks`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The pending job to start.
    pub job: JobId,
    /// Nodes per partition.
    pub allocation: Vec<(PartitionId, u32)>,
}

/// What a scheduler returns from one cycle.
#[derive(Debug, Clone, Default)]
pub struct SchedulingDecision {
    /// Pending jobs to start now.
    pub placements: Vec<Placement>,
    /// Running jobs to kill and requeue (work lost).
    pub preemptions: Vec<JobId>,
    /// Pending jobs to abandon permanently (e.g. SLO jobs judged hopeless).
    pub cancellations: Vec<JobId>,
}

impl SchedulingDecision {
    /// A decision that changes nothing.
    pub fn noop() -> Self {
        Self::default()
    }
}

/// A running job as exposed to the scheduler.
#[derive(Debug, Clone)]
pub struct RunningJob<'a> {
    /// The job's spec.
    pub spec: &'a JobSpec,
    /// When its current execution attempt started.
    pub start_time: f64,
    /// Its allocation.
    pub allocation: &'a [(PartitionId, u32)],
}

impl RunningJob<'_> {
    /// Elapsed execution time at `now`.
    pub fn elapsed(&self, now: f64) -> f64 {
        (now - self.start_time).max(0.0)
    }
}

/// Read-only cluster state handed to the scheduler each cycle.
///
/// `pending` exposes full [`JobSpec`]s including the true `duration`;
/// reading `duration` is *oracle* knowledge that only `PointPerfEst`-style
/// baselines may use — honest schedulers must rely on attributes plus their
/// own predictors, as the real system would.
#[derive(Debug)]
pub struct SimulationView<'a> {
    /// Cluster topology.
    pub cluster: &'a ClusterSpec,
    /// Jobs awaiting placement, in arrival order.
    pub pending: Vec<&'a JobSpec>,
    /// Currently running jobs.
    pub running: Vec<RunningJob<'a>>,
    /// Free nodes per partition (indexed by `PartitionId`).
    pub free: &'a [u32],
    /// Current simulated time.
    pub now: f64,
}

impl SimulationView<'_> {
    /// Total free nodes.
    pub fn total_free(&self) -> u32 {
        self.free.iter().sum()
    }
}

/// A scheduler driven by the engine.
pub trait Scheduler {
    /// Called when a job arrives (before the next cycle).
    fn on_job_submitted(&mut self, _spec: &JobSpec, _now: f64) {}

    /// Called when a job completes; `outcome.measured_runtime` is what a
    /// cluster manager would log (and what a predictor should learn from).
    fn on_job_completed(&mut self, _spec: &JobSpec, _outcome: &JobOutcome, _now: f64) {}

    /// Called when a fault kills a running job mid-flight. `elapsed` is the
    /// execution time the attempt had accumulated — a *lower bound* on the
    /// true runtime (a censored observation), never a completed sample;
    /// feeding it to a predictor as a completion would poison its
    /// histories. `will_retry` is false when the retry budget is exhausted
    /// and the job has been cancelled.
    fn on_job_killed(&mut self, _spec: &JobSpec, _elapsed: f64, _will_retry: bool, _now: f64) {}

    /// One scheduling cycle.
    fn schedule(&mut self, view: &SimulationView<'_>, now: f64) -> SchedulingDecision;

    /// Largest cluster (in partitions) this scheduler can represent, or
    /// `None` for no limit. The engine rejects over-limit cluster specs at
    /// ingest with [`SimError::ClusterTooLarge`] instead of letting a
    /// scheduler silently truncate or panic on out-of-range partitions
    /// (e.g. the 128-rack `RackMask` ceiling).
    fn max_partitions(&self) -> Option<usize> {
        None
    }
}

/// Errors produced by invalid scheduler decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Decision referenced a job that is not pending (placement/cancel) or
    /// not running (preemption).
    BadJobReference {
        /// The offending id.
        job: JobId,
        /// What the decision tried to do.
        action: &'static str,
    },
    /// Allocation node counts do not sum to the job's `tasks`, or reference
    /// an unknown partition.
    BadAllocation {
        /// The offending id.
        job: JobId,
    },
    /// Placements exceed free capacity in a partition.
    OverCapacity {
        /// The saturated partition.
        partition: PartitionId,
    },
    /// The trace contains two jobs with the same id.
    DuplicateJobId {
        /// The repeated id.
        job: JobId,
    },
    /// A job spec is unusable: non-finite/negative submit time or
    /// duration, or a zero-task gang.
    MalformedJobSpec {
        /// The offending id.
        job: JobId,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The cluster spec has more partitions than the scheduler can
    /// represent (see [`Scheduler::max_partitions`]).
    ClusterTooLarge {
        /// Partitions in the cluster spec.
        partitions: usize,
        /// The scheduler's representable maximum.
        max: usize,
    },
    /// A serve-session configuration or snapshot is unusable (see
    /// [`ServeSession`](crate::serve::ServeSession)).
    BadServeConfig {
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A streamed job arrived with a submit time earlier than a previously
    /// accepted submission or earlier than the session's current simulated
    /// time. The serve boundary requires time-ordered input.
    OutOfOrderSubmit {
        /// The offending id.
        job: JobId,
    },
    /// A serve-session snapshot was requested while events, pending jobs,
    /// or running jobs were still in flight.
    SnapshotNotQuiescent,
    /// Admission control: the session's bounded queue of non-terminal jobs
    /// is full, so the submission is rejected (typed, echoed on the wire).
    QueueFull {
        /// The rejected id.
        job: JobId,
        /// Non-terminal jobs currently held.
        depth: usize,
        /// The configured bound.
        limit: usize,
    },
    /// Admission control: the submitting tenant already has its quota of
    /// in-flight (non-terminal) jobs.
    TenantQuotaExceeded {
        /// The rejected id.
        job: JobId,
        /// The tenant at quota.
        tenant: String,
        /// The tenant's current in-flight count.
        in_flight: u64,
        /// The configured per-tenant quota.
        quota: u64,
    },
    /// A serve snapshot was produced by a newer build than this one and
    /// cannot be restored safely.
    UnsupportedSnapshotVersion {
        /// Version recorded in the snapshot.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadJobReference { job, action } => {
                write!(f, "decision {action} references job {job:?} in wrong state")
            }
            SimError::BadAllocation { job } => {
                write!(f, "allocation for job {job:?} malformed")
            }
            SimError::OverCapacity { partition } => {
                write!(f, "placements exceed capacity of partition {partition:?}")
            }
            SimError::DuplicateJobId { job } => {
                write!(f, "trace contains job {job:?} more than once")
            }
            SimError::MalformedJobSpec { job, reason } => {
                write!(f, "job {job:?} has a malformed spec: {reason}")
            }
            SimError::ClusterTooLarge { partitions, max } => {
                write!(
                    f,
                    "cluster has {partitions} partitions but the scheduler \
                     represents at most {max} (raise --shards to widen it)"
                )
            }
            SimError::BadServeConfig { reason } => {
                write!(f, "serve configuration rejected: {reason}")
            }
            SimError::OutOfOrderSubmit { job } => {
                write!(
                    f,
                    "job {job:?} submitted out of order (serve input must be \
                     sorted by submit time)"
                )
            }
            SimError::SnapshotNotQuiescent => {
                write!(
                    f,
                    "snapshot requires a quiescent session (no queued events, \
                     nothing pending, nothing running)"
                )
            }
            SimError::QueueFull { job, depth, limit } => {
                write!(
                    f,
                    "job {job:?} rejected: submit queue full ({depth} \
                     non-terminal jobs at limit {limit})"
                )
            }
            SimError::TenantQuotaExceeded {
                job,
                tenant,
                in_flight,
                quota,
            } => {
                write!(
                    f,
                    "job {job:?} rejected: tenant {tenant:?} has {in_flight} \
                     jobs in flight at quota {quota}"
                )
            }
            SimError::UnsupportedSnapshotVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is newer than the newest \
                     supported version {supported}; refusing to restore"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One running attempt as reported in an [`EngineSnapshot`] (ground truth,
/// not the scheduler-facing view).
#[derive(Debug)]
pub struct SnapshotRunning<'a> {
    /// Trace index of the job.
    pub idx: usize,
    /// Start time of the current attempt.
    pub start: f64,
    /// Nodes held per partition.
    pub allocation: &'a [(PartitionId, u32)],
}

/// Ground-truth engine state handed to a [`CycleObserver`] after every
/// scheduling cycle's decision has been validated and applied.
///
/// Unlike [`SimulationView`] (what the scheduler is shown *before* its
/// decision), a snapshot exposes the engine's own bookkeeping — per-job
/// terminal states, fault-offline capacity, and the applied decision — so
/// an external harness can check conservation invariants against the
/// simulator rather than against the component under test.
#[derive(Debug)]
pub struct EngineSnapshot<'a> {
    /// Simulated time of the cycle.
    pub now: f64,
    /// 1-based cycle count so far.
    pub cycles: usize,
    /// Raw partition capacities (constant over the run).
    pub capacity: &'a [u32],
    /// Free nodes per partition.
    pub free: &'a [u32],
    /// Nodes currently offline due to injected faults, per partition.
    pub offline: &'a [u32],
    /// Nodes owed to faults (loss deferred until running jobs release
    /// capacity), per partition.
    pub owed: &'a [u32],
    /// Live per-job records in trace order; `state` is current engine truth
    /// (jobs that have not arrived yet are still `Pending` — compare
    /// `submit_time` with `now`).
    pub outcomes: &'a [JobOutcome],
    /// Trace indices of jobs currently queued for placement.
    pub pending: &'a [usize],
    /// Currently running attempts, sorted by trace index.
    pub running: Vec<SnapshotRunning<'a>>,
    /// The scheduling decision that was just applied.
    pub decision: &'a SchedulingDecision,
}

/// Per-cycle summary numbers derived from an [`EngineSnapshot`] — the
/// shape consumed by simtest invariants and per-cycle trace files.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleStats {
    /// Simulated time of the cycle.
    pub now: f64,
    /// 1-based cycle count.
    pub cycle: usize,
    /// Jobs queued for placement after the decision applied.
    pub queue_depth: usize,
    /// Jobs running after the decision applied.
    pub running: usize,
    /// Free nodes across all partitions.
    pub free_nodes: u32,
    /// Nodes offline due to injected faults.
    pub offline_nodes: u32,
    /// Nodes owed to faults (loss deferred until jobs release them).
    pub fault_debt_nodes: u32,
    /// Raw cluster capacity (constant over the run).
    pub capacity_nodes: u32,
    /// Allocated fraction of raw capacity, in `[0, 1]`.
    pub utilization: f64,
    /// Placements in this cycle's decision.
    pub placements: usize,
    /// Preemptions in this cycle's decision.
    pub preemptions: usize,
    /// Cancellations in this cycle's decision.
    pub cancellations: usize,
}

impl EngineSnapshot<'_> {
    /// Summarises the snapshot into per-cycle observability numbers.
    pub fn cycle_stats(&self) -> CycleStats {
        let capacity_nodes: u32 = self.capacity.iter().sum();
        let free_nodes: u32 = self.free.iter().sum();
        let offline_nodes: u32 = self.offline.iter().sum();
        let allocated = capacity_nodes - free_nodes - offline_nodes;
        CycleStats {
            now: self.now,
            cycle: self.cycles,
            queue_depth: self.pending.len(),
            running: self.running.len(),
            free_nodes,
            offline_nodes,
            fault_debt_nodes: self.owed.iter().sum(),
            capacity_nodes,
            utilization: if capacity_nodes == 0 {
                0.0
            } else {
                f64::from(allocated) / f64::from(capacity_nodes)
            },
            placements: self.decision.placements.len(),
            preemptions: self.decision.preemptions.len(),
            cancellations: self.decision.cancellations.len(),
        }
    }
}

/// Per-cycle observer of engine ground truth (the simulation-test hook).
pub trait CycleObserver {
    /// Called after each cycle's decision has been validated and applied.
    fn on_cycle(&mut self, snapshot: &EngineSnapshot<'_>);
}

/// Observer that ignores every snapshot (used by [`Engine::run`]).
struct NoopObserver;

impl CycleObserver for NoopObserver {
    fn on_cycle(&mut self, _snapshot: &EngineSnapshot<'_>) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    Finish { job: usize, epoch: u32 },
    Fault { fault: usize },
    Arrival { job: usize },
    Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Event {
    pub(crate) time: f64,
    /// Tie-break: finishes before arrivals before cycles at equal times, so
    /// a cycle sees freed capacity and fresh arrivals.
    pub(crate) class: u8,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.class.cmp(&self.class))
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
pub(crate) struct Running {
    pub(crate) idx: usize,
    pub(crate) epoch: u32,
    pub(crate) start: f64,
    pub(crate) allocation: Vec<(PartitionId, u32)>,
    pub(crate) measured_runtime: f64,
    pub(crate) on_preferred: bool,
}

/// The discrete-event engine.
#[derive(Debug, Clone)]
pub struct Engine {
    cluster: ClusterSpec,
    config: EngineConfig,
    recorder: Recorder,
}

/// Engine metric handles, registered once per run so the per-cycle path
/// only touches atomics.
struct EngineMetrics {
    cycles: Counter,
    preemptions: Counter,
    placements: Counter,
    cancellations: Counter,
    queue_depth: Gauge,
    running_jobs: Gauge,
    free_nodes: Gauge,
    offline_nodes: Gauge,
    fault_debt_nodes: Gauge,
    utilization: Gauge,
}

impl EngineMetrics {
    fn register(rec: &Recorder) -> Self {
        Self {
            cycles: rec.counter("engine_cycles_total", "Scheduling cycles executed"),
            preemptions: rec.counter("engine_preemptions_total", "Tasks preempted mid-run"),
            placements: rec.counter("engine_placements_total", "Job placements applied"),
            cancellations: rec.counter("engine_cancellations_total", "Jobs cancelled by decision"),
            queue_depth: rec.gauge("engine_queue_depth", "Pending jobs after the last cycle"),
            running_jobs: rec.gauge("engine_running_jobs", "Running jobs after the last cycle"),
            free_nodes: rec.gauge("engine_free_nodes", "Free nodes across all partitions"),
            offline_nodes: rec.gauge("engine_offline_nodes", "Nodes offline due to faults"),
            fault_debt_nodes: rec.gauge(
                "engine_fault_debt_nodes",
                "Nodes owed to faults, pending release",
            ),
            utilization: rec.gauge(
                "engine_utilization",
                "Allocated fraction of raw cluster capacity",
            ),
        }
    }

    fn record(&self, stats: &CycleStats) {
        self.cycles.set_total(stats.cycle as u64);
        self.preemptions.add(stats.preemptions as u64);
        self.placements.add(stats.placements as u64);
        self.cancellations.add(stats.cancellations as u64);
        self.queue_depth.set(stats.queue_depth as f64);
        self.running_jobs.set(stats.running as f64);
        self.free_nodes.set(f64::from(stats.free_nodes));
        self.offline_nodes.set(f64::from(stats.offline_nodes));
        self.fault_debt_nodes.set(f64::from(stats.fault_debt_nodes));
        self.utilization.set(stats.utilization);
    }
}

impl Engine {
    /// Creates an engine over the given cluster.
    ///
    /// # Panics
    ///
    /// Panics if the cycle interval is not positive or a configured fault
    /// references an unknown partition or a non-finite/negative time.
    pub fn new(cluster: ClusterSpec, config: EngineConfig) -> Self {
        assert!(
            config.cycle_interval > 0.0,
            "cycle interval must be positive"
        );
        for f in &config.faults {
            if let Some(p) = f.partition() {
                assert!(
                    p.index() < cluster.num_partitions(),
                    "fault references unknown partition {p:?}"
                );
            }
            assert!(
                f.at().is_finite() && f.at() >= 0.0,
                "fault time {} must be finite and non-negative",
                f.at()
            );
        }
        Self {
            cluster,
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a metrics recorder; per-cycle counters and gauges are
    /// published through it during [`Engine::run`]. The default recorder is
    /// disabled and records nothing.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs `jobs` against `scheduler` until every job reaches a terminal
    /// state or the drain horizon passes.
    pub fn run(
        &self,
        jobs: &[JobSpec],
        scheduler: &mut dyn Scheduler,
    ) -> Result<Metrics, SimError> {
        self.run_observed(jobs, scheduler, &mut NoopObserver)
    }

    /// Like [`Engine::run`], but hands `observer` an [`EngineSnapshot`] of
    /// engine ground truth after every scheduling cycle.
    pub fn run_observed(
        &self,
        jobs: &[JobSpec],
        scheduler: &mut dyn Scheduler,
        observer: &mut dyn CycleObserver,
    ) -> Result<Metrics, SimError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let metrics = EngineMetrics::register(&self.recorder);
        let parts = self.cluster.num_partitions();
        let capacity: Vec<u32> = self
            .cluster
            .partition_ids()
            .map(|p| self.cluster.partition_size(p))
            .collect();
        let mut free = capacity.clone();
        // Fault accounting: `offline[p]` nodes are down; `owed[p]` nodes are
        // scheduled to go down as soon as running jobs release them. The
        // invariant `free + allocated + offline == capacity` holds per
        // partition throughout the run.
        let mut offline: Vec<u32> = vec![0; parts];
        let mut owed: Vec<u32> = vec![0; parts];

        let (mut outcomes, index_of) = ingest(jobs, parts, scheduler)?;

        let last_arrival = jobs.iter().map(|j| j.submit_time).fold(0.0, f64::max);
        let longest = jobs.iter().map(|j| j.duration).fold(0.0, f64::max);
        let drain = self
            .config
            .drain
            .unwrap_or_else(|| (4.0 * longest).max(3600.0));
        let horizon = last_arrival + drain;

        let mut queue: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, j) in jobs.iter().enumerate() {
            push_event(
                &mut queue,
                &mut seq,
                j.submit_time,
                EventKind::Arrival { job: i },
            );
        }
        for (i, f) in self.config.faults.iter().enumerate() {
            push_event(&mut queue, &mut seq, f.at(), EventKind::Fault { fault: i });
        }
        push_event(&mut queue, &mut seq, 0.0, EventKind::Cycle);

        let mut pending: Vec<usize> = Vec::new();
        // Ordered map: fault handling and view/snapshot building iterate
        // this, and iteration order must be stable (JobId-sorted).
        let mut running: BTreeMap<JobId, Running> = BTreeMap::new();
        let mut epochs: Vec<u32> = vec![0; jobs.len()];
        // Killed jobs awaiting retry: trace index → earliest time the job
        // may be offered for placement again. The job stays in `pending`
        // (conservation: arrived == pending + running + terminal) but is
        // withheld from the scheduler's view until the backoff elapses.
        // Ordered map by the engine's no-hash-container rule: the serve
        // loop shares this state and must never see hash order.
        let mut retry_at: BTreeMap<usize, f64> = BTreeMap::new();
        let mut cycles = 0usize;
        let mut preemption_count = 0usize;
        let mut kill_count = 0usize;
        let mut retry_cancellations = 0usize;
        let mut wasted = 0.0f64;
        let mut now = 0.0f64;

        while let Some(ev) = queue.pop() {
            now = ev.time;
            if now > horizon {
                break;
            }
            match ev.kind {
                EventKind::Arrival { job } => {
                    pending.push(job);
                    scheduler.on_job_submitted(&jobs[job], now);
                }
                EventKind::Finish { job, epoch } => {
                    let id = jobs[job].id;
                    let valid = running.get(&id).is_some_and(|r| r.epoch == epoch);
                    if !valid {
                        continue; // stale completion of a preempted/killed attempt
                    }
                    let Some(r) = running.remove(&id) else {
                        continue;
                    };
                    release(&mut free, &mut offline, &mut owed, &r.allocation);
                    let o = &mut outcomes[job];
                    o.state = JobState::Completed;
                    o.start_time = Some(r.start);
                    o.finish_time = Some(now);
                    o.measured_runtime = Some(r.measured_runtime);
                    o.on_preferred = Some(r.on_preferred);
                    scheduler.on_job_completed(&jobs[job], &outcomes[job], now);
                }
                EventKind::Fault { fault } => match self.config.faults[fault] {
                    FaultEvent::PartitionDown {
                        partition, nodes, ..
                    } => {
                        let pi = partition.index();
                        let taken = nodes.min(free[pi]);
                        free[pi] -= taken;
                        offline[pi] += taken;
                        owed[pi] += nodes - taken;
                    }
                    FaultEvent::PartitionUp {
                        partition, nodes, ..
                    } => {
                        let pi = partition.index();
                        // Cancel still-owed losses first, then bring offline
                        // nodes back; restores beyond that are clamped.
                        let cancelled = nodes.min(owed[pi]);
                        owed[pi] -= cancelled;
                        let restored = (nodes - cancelled).min(offline[pi]);
                        offline[pi] -= restored;
                        free[pi] += restored;
                    }
                    FaultEvent::NodeCrash {
                        partition, nodes, ..
                    } => {
                        let pi = partition.index();
                        // Free nodes absorb the crash first.
                        let taken = nodes.min(free[pi]);
                        free[pi] -= taken;
                        offline[pi] += taken;
                        let mut remaining = nodes - taken;
                        // Then running gangs holding nodes on the crashed
                        // partition die, smallest job id first
                        // (deterministic), until the crash is covered.
                        let mut victims: Vec<JobId> = running
                            .iter()
                            .filter(|(_, r)| {
                                r.allocation.iter().any(|(p, n)| p.index() == pi && *n > 0)
                            })
                            .map(|(id, _)| *id)
                            .collect();
                        victims.sort_unstable();
                        for id in victims {
                            if remaining == 0 {
                                break;
                            }
                            let Some(r) = running.remove(&id) else {
                                continue;
                            };
                            kill_attempt(
                                r,
                                now,
                                0,
                                jobs,
                                &self.config.retry,
                                &mut free,
                                &mut offline,
                                &mut owed,
                                &mut epochs,
                                &mut outcomes,
                                &mut pending,
                                &mut retry_at,
                                &mut wasted,
                                &mut kill_count,
                                &mut retry_cancellations,
                                scheduler,
                            );
                            let seized = remaining.min(free[pi]);
                            free[pi] -= seized;
                            offline[pi] += seized;
                            remaining -= seized;
                        }
                        // Anything still uncovered (capacity already owed
                        // or offline) becomes debt, as with PartitionDown.
                        owed[pi] += remaining;
                    }
                    FaultEvent::TaskKill { job, .. } => {
                        // Task-level failure: the gang dies but its nodes
                        // stay healthy. A no-op unless the job is running.
                        if let Some(r) = running.remove(&job) {
                            kill_attempt(
                                r,
                                now,
                                0,
                                jobs,
                                &self.config.retry,
                                &mut free,
                                &mut offline,
                                &mut owed,
                                &mut epochs,
                                &mut outcomes,
                                &mut pending,
                                &mut retry_at,
                                &mut wasted,
                                &mut kill_count,
                                &mut retry_cancellations,
                                scheduler,
                            );
                        }
                    }
                },
                EventKind::Cycle => {
                    cycles += 1;
                    let decision = decide(
                        &self.cluster,
                        self.config.cycle_interval,
                        0,
                        jobs,
                        &pending,
                        &retry_at,
                        &running,
                        &free,
                        now,
                        scheduler,
                    );
                    commit(
                        &decision,
                        now,
                        0,
                        jobs,
                        &self.cluster,
                        &index_of,
                        &mut rng,
                        &mut free,
                        &mut offline,
                        &mut owed,
                        &mut epochs,
                        &mut outcomes,
                        &mut pending,
                        &mut retry_at,
                        &mut running,
                        &mut queue,
                        &mut seq,
                        &mut wasted,
                        &mut preemption_count,
                    )?;

                    {
                        let mut snapshot_running: Vec<SnapshotRunning<'_>> = running
                            .values()
                            .map(|r| SnapshotRunning {
                                idx: r.idx,
                                start: r.start,
                                allocation: &r.allocation,
                            })
                            .collect();
                        snapshot_running.sort_by_key(|r| r.idx);
                        let snapshot = EngineSnapshot {
                            now,
                            cycles,
                            capacity: &capacity,
                            free: &free,
                            offline: &offline,
                            owed: &owed,
                            outcomes: &outcomes,
                            pending: &pending,
                            running: snapshot_running,
                            decision: &decision,
                        };
                        metrics.record(&snapshot.cycle_stats());
                        observer.on_cycle(&snapshot);
                    }

                    // Schedule the next cycle while there is anything left.
                    let arrivals_remain = queue
                        .iter()
                        .any(|e| matches!(e.kind, EventKind::Arrival { .. }));
                    if !pending.is_empty() || !running.is_empty() || arrivals_remain {
                        push_event(
                            &mut queue,
                            &mut seq,
                            now + self.config.cycle_interval,
                            EventKind::Cycle,
                        );
                    }
                }
            }
        }

        Ok(Metrics {
            outcomes,
            end_time: now,
            cycles,
            preemptions: preemption_count,
            kills: kill_count,
            retry_cancellations,
            wasted_machine_seconds: wasted,
        })
    }
}

// ---------------------------------------------------------------------------
// Shared engine stages.
//
// These are the building blocks of one scheduling step, shared by the batch
// run ([`Engine::run_observed`]) and the long-running serve session
// ([`crate::serve::ServeSession`]). Per-job state lives in parallel arrays
// indexed by *ingest index*; `base` is the ingest index of slot 0, so a
// serve session can retire a prefix of completed jobs and keep indexing
// stable (`base` is always 0 for batch runs, where nothing retires).
// ---------------------------------------------------------------------------

/// Moves released nodes back to `free`, paying down owed fault
/// capacity first.
pub(crate) fn release(
    free: &mut [u32],
    offline: &mut [u32],
    owed: &mut [u32],
    allocation: &[(PartitionId, u32)],
) {
    for (p, n) in allocation {
        let pi = p.index();
        let seized = (*n).min(owed[pi]);
        owed[pi] -= seized;
        offline[pi] += seized;
        free[pi] += n - seized;
    }
}

/// Bookkeeping shared by the fault-kill paths: releases the dead
/// gang, invalidates its finish event, charges the lost work, and
/// either requeues the job under retry backoff or cancels it once
/// the retry budget is exhausted. The scheduler hears about the
/// kill through its censored-observation callback.
#[allow(clippy::too_many_arguments)]
pub(crate) fn kill_attempt(
    r: Running,
    now: f64,
    base: usize,
    jobs: &[JobSpec],
    retry: &RetryPolicy,
    free: &mut [u32],
    offline: &mut [u32],
    owed: &mut [u32],
    epochs: &mut [u32],
    outcomes: &mut [JobOutcome],
    pending: &mut Vec<usize>,
    retry_at: &mut BTreeMap<usize, f64>,
    wasted: &mut f64,
    kill_count: &mut usize,
    retry_cancellations: &mut usize,
    scheduler: &mut dyn Scheduler,
) {
    release(free, offline, owed, &r.allocation);
    epochs[r.idx - base] += 1;
    let tasks: u32 = r.allocation.iter().map(|(_, n)| n).sum();
    let elapsed = (now - r.start).max(0.0);
    *wasted += elapsed * f64::from(tasks);
    *kill_count += 1;
    let o = &mut outcomes[r.idx - base];
    o.kills += 1;
    let will_retry = o.kills <= retry.max_retries;
    if will_retry {
        o.state = JobState::Pending;
        retry_at.insert(r.idx, now + retry.delay_for(o.kills));
        pending.push(r.idx);
    } else {
        o.state = JobState::Canceled;
        *retry_cancellations += 1;
    }
    scheduler.on_job_killed(&jobs[r.idx - base], elapsed, will_retry, now);
}

/// Why a job spec is unusable, if it is: non-finite/negative submit time or
/// duration, or a zero-task gang. Shared by batch ingest and the serve
/// boundary, so a streamed job is held to exactly the trace contract.
pub(crate) fn spec_problem(j: &JobSpec) -> Option<&'static str> {
    if !j.submit_time.is_finite() || j.submit_time < 0.0 {
        Some("submit time must be finite and non-negative")
    } else if !j.duration.is_finite() || j.duration < 0.0 {
        Some("duration must be finite and non-negative")
    } else if j.tasks == 0 {
        Some("task count must be positive")
    } else {
        None
    }
}

/// A fresh (pre-arrival) outcome record for a job.
pub(crate) fn blank_outcome(j: &JobSpec) -> JobOutcome {
    JobOutcome {
        id: j.id,
        kind: j.kind,
        submit_time: j.submit_time,
        tasks: j.tasks,
        state: JobState::Pending,
        start_time: None,
        finish_time: None,
        measured_runtime: None,
        preemptions: 0,
        kills: 0,
        on_preferred: None,
    }
}

/// Ingest stage: validates the trace and the cluster against the
/// scheduler's representable size and builds the outcome table plus
/// the id → trace-index map. Every typed rejection that does not
/// depend on a decision happens here, before any event is processed.
fn ingest(
    jobs: &[JobSpec],
    parts: usize,
    scheduler: &dyn Scheduler,
) -> Result<(Vec<JobOutcome>, BTreeMap<JobId, usize>), SimError> {
    if let Some(max) = scheduler.max_partitions() {
        if parts > max {
            return Err(SimError::ClusterTooLarge {
                partitions: parts,
                max,
            });
        }
    }
    let outcomes: Vec<JobOutcome> = jobs.iter().map(blank_outcome).collect();
    let mut index_of: BTreeMap<JobId, usize> = BTreeMap::new();
    for (i, j) in jobs.iter().enumerate() {
        if index_of.insert(j.id, i).is_some() {
            return Err(SimError::DuplicateJobId { job: j.id });
        }
        if let Some(reason) = spec_problem(j) {
            return Err(SimError::MalformedJobSpec { job: j.id, reason });
        }
    }
    Ok((outcomes, index_of))
}

/// Decide stage: builds the deterministic scheduler-facing view
/// (running jobs sorted by id, backoff-gated pending set) and asks
/// the scheduler for a decision. Reads engine state, mutates none.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decide(
    cluster: &ClusterSpec,
    cycle_interval: f64,
    base: usize,
    jobs: &[JobSpec],
    pending: &[usize],
    retry_at: &BTreeMap<usize, f64>,
    running: &BTreeMap<JobId, Running>,
    free: &[u32],
    now: f64,
    scheduler: &mut dyn Scheduler,
) -> SchedulingDecision {
    // Deterministic view: running jobs sorted by id so scheduler
    // decisions (and float summation order) never depend on
    // hash-map iteration order.
    let mut running_view: Vec<RunningJob<'_>> = running
        .values()
        .map(|r| RunningJob {
            spec: &jobs[r.idx - base],
            start_time: r.start,
            allocation: &r.allocation,
        })
        .collect();
    running_view.sort_by_key(|r| r.spec.id);
    let eps = retry_tick_eps(now, cycle_interval);
    let view = SimulationView {
        cluster,
        // Jobs backing off after a kill are withheld from the
        // scheduler until their retry time.
        pending: pending
            .iter()
            .filter(|&&i| retry_at.get(&i).is_none_or(|&t| t <= now + eps))
            .map(|&i| &jobs[i - base])
            .collect(),
        running: running_view,
        free,
        now,
    };
    scheduler.schedule(&view, now)
}

/// Commit stage: validates and applies a decision — cancellations,
/// then preemptions, then placements — and settles outstanding
/// fault debt from post-decision free capacity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit(
    decision: &SchedulingDecision,
    now: f64,
    base: usize,
    jobs: &[JobSpec],
    cluster: &ClusterSpec,
    index_of: &BTreeMap<JobId, usize>,
    rng: &mut StdRng,
    free: &mut [u32],
    offline: &mut [u32],
    owed: &mut [u32],
    epochs: &mut [u32],
    outcomes: &mut [JobOutcome],
    pending: &mut Vec<usize>,
    retry_at: &mut BTreeMap<usize, f64>,
    running: &mut BTreeMap<JobId, Running>,
    queue: &mut BinaryHeap<Event>,
    seq: &mut u64,
    wasted: &mut f64,
    preemption_count: &mut usize,
) -> Result<(), SimError> {
    let parts = free.len();
    // 1. Cancellations.
    for id in &decision.cancellations {
        let idx = *index_of.get(id).ok_or(SimError::BadJobReference {
            job: *id,
            action: "cancel",
        })?;
        let pos = pending
            .iter()
            .position(|&i| i == idx)
            .ok_or(SimError::BadJobReference {
                job: *id,
                action: "cancel",
            })?;
        pending.remove(pos);
        retry_at.remove(&idx);
        outcomes[idx - base].state = JobState::Canceled;
    }

    // 2. Preemptions: free capacity, requeue the job.
    //
    // Reclaimed capacity is fully spendable by this same decision's
    // placements: `SimulationView` cannot expose `owed`, so
    // schedulers (and the feasibility oracle) necessarily assume
    // preempted nodes are reusable. Outstanding fault debt is
    // settled from whatever is still free *after* the decision is
    // applied.
    for id in &decision.preemptions {
        let r = running.remove(id).ok_or(SimError::BadJobReference {
            job: *id,
            action: "preempt",
        })?;
        for (p, n) in &r.allocation {
            free[p.index()] += n;
        }
        epochs[r.idx - base] += 1;
        outcomes[r.idx - base].preemptions += 1;
        outcomes[r.idx - base].state = JobState::Pending;
        let tasks: u32 = r.allocation.iter().map(|(_, n)| n).sum();
        *wasted += (now - r.start).max(0.0) * tasks as f64;
        pending.push(r.idx);
        *preemption_count += 1;
    }

    // 3. Placements.
    for pl in &decision.placements {
        let idx = *index_of.get(&pl.job).ok_or(SimError::BadJobReference {
            job: pl.job,
            action: "place",
        })?;
        let pos = pending
            .iter()
            .position(|&i| i == idx)
            .ok_or(SimError::BadJobReference {
                job: pl.job,
                action: "place",
            })?;
        let spec = &jobs[idx - base];
        let total: u32 = pl.allocation.iter().map(|(_, n)| n).sum();
        if total != spec.tasks || pl.allocation.iter().any(|(p, _)| p.index() >= parts) {
            return Err(SimError::BadAllocation { job: pl.job });
        }
        for (p, n) in &pl.allocation {
            if *n > free[p.index()] {
                return Err(SimError::OverCapacity { partition: *p });
            }
        }
        pending.remove(pos);
        retry_at.remove(&idx);
        for (p, n) in &pl.allocation {
            free[p.index()] -= n;
        }
        let nominal = spec.runtime_on(&pl.allocation);
        let (start, runtime) = match cluster.rc_fidelity {
            None => (now, nominal),
            Some(fid) => {
                let z = standard_normal(rng);
                let jitter = (1.0 + fid.runtime_jitter_cov * z).max(0.3);
                (now + fid.placement_latency, nominal * jitter)
            }
        };
        let on_preferred = spec.preferred.as_ref().is_none_or(|pref| {
            pl.allocation
                .iter()
                .all(|(p, n)| *n == 0 || pref.contains(p))
        });
        epochs[idx - base] += 1;
        let epoch = epochs[idx - base];
        running.insert(
            pl.job,
            Running {
                idx,
                epoch,
                start,
                allocation: pl.allocation.clone(),
                measured_runtime: runtime,
                on_preferred,
            },
        );
        outcomes[idx - base].state = JobState::Running;
        outcomes[idx - base].start_time = Some(start);
        push_event(
            queue,
            seq,
            start + runtime,
            EventKind::Finish { job: idx, epoch },
        );
    }

    // Settle outstanding fault debt from post-decision free capacity
    // (preemptions above released nodes without paying it down).
    for pi in 0..parts {
        let seized = owed[pi].min(free[pi]);
        owed[pi] -= seized;
        offline[pi] += seized;
        free[pi] -= seized;
    }
    Ok(())
}

/// Retry-backoff eligibility tolerance at a cycle boundary.
///
/// Cycle ticks are produced by repeated `now + cycle_interval` additions, so
/// a tick nominally at `t` can sit a few ulps below the `kill_time + delay`
/// retry timestamp computed for the same instant, and the eligibility gate
/// must tolerate that drift: a backoff expiring exactly on a cycle boundary
/// re-pends on that cycle, not one cycle late.
///
/// The tolerance is relative and ulp-aware. The base term
/// `RETRY_TICK_TOLERANCE * max(|now|, 1)` (~1 ns at t = 1 s) covers the
/// short-horizon regime. At long service horizons (`now ≳ 2^46` s) that term
/// alone would grow to tens of thousands of seconds — collapsing every
/// backoff — so it is capped at a quarter cycle. The cap in turn is floored
/// at 64 ulps of `now`, because once a single ulp exceeds the nominal
/// tolerance (one ulp of 2^46 is ~0.016 s), drift must still be forgiven or
/// an on-tick expiry is skipped for a full cycle.
fn retry_tick_eps(now: f64, cycle_interval: f64) -> f64 {
    (RETRY_TICK_TOLERANCE * now.abs().max(1.0))
        .min(0.25 * cycle_interval)
        .max(64.0 * f64::EPSILON * now.abs())
}

/// Relative tolerance for retry-backoff eligibility at a cycle boundary
/// (see [`retry_tick_eps`]).
const RETRY_TICK_TOLERANCE: f64 = 1e-9;

/// Pushes an event with the deterministic same-time ordering class
/// (Finish < Fault < Arrival < Cycle) and a FIFO tie-break sequence.
pub(crate) fn push_event(q: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind) {
    let class = match kind {
        EventKind::Finish { .. } => 0,
        EventKind::Fault { .. } => 1,
        EventKind::Arrival { .. } => 2,
        EventKind::Cycle => 3,
    };
    *seq += 1;
    q.push(Event {
        time,
        class,
        seq: *seq,
        kind,
    });
}

/// Standard normal via Box–Muller (keeps the dependency surface to `rand`).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use crate::spec::RcFidelity;

    /// Greedy FIFO scheduler used to exercise the engine.
    struct Fifo;

    impl Scheduler for Fifo {
        fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
            let mut free = view.free.to_vec();
            let mut placements = Vec::new();
            for job in &view.pending {
                let mut remaining = job.tasks;
                let mut alloc = Vec::new();
                for (p, f) in free.iter_mut().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    let take = remaining.min(*f);
                    if take > 0 {
                        alloc.push((PartitionId(p), take));
                        remaining -= take;
                        *f -= take;
                    }
                }
                if remaining == 0 {
                    placements.push(Placement {
                        job: job.id,
                        allocation: alloc,
                    });
                } else {
                    // Roll back tentative take for this job.
                    for (p, n) in alloc {
                        free[p.index()] += n;
                    }
                }
            }
            SchedulingDecision {
                placements,
                ..SchedulingDecision::noop()
            }
        }
    }

    fn be(id: u64, submit: f64, tasks: u32, duration: f64) -> JobSpec {
        JobSpec::new(id, submit, tasks, duration, JobKind::BestEffort)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 2, 100.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.count(JobState::Completed), 1);
        let o = &m.outcomes[0];
        assert_eq!(o.measured_runtime, Some(100.0));
        assert!(o.finish_time.unwrap() >= 100.0);
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        // 4-node cluster; two 4-node jobs must serialise.
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 4, 50.0), be(2, 0.0, 4, 50.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.count(JobState::Completed), 2);
        let f1 = m.outcomes[0].finish_time.unwrap();
        let s2 = m.outcomes[1].start_time.unwrap();
        assert!(s2 >= f1, "second job starts after first finishes");
    }

    #[test]
    fn off_preferred_placement_runs_slower() {
        let engine = Engine::new(ClusterSpec::uniform(2, 2), EngineConfig::default());
        // Preferred partition 0 is fully used by job 1; job 2 prefers
        // partition 0 but FIFO places it on partition 1 → 1.5× runtime.
        let jobs = vec![
            be(1, 0.0, 2, 1000.0),
            be(2, 0.0, 2, 100.0).with_preference(vec![PartitionId(0)], 1.5),
        ];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        let o2 = &m.outcomes[1];
        assert_eq!(o2.measured_runtime, Some(150.0));
        assert_eq!(o2.on_preferred, Some(false));
    }

    #[test]
    fn deadline_bookkeeping() {
        let engine = Engine::new(ClusterSpec::uniform(1, 1), EngineConfig::default());
        let jobs = vec![
            JobSpec::new(1, 0.0, 1, 100.0, JobKind::Slo { deadline: 200.0 }),
            JobSpec::new(2, 0.0, 1, 100.0, JobKind::Slo { deadline: 150.0 }),
        ];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        // Job 1 completes ≈ t=102 (first cycle at t=2·k); job 2 serialised
        // after it, finishing ≈ 204 > 150: one miss.
        assert!((m.slo_miss_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn unplaceable_job_left_pending_at_horizon() {
        // Job wants 8 nodes, cluster has 4: it can never be placed.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                drain: Some(100.0),
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 8, 10.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.count(JobState::Pending), 1);
        assert_eq!(m.completion_rate(), 0.0);
    }

    #[test]
    fn rc_fidelity_perturbs_runtime_deterministically() {
        let cluster = ClusterSpec::uniform(1, 4).with_rc_fidelity(RcFidelity {
            runtime_jitter_cov: 0.05,
            placement_latency: 2.0,
        });
        let engine = Engine::new(cluster.clone(), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 2, 100.0)];
        let m1 = engine.run(&jobs, &mut Fifo).unwrap();
        let m2 = engine.run(&jobs, &mut Fifo).unwrap();
        let r1 = m1.outcomes[0].measured_runtime.unwrap();
        let r2 = m2.outcomes[0].measured_runtime.unwrap();
        assert_eq!(r1, r2, "same seed → same jitter");
        assert!((r1 - 100.0).abs() > 1e-9, "jitter applied");
        assert!((r1 - 100.0).abs() < 30.0, "jitter bounded");
        // Placement latency delays the start.
        assert!(m1.outcomes[0].start_time.unwrap() >= 2.0);
    }

    #[test]
    fn preemption_requeues_and_invalidates_finish() {
        /// Places the first pending job, then preempts it at t≈10 once.
        struct PreemptOnce {
            preempted: bool,
        }
        impl Scheduler for PreemptOnce {
            fn schedule(&mut self, view: &SimulationView<'_>, now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                if !self.preempted && now >= 10.0 && !view.running.is_empty() {
                    d.preemptions.push(view.running[0].spec.id);
                    self.preempted = true;
                    return d;
                }
                if let Some(job) = view.pending.first() {
                    if view.free[0] >= job.tasks {
                        d.placements.push(Placement {
                            job: job.id,
                            allocation: vec![(PartitionId(0), job.tasks)],
                        });
                    }
                }
                d
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 2, 50.0)];
        let m = engine
            .run(&jobs, &mut PreemptOnce { preempted: false })
            .unwrap();
        let o = &m.outcomes[0];
        assert_eq!(o.preemptions, 1);
        assert_eq!(o.state, JobState::Completed);
        // Work was lost: completion happens after restart + full runtime.
        assert!(o.finish_time.unwrap() > 60.0);
        assert_eq!(m.preemptions, 1);
        // Wasted work ≈ 10 s elapsed × 2 tasks.
        assert!(
            (m.wasted_machine_seconds - 20.0).abs() <= 4.0,
            "wasted {}",
            m.wasted_machine_seconds
        );
    }

    #[test]
    fn invalid_placement_is_an_error() {
        struct Bad;
        impl Scheduler for Bad {
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                if let Some(job) = view.pending.first() {
                    d.placements.push(Placement {
                        job: job.id,
                        allocation: vec![(PartitionId(0), job.tasks + 5)],
                    });
                }
                d
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 1, 10.0)];
        let err = engine.run(&jobs, &mut Bad).unwrap_err();
        assert!(matches!(err, SimError::BadAllocation { .. }));
    }

    #[test]
    fn over_capacity_is_an_error() {
        struct Bad;
        impl Scheduler for Bad {
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                for job in &view.pending {
                    d.placements.push(Placement {
                        job: job.id,
                        allocation: vec![(PartitionId(0), job.tasks)],
                    });
                }
                d
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 3, 10.0), be(2, 0.0, 3, 10.0)];
        let err = engine.run(&jobs, &mut Bad).unwrap_err();
        assert_eq!(
            err,
            SimError::OverCapacity {
                partition: PartitionId(0)
            }
        );
    }

    #[test]
    fn cancellation_is_terminal() {
        struct CancelAll;
        impl Scheduler for CancelAll {
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                SchedulingDecision {
                    cancellations: view.pending.iter().map(|j| j.id).collect(),
                    ..SchedulingDecision::noop()
                }
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let jobs = vec![JobSpec::new(
            1,
            0.0,
            1,
            10.0,
            JobKind::Slo { deadline: 100.0 },
        )];
        let m = engine.run(&jobs, &mut CancelAll).unwrap();
        assert_eq!(m.count(JobState::Canceled), 1);
        assert_eq!(m.slo_miss_pct(), 100.0);
    }

    #[test]
    fn gangs_span_partitions() {
        // 3 racks × 2 nodes; a 5-node gang must span racks.
        let engine = Engine::new(ClusterSpec::uniform(3, 2), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 5, 60.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.count(JobState::Completed), 1);
    }

    #[test]
    fn drain_cutoff_freezes_states() {
        // Long job + tiny drain: the run ends with the job still running.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                drain: Some(10.0),
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 1, 1e6)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.count(JobState::Running), 1);
        assert_eq!(m.goodput_hours(), 0.0, "incomplete work is not goodput");
        assert!(m.end_time <= 12.0 + 1e-9);
    }

    #[test]
    fn same_time_finish_frees_capacity_for_same_cycle() {
        // Job 2 arrives exactly when job 1 finishes; the cycle at that
        // timestamp must see the freed capacity (event ordering contract).
        let engine = Engine::new(
            ClusterSpec::uniform(1, 1),
            EngineConfig {
                cycle_interval: 10.0,
                ..EngineConfig::default()
            },
        );
        // Job 1 placed at the t=0 cycle, runs 20 s → finishes exactly at a
        // t=20 cycle boundary. Job 2 arrives at 20 too.
        let jobs = vec![be(1, 0.0, 1, 20.0), be(2, 20.0, 1, 5.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.outcomes[1].start_time, Some(20.0));
    }

    #[test]
    fn preempting_unknown_job_is_an_error() {
        struct BadPreempt;
        impl Scheduler for BadPreempt {
            fn schedule(&mut self, _v: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                SchedulingDecision {
                    preemptions: vec![JobId(999)],
                    ..SchedulingDecision::noop()
                }
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 1), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 1, 5.0)];
        let err = engine.run(&jobs, &mut BadPreempt).unwrap_err();
        assert!(matches!(err, SimError::BadJobReference { .. }));
    }

    #[test]
    fn cancelling_running_job_is_an_error() {
        struct CancelRunning;
        impl Scheduler for CancelRunning {
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                if let Some(job) = view.pending.first() {
                    d.placements.push(Placement {
                        job: job.id,
                        allocation: vec![(PartitionId(0), job.tasks)],
                    });
                }
                if let Some(r) = view.running.first() {
                    d.cancellations.push(r.spec.id);
                }
                d
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 2), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 1, 50.0)];
        let err = engine.run(&jobs, &mut CancelRunning).unwrap_err();
        assert!(matches!(
            err,
            SimError::BadJobReference {
                action: "cancel",
                ..
            }
        ));
    }

    #[test]
    fn view_elapsed_tracks_simulation_time() {
        struct CheckElapsed {
            checked: bool,
        }
        impl Scheduler for CheckElapsed {
            fn schedule(&mut self, view: &SimulationView<'_>, now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                if let Some(r) = view.running.first() {
                    if now >= 10.0 && !self.checked {
                        assert!((r.elapsed(now) - (now - r.start_time)).abs() < 1e-9);
                        assert!(r.elapsed(now) >= 8.0);
                        self.checked = true;
                    }
                    return d;
                }
                if let Some(job) = view.pending.first() {
                    d.placements.push(Placement {
                        job: job.id,
                        allocation: vec![(PartitionId(0), job.tasks)],
                    });
                }
                d
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 1), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 1, 30.0)];
        let mut s = CheckElapsed { checked: false };
        engine.run(&jobs, &mut s).unwrap();
        assert!(s.checked);
    }

    #[test]
    fn duplicate_job_ids_are_a_typed_error() {
        let engine = Engine::new(ClusterSpec::uniform(1, 1), EngineConfig::default());
        let jobs = vec![be(7, 0.0, 1, 5.0), be(7, 1.0, 1, 5.0)];
        let err = engine.run(&jobs, &mut Fifo).unwrap_err();
        assert_eq!(err, SimError::DuplicateJobId { job: JobId(7) });
    }

    #[test]
    fn malformed_job_specs_are_a_typed_error() {
        let engine = Engine::new(ClusterSpec::uniform(1, 1), EngineConfig::default());

        let mut nan_submit = be(1, 0.0, 1, 5.0);
        nan_submit.submit_time = f64::NAN;
        let mut negative_duration = be(2, 0.0, 1, 5.0);
        negative_duration.duration = -1.0;
        let mut infinite_duration = be(3, 0.0, 1, 5.0);
        infinite_duration.duration = f64::INFINITY;
        let mut zero_tasks = be(4, 0.0, 1, 5.0);
        zero_tasks.tasks = 0;

        for bad in [nan_submit, negative_duration, infinite_duration, zero_tasks] {
            let id = bad.id;
            let err = engine.run(&[bad], &mut Fifo).unwrap_err();
            assert!(
                matches!(err, SimError::MalformedJobSpec { job, .. } if job == id),
                "expected MalformedJobSpec for {id:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn recorder_publishes_per_cycle_counters_and_gauges() {
        let recorder = Recorder::enabled();
        let engine = Engine::new(ClusterSpec::uniform(1, 2), EngineConfig::default())
            .with_recorder(recorder.clone());
        let jobs = vec![be(1, 0.0, 1, 5.0), be(2, 0.0, 1, 5.0)];
        let metrics = engine.run(&jobs, &mut Fifo).unwrap();
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter("engine_cycles_total"),
            Some(metrics.cycles as u64)
        );
        assert_eq!(snap.counter("engine_placements_total"), Some(2));
        assert_eq!(snap.gauge("engine_queue_depth"), Some(0.0));
        assert_eq!(snap.gauge("engine_running_jobs"), Some(0.0));
    }

    #[test]
    fn total_free_view_helper() {
        struct Check;
        impl Scheduler for Check {
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                assert_eq!(view.total_free(), view.free.iter().sum::<u32>());
                SchedulingDecision::noop()
            }
        }
        let engine = Engine::new(
            ClusterSpec::uniform(2, 3),
            EngineConfig {
                drain: Some(5.0),
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 1, 5.0)];
        engine.run(&jobs, &mut Check).unwrap();
    }

    #[test]
    fn fault_takes_free_capacity_and_restores_it() {
        // 4 nodes; 3 go down at t=5 and come back at t=30. A 4-node job
        // arriving at t=10 cannot start until the recovery.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                faults: vec![
                    FaultEvent::PartitionDown {
                        at: 5.0,
                        partition: PartitionId(0),
                        nodes: 3,
                    },
                    FaultEvent::PartitionUp {
                        at: 30.0,
                        partition: PartitionId(0),
                        nodes: 3,
                    },
                ],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 10.0, 4, 20.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        let o = &m.outcomes[0];
        assert_eq!(o.state, JobState::Completed);
        assert!(
            o.start_time.unwrap() >= 30.0,
            "started at {:?} despite 3 nodes down",
            o.start_time
        );
    }

    #[test]
    fn fault_on_busy_partition_defers_until_jobs_release() {
        // Both nodes busy until t=50; the t=10 down-fault must not kill the
        // running gang, but the released capacity is owed to the fault, so
        // the second job can never start (drain cuts the run off).
        let engine = Engine::new(
            ClusterSpec::uniform(1, 2),
            EngineConfig {
                drain: Some(200.0),
                faults: vec![FaultEvent::PartitionDown {
                    at: 10.0,
                    partition: PartitionId(0),
                    nodes: 2,
                }],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 50.0), be(2, 20.0, 2, 5.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(
            m.outcomes[0].state,
            JobState::Completed,
            "fault kills no gang"
        );
        assert_eq!(
            m.outcomes[1].state,
            JobState::Pending,
            "capacity owed to fault"
        );
    }

    #[test]
    fn preempted_capacity_is_spendable_before_fault_debt_settles() {
        // 2 nodes, all busy; a down-fault at t=5 leaves the partition owing
        // both nodes. At t=10 the scheduler preempts the running gang and
        // places a new one into the reclaimed nodes in the same decision —
        // legal, because `owed` is invisible through SimulationView. The
        // debt settles only once the new gang releases.
        struct Swap;
        impl Scheduler for Swap {
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                let wants = view.pending.iter().find(|j| j.id == JobId(2));
                let victim = view.running.iter().find(|r| r.spec.id == JobId(1));
                if let (Some(job), Some(victim)) = (wants, victim) {
                    d.preemptions.push(victim.spec.id);
                    d.placements.push(Placement {
                        job: job.id,
                        allocation: vec![(PartitionId(0), job.tasks)],
                    });
                } else if let Some(job) = view.pending.iter().find(|j| j.id == JobId(1)) {
                    if view.free[0] >= job.tasks {
                        d.placements.push(Placement {
                            job: job.id,
                            allocation: vec![(PartitionId(0), job.tasks)],
                        });
                    }
                }
                d
            }
        }
        let engine = Engine::new(
            ClusterSpec::uniform(1, 2),
            EngineConfig {
                drain: Some(200.0),
                faults: vec![FaultEvent::PartitionDown {
                    at: 5.0,
                    partition: PartitionId(0),
                    nodes: 2,
                }],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 500.0), be(2, 10.0, 2, 5.0)];
        let m = engine.run(&jobs, &mut Swap).unwrap();
        assert_eq!(
            m.outcomes[1].state,
            JobState::Completed,
            "{:?}",
            m.outcomes[1]
        );
        assert_eq!(m.outcomes[0].preemptions, 1);
        // After job 2 released, the owed nodes went offline: job 1 (now
        // pending again) can never restart.
        assert_eq!(m.outcomes[0].state, JobState::Pending);
    }

    #[test]
    fn overlapping_restore_is_clamped() {
        // Restoring more nodes than ever went down must not mint capacity.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 2),
            EngineConfig {
                drain: Some(100.0),
                faults: vec![
                    FaultEvent::PartitionDown {
                        at: 1.0,
                        partition: PartitionId(0),
                        nodes: 1,
                    },
                    FaultEvent::PartitionUp {
                        at: 2.0,
                        partition: PartitionId(0),
                        nodes: 5,
                    },
                ],
                ..EngineConfig::default()
            },
        );
        struct CheckFree;
        impl Scheduler for CheckFree {
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                assert!(view.free[0] <= 2, "free {} exceeds capacity", view.free[0]);
                SchedulingDecision::noop()
            }
        }
        let jobs = vec![be(1, 50.0, 4, 10.0)]; // unplaceable; keeps cycles alive
        engine.run(&jobs, &mut CheckFree).unwrap();
    }

    #[test]
    fn fault_on_unknown_partition_panics() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(
                ClusterSpec::uniform(1, 2),
                EngineConfig {
                    faults: vec![FaultEvent::PartitionDown {
                        at: 0.0,
                        partition: PartitionId(9),
                        nodes: 1,
                    }],
                    ..EngineConfig::default()
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn observer_sees_conserved_capacity_under_faults() {
        struct Conservation {
            cycles_seen: usize,
            last_now: f64,
        }
        impl CycleObserver for Conservation {
            fn on_cycle(&mut self, s: &EngineSnapshot<'_>) {
                assert!(s.now >= self.last_now, "clock went backwards");
                self.last_now = s.now;
                self.cycles_seen += 1;
                let mut allocated = vec![0u32; s.capacity.len()];
                for r in &s.running {
                    for (p, n) in r.allocation {
                        allocated[p.index()] += n;
                    }
                }
                for (p, &alloc) in allocated.iter().enumerate() {
                    assert_eq!(
                        s.free[p] + alloc + s.offline[p],
                        s.capacity[p],
                        "partition {p} capacity leak at t={}",
                        s.now
                    );
                }
            }
        }
        let engine = Engine::new(
            ClusterSpec::uniform(2, 3),
            EngineConfig {
                drain: Some(300.0),
                faults: vec![
                    FaultEvent::PartitionDown {
                        at: 6.0,
                        partition: PartitionId(0),
                        nodes: 2,
                    },
                    FaultEvent::PartitionUp {
                        at: 60.0,
                        partition: PartitionId(0),
                        nodes: 2,
                    },
                ],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![
            be(1, 0.0, 4, 40.0),
            be(2, 5.0, 3, 20.0),
            be(3, 30.0, 2, 10.0),
        ];
        let mut obs = Conservation {
            cycles_seen: 0,
            last_now: 0.0,
        };
        engine.run_observed(&jobs, &mut Fifo, &mut obs).unwrap();
        assert!(
            obs.cycles_seen > 5,
            "observer saw {} cycles",
            obs.cycles_seen
        );
    }

    #[test]
    fn node_crash_kills_running_gang_and_job_retries() {
        // 4 nodes, job 1 holds 2. A 3-node crash at t=10 absorbs the 2 free
        // nodes and must kill the gang for the third. Recovery at t=20
        // restores capacity; the job retries (after its 5 s backoff) and
        // completes on the second attempt.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                faults: vec![
                    FaultEvent::NodeCrash {
                        at: 10.0,
                        partition: PartitionId(0),
                        nodes: 3,
                    },
                    FaultEvent::PartitionUp {
                        at: 20.0,
                        partition: PartitionId(0),
                        nodes: 3,
                    },
                ],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 50.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        let o = &m.outcomes[0];
        assert_eq!(o.state, JobState::Completed, "{o:?}");
        assert_eq!(o.kills, 1);
        assert_eq!(m.kills, 1);
        assert_eq!(m.retry_cancellations, 0);
        assert_eq!(o.start_time, Some(20.0), "retry starts after recovery");
        // Work lost to the kill: 10 s elapsed × 2 tasks.
        assert!((m.wasted_machine_seconds - 20.0).abs() < 1e-9);
    }

    #[test]
    fn node_crash_prefers_free_nodes() {
        // Crash of 2 nodes with 2 free: no gang dies.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                faults: vec![FaultEvent::NodeCrash {
                    at: 10.0,
                    partition: PartitionId(0),
                    nodes: 2,
                }],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 50.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.kills, 0);
        assert_eq!(m.outcomes[0].state, JobState::Completed);
        assert_eq!(m.outcomes[0].kills, 0);
    }

    #[test]
    fn task_kill_requeues_under_backoff() {
        // Kill at t=10 with a 5 s backoff: the job is withheld from the
        // scheduler until t=15 even though capacity is free the whole time,
        // so the retry starts at the t=16 cycle.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                faults: vec![FaultEvent::TaskKill {
                    at: 10.0,
                    job: JobId(1),
                }],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 50.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        let o = &m.outcomes[0];
        assert_eq!(o.state, JobState::Completed);
        assert_eq!(o.kills, 1);
        assert_eq!(o.start_time, Some(16.0), "backoff gates the retry");
        assert!((m.wasted_machine_seconds - 20.0).abs() < 1e-9);
    }

    #[test]
    fn exhausted_retry_budget_cancels_the_job() {
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                faults: vec![
                    FaultEvent::TaskKill {
                        at: 10.0,
                        job: JobId(1),
                    },
                    FaultEvent::TaskKill {
                        at: 40.0,
                        job: JobId(1),
                    },
                ],
                retry: RetryPolicy {
                    max_retries: 1,
                    ..RetryPolicy::default()
                },
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 100.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        let o = &m.outcomes[0];
        assert_eq!(o.state, JobState::Canceled, "{o:?}");
        assert_eq!(o.kills, 2);
        assert_eq!(m.kills, 2);
        assert_eq!(m.retry_cancellations, 1);
    }

    #[test]
    fn kill_callback_reports_censored_elapsed() {
        #[derive(Default)]
        struct Observed {
            kills: Vec<(f64, bool)>,
            completions: usize,
        }
        impl Scheduler for Observed {
            fn on_job_killed(&mut self, _s: &JobSpec, elapsed: f64, will_retry: bool, _now: f64) {
                self.kills.push((elapsed, will_retry));
            }
            fn on_job_completed(&mut self, _s: &JobSpec, _o: &JobOutcome, _now: f64) {
                self.completions += 1;
            }
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                if let Some(job) = view.pending.first() {
                    if view.free[0] >= job.tasks {
                        d.placements.push(Placement {
                            job: job.id,
                            allocation: vec![(PartitionId(0), job.tasks)],
                        });
                    }
                }
                d
            }
        }
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                faults: vec![FaultEvent::TaskKill {
                    at: 10.0,
                    job: JobId(1),
                }],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 50.0)];
        let mut s = Observed::default();
        engine.run(&jobs, &mut s).unwrap();
        assert_eq!(s.kills.len(), 1);
        let (elapsed, will_retry) = s.kills[0];
        assert!(
            (elapsed - 10.0).abs() < 1e-9,
            "censored elapsed is the truncated runtime, got {elapsed}"
        );
        assert!(elapsed < 50.0, "a censored sample is a lower bound");
        assert!(will_retry);
        assert_eq!(s.completions, 1, "the retry still completes");
    }

    #[test]
    fn task_kill_on_idle_job_is_a_noop() {
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                faults: vec![FaultEvent::TaskKill {
                    at: 2.5,
                    job: JobId(9),
                }],
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 20.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        assert_eq!(m.kills, 0);
        assert_eq!(m.outcomes[0].state, JobState::Completed);
    }

    #[test]
    fn retry_expiring_exactly_on_tick_repends_that_cycle() {
        // Cycle ticks accumulate `now + 0.1` float drift: the 8th tick is
        // 0.7999999999999999, a few ulps below the exact retry time
        // 0.5 + 0.3 = 0.8. The eligibility gate must tolerate that drift so
        // the retry re-pends on that tick instead of one full cycle later.
        let engine = Engine::new(
            ClusterSpec::uniform(1, 4),
            EngineConfig {
                cycle_interval: 0.1,
                faults: vec![FaultEvent::TaskKill {
                    at: 0.5,
                    job: JobId(1),
                }],
                retry: RetryPolicy {
                    max_retries: 3,
                    backoff_base: 0.3,
                    backoff_cap: 300.0,
                },
                ..EngineConfig::default()
            },
        );
        let jobs = vec![be(1, 0.0, 2, 5.0)];
        let m = engine.run(&jobs, &mut Fifo).unwrap();
        let o = &m.outcomes[0];
        assert_eq!(o.state, JobState::Completed);
        assert_eq!(o.kills, 1);
        let restart = o.start_time.unwrap();
        assert!(
            (restart - 0.8).abs() < 0.05,
            "retry restarted at {restart}, not on the t≈0.8 tick"
        );
    }

    #[test]
    fn retry_eps_is_ulp_aware_at_long_service_horizons() {
        // At now = 2^46 one ulp is ~0.016 s. The old gate scaled a fixed
        // 1e-9 by |now|, yielding a ~7×10^4 s tolerance that made every
        // backoff shorter than ~19 hours eligible immediately. The
        // ulp-aware gate forgives boundary drift (at least 1 ulp) but is
        // capped at a quarter cycle / floored at 64 ulps of now.
        let now = (1u64 << 46) as f64;
        let ulp = f64::EPSILON * now; // exactly 2^-6 at 2^46
        let eps = retry_tick_eps(now, 2.0);
        assert!(eps >= ulp, "on-tick drift must be forgiven: {eps} < {ulp}");
        assert!(
            eps <= 64.0 * ulp + 1e-12,
            "tolerance must not collapse backoffs: {eps}"
        );
        assert!(
            eps < 5.0,
            "a default 5 s backoff must survive the gate: {eps}"
        );
        // Short horizons keep the historical tolerance exactly, so existing
        // traces replay byte-identically.
        assert_eq!(retry_tick_eps(0.8, 0.1), 1e-9);
        assert_eq!(retry_tick_eps(100.0, 2.0), 1e-9 * 100.0);
    }

    #[test]
    fn cluster_beyond_scheduler_limit_is_a_typed_error() {
        /// FIFO with a declared 128-partition representation ceiling.
        struct Capped;
        impl Scheduler for Capped {
            fn schedule(&mut self, view: &SimulationView<'_>, now: f64) -> SchedulingDecision {
                Fifo.schedule(view, now)
            }
            fn max_partitions(&self) -> Option<usize> {
                Some(128)
            }
        }
        // 127 and 128 partitions are accepted and schedule normally.
        for racks in [127, 128] {
            let engine = Engine::new(ClusterSpec::uniform(racks, 1), EngineConfig::default());
            let jobs = vec![be(1, 0.0, 2, 10.0)];
            let m = engine.run(&jobs, &mut Capped).unwrap();
            assert_eq!(m.count(JobState::Completed), 1, "{racks} racks");
        }
        // 129 partitions are rejected at ingest, before any event runs.
        let engine = Engine::new(ClusterSpec::uniform(129, 1), EngineConfig::default());
        let jobs = vec![be(1, 0.0, 2, 10.0)];
        let err = engine.run(&jobs, &mut Capped).unwrap_err();
        assert_eq!(
            err,
            SimError::ClusterTooLarge {
                partitions: 129,
                max: 128
            }
        );
    }

    #[test]
    fn scheduler_callbacks_fire() {
        #[derive(Default)]
        struct Counting {
            submitted: usize,
            completed: usize,
            observed_runtime: f64,
        }
        impl Scheduler for Counting {
            fn on_job_submitted(&mut self, _spec: &JobSpec, _now: f64) {
                self.submitted += 1;
            }
            fn on_job_completed(&mut self, _spec: &JobSpec, outcome: &JobOutcome, _now: f64) {
                self.completed += 1;
                self.observed_runtime = outcome.measured_runtime.unwrap();
            }
            fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
                let mut d = SchedulingDecision::noop();
                if let Some(job) = view.pending.first() {
                    d.placements.push(Placement {
                        job: job.id,
                        allocation: vec![(PartitionId(0), job.tasks)],
                    });
                }
                d
            }
        }
        let engine = Engine::new(ClusterSpec::uniform(1, 4), EngineConfig::default());
        let jobs = vec![be(1, 5.0, 1, 42.0)];
        let mut s = Counting::default();
        let m = engine.run(&jobs, &mut s).unwrap();
        assert_eq!(s.submitted, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.observed_runtime, 42.0);
        assert!(m.cycles > 0);
    }
}
