//! Long-running serve session: the streaming counterpart of [`Engine`].
//!
//! [`Engine::run`](crate::Engine::run) is batch-run-to-completion: it holds
//! every job record for the whole run and returns one [`Metrics`] at the
//! end. A [`ServeSession`] instead accepts jobs one at a time over an open
//! boundary ([`ServeSession::submit`]), pumps the same discrete-event loop
//! on the same shared ingest → decide → commit stages, and keeps memory
//! bounded by **retiring** completed-job state once a configurable
//! retention window has passed. Retired outcomes are folded into running
//! aggregates plus an order-sensitive FNV-1a digest, so two sessions that
//! processed the same stream agree on a single `u64` even after all per-job
//! state is gone.
//!
//! # Determinism and restart equivalence
//!
//! The session is deterministic: the same submissions produce the same
//! decisions, aggregates, and digest. A **quiescent** session (no queued
//! events, nothing pending, nothing running) can be serialized to a
//! [`ServeSnapshot`] and a fresh process can [`ServeSession::restore`] it
//! and continue the stream; the continued session is state-identical to one
//! that never restarted. Quiescence is reached whenever the job stream goes
//! idle long enough for in-flight work to drain — the natural snapshot
//! point for a daemon (the scheduler's own learned state is snapshotted
//! alongside by the caller).
//!
//! # Bounded structures
//!
//! * per-job records (spec, outcome, epoch) — retired after `retention`
//!   seconds past the terminal event (prefix order, so indices stay dense);
//! * `index_of` — entries removed at retirement (duplicate-id detection
//!   therefore covers live jobs only);
//! * the event queue — holds only in-flight finishes, scripted faults, the
//!   cycle tick, and not-yet-arrived submissions.
//!
//! Every bound is exported as an obs gauge (`serve_live_jobs`,
//! `serve_retired_jobs_total`, `serve_retention_seconds`, …) so saturation
//! is visible in the Prometheus exposition.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use threesigma_obs::{sanitize, Counter, Gauge, Recorder};

use crate::engine::{
    blank_outcome, commit, decide, kill_attempt, push_event, release, spec_problem, Event,
    EventKind, FaultEvent, Running, Scheduler, SimError,
};
use crate::job::{JobId, JobSpec, RetryPolicy};
use crate::metrics::{JobOutcome, JobState};
use crate::spec::ClusterSpec;

/// Serve-session configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seconds between scheduling cycles.
    pub cycle_interval: f64,
    /// RNG seed (reserved; the serve loop rejects RC-fidelity clusters, so
    /// no draws are taken and restarts need no RNG replay).
    pub seed: u64,
    /// Retry policy for fault-killed jobs.
    pub retry: RetryPolicy,
    /// Seconds a terminal job record is kept before it is retired into the
    /// running aggregates. `f64::INFINITY` disables retirement.
    pub retention: f64,
    /// Scripted capacity faults (empty in production; used by soak and
    /// regression scenarios).
    pub faults: Vec<FaultEvent>,
    /// Admission bound on non-terminal jobs held by the session (queued,
    /// pending, or running). `None` disables the bound. Submissions over
    /// the bound are rejected with [`SimError::QueueFull`].
    pub max_queue: Option<usize>,
    /// Admission bound on non-terminal jobs per tenant (the `tenant` job
    /// attribute; jobs without one are exempt). `None` disables the bound.
    /// Submissions over the bound are rejected with
    /// [`SimError::TenantQuotaExceeded`].
    pub tenant_quota: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            cycle_interval: 2.0,
            seed: 0x3516,
            retry: RetryPolicy::default(),
            retention: 3600.0,
            faults: Vec::new(),
            max_queue: None,
            tenant_quota: None,
        }
    }
}

/// Aggregates folded out of retired job records. Mirrors the formulas of
/// [`Metrics`](crate::Metrics) so a serve summary over a fully retired
/// stream equals the batch metrics over the same trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RetiredAggregate {
    /// Jobs retired.
    pub jobs: u64,
    /// Retired jobs that completed.
    pub completed: u64,
    /// Retired jobs that were cancelled.
    pub canceled: u64,
    /// Retired SLO jobs.
    pub slo_jobs: u64,
    /// Retired SLO jobs that missed their deadline.
    pub slo_misses: u64,
    /// Machine-seconds of SLO work completed within deadline.
    pub slo_goodput_machine_seconds: f64,
    /// Machine-seconds of completed best-effort work.
    pub be_goodput_machine_seconds: f64,
    /// Sum of best-effort response times (completion − submission).
    pub be_latency_sum: f64,
    /// Completed best-effort jobs (denominator for the latency mean).
    pub be_completed: u64,
}

impl RetiredAggregate {
    fn fold(&mut self, o: &JobOutcome) {
        self.jobs += 1;
        match o.state {
            JobState::Completed => self.completed += 1,
            JobState::Canceled => self.canceled += 1,
            // Prefix retirement only removes terminal records.
            JobState::Pending | JobState::Running => {}
        }
        if o.is_slo() {
            self.slo_jobs += 1;
            if o.deadline_met() == Some(false) {
                self.slo_misses += 1;
            }
            if o.deadline_met() == Some(true) {
                self.slo_goodput_machine_seconds += o.machine_seconds();
            }
        } else if o.state == JobState::Completed {
            self.be_goodput_machine_seconds += o.machine_seconds();
            if let Some(lat) = o.latency() {
                self.be_latency_sum += lat;
                self.be_completed += 1;
            }
        }
    }
}

/// Deterministic summary of everything a session has processed: retired
/// aggregates plus the still-live records, combined. Two sessions that
/// consumed the same stream produce identical summaries (including the
/// digest), whether or not one of them snapshotted and restarted in the
/// middle — that is the restart-equivalence contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Simulated time of the last processed event.
    pub now: f64,
    /// Scheduling cycles executed.
    pub cycles: usize,
    /// Jobs accepted over the boundary.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs cancelled (decision or retry exhaustion).
    pub canceled: u64,
    /// Jobs retired out of per-job state.
    pub retired: u64,
    /// Jobs currently live (terminal-but-retained + pending + running).
    pub live: usize,
    /// Fault kills applied.
    pub kills: usize,
    /// Preemptions applied.
    pub preemptions: usize,
    /// Retry-budget cancellations (subset of `canceled`).
    pub retry_cancellations: usize,
    /// Machine-seconds destroyed by kills/preemptions.
    pub wasted_machine_seconds: f64,
    /// Percentage (0–100) of SLO jobs that missed their deadline.
    pub slo_miss_pct: f64,
    /// Goodput (SLO-within-deadline + completed BE), machine-hours.
    pub goodput_hours: f64,
    /// Order-sensitive FNV-1a digest over every job outcome the session has
    /// produced (retired first, then live, in ingest order).
    pub digest: u64,
}

/// Serialized form of a quiescent session. Byte-stable: serializing the
/// same session state always produces identical JSON (all floats are finite
/// and serde_json's shortest-roundtrip formatting is deterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Format version (see [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Simulated time of the last processed event.
    pub now: f64,
    /// Latest accepted submission time.
    pub last_submit: f64,
    /// Cycles executed so far.
    pub cycles: usize,
    /// Event sequence counter (FIFO tie-break continuity).
    pub seq: u64,
    /// Ingest index of the first live record.
    pub base: usize,
    /// Counters.
    pub submitted: u64,
    /// Completed jobs.
    pub completed: u64,
    /// Placements applied.
    pub placements: u64,
    /// Decision cancellations applied.
    pub cancellations: u64,
    /// Preemptions applied.
    pub preemptions: usize,
    /// Fault kills applied.
    pub kills: usize,
    /// Retry-budget cancellations.
    pub retry_cancellations: usize,
    /// Machine-seconds destroyed by kills/preemptions.
    pub wasted_machine_seconds: f64,
    /// Aggregates of retired records.
    pub retired: RetiredAggregate,
    /// Digest over retired records.
    pub retired_digest: u64,
    /// Free nodes per partition.
    pub free: Vec<u32>,
    /// Fault-offline nodes per partition.
    pub offline: Vec<u32>,
    /// Fault debt per partition.
    pub owed: Vec<u32>,
    /// Live records: `(spec, outcome, epoch)` in ingest order. At
    /// quiescence every live record is terminal (retained, not yet past the
    /// retention window).
    pub live: Vec<(JobSpec, JobOutcome, u32)>,
    /// Every tenant the session has seen (version ≥ 2), so a restored
    /// session re-registers the same per-tenant in-flight gauges and its
    /// metrics dump stays byte-identical to a never-restarted run. At
    /// quiescence every in-flight count is zero, so only names persist.
    /// `None` in version-1 snapshots (the field did not exist; a missing
    /// key deserializes as `None`, the legacy-accepting fallback).
    pub tenants: Option<Vec<String>>,
}

/// Current [`ServeSnapshot::version`]. Version 1 lacked the `tenants`
/// registry and is still accepted; versions newer than this are rejected
/// with [`SimError::UnsupportedSnapshotVersion`].
pub const SNAPSHOT_VERSION: u32 = 2;

/// Serve metric handles (all totals published with `set_total`, so a
/// restored session reports stream-lifetime totals, not process totals).
struct ServeMetrics {
    cycles: Counter,
    placements: Counter,
    preemptions: Counter,
    cancellations: Counter,
    kills: Counter,
    retry_cancellations: Counter,
    submitted: Counter,
    completed: Counter,
    retired: Counter,
    live_jobs: Gauge,
    queue_depth: Gauge,
    running_jobs: Gauge,
    free_nodes: Gauge,
    retention: Gauge,
}

impl ServeMetrics {
    fn register(rec: &Recorder) -> Self {
        Self {
            cycles: rec.counter("serve_cycles_total", "Scheduling cycles executed"),
            placements: rec.counter("serve_placements_total", "Job placements applied"),
            preemptions: rec.counter("serve_preemptions_total", "Jobs preempted mid-run"),
            cancellations: rec.counter(
                "serve_cancellations_total",
                "Jobs cancelled by scheduler decision",
            ),
            kills: rec.counter("serve_kills_total", "Running attempts killed by faults"),
            retry_cancellations: rec.counter(
                "serve_retry_cancellations_total",
                "Jobs cancelled after exhausting the retry budget",
            ),
            submitted: rec.counter("serve_jobs_submitted_total", "Jobs accepted for scheduling"),
            completed: rec.counter("serve_jobs_completed_total", "Jobs run to completion"),
            retired: rec.counter(
                "serve_jobs_retired_total",
                "Terminal job records retired into aggregates",
            ),
            live_jobs: rec.gauge(
                "serve_live_jobs",
                "Per-job records currently held (bounded by retention)",
            ),
            queue_depth: rec.gauge("serve_queue_depth", "Pending jobs after the last cycle"),
            running_jobs: rec.gauge("serve_running_jobs", "Running jobs after the last cycle"),
            free_nodes: rec.gauge("serve_free_nodes", "Free nodes across all partitions"),
            retention: rec.gauge(
                "serve_retention_seconds",
                "Configured retention window for terminal job records",
            ),
        }
    }
}

/// A long-running scheduling session over a streaming job boundary.
pub struct ServeSession {
    cluster: ClusterSpec,
    config: ServeConfig,
    metrics: ServeMetrics,
    // Kept for lazily registering per-tenant in-flight gauges; cheap
    // (Arc-backed) clone of the recorder passed to `new`/`restore`.
    recorder: Recorder,

    // Cluster capacity state (see engine.rs invariants).
    free: Vec<u32>,
    offline: Vec<u32>,
    owed: Vec<u32>,

    // Event loop state.
    queue: BinaryHeap<Event>,
    seq: u64,
    arrivals_queued: usize,
    cycle_scheduled: bool,
    now: f64,
    last_submit: f64,

    // Per-job state, indexed by `ingest index − base`. The three deques
    // move in lockstep; `base` advances as the terminal prefix retires.
    base: usize,
    jobs: VecDeque<JobSpec>,
    outcomes: VecDeque<JobOutcome>,
    epochs: VecDeque<u32>,
    index_of: BTreeMap<JobId, usize>,

    pending: Vec<usize>,
    running: BTreeMap<JobId, Running>,
    retry_at: BTreeMap<usize, f64>,
    rng: StdRng,

    // Admission state: non-terminal jobs per tenant. Entries persist at
    // zero once seen, so the per-tenant gauge set (and the byte-stable
    // metrics dump) is a function of the stream, not of restart timing.
    in_flight: BTreeMap<String, u64>,
    tenant_gauges: BTreeMap<String, Gauge>,

    // Counters.
    cycles: usize,
    submitted: u64,
    completed: u64,
    placements_total: u64,
    cancellations_total: u64,
    preemptions: usize,
    kills: usize,
    retry_cancellations: usize,
    wasted: f64,

    // Retired state.
    retired: RetiredAggregate,
    retired_digest: u64,
}

impl ServeSession {
    /// Creates a fresh session.
    ///
    /// # Errors
    ///
    /// Rejects non-positive cycle intervals, negative/non-finite retention,
    /// RC-fidelity clusters (their runtime jitter draws would make restarts
    /// depend on RNG replay), and malformed fault scripts — all as typed
    /// [`SimError::BadServeConfig`] values, since a daemon must refuse bad
    /// config instead of panicking.
    pub fn new(
        cluster: ClusterSpec,
        config: ServeConfig,
        recorder: &Recorder,
    ) -> Result<Self, SimError> {
        if config.cycle_interval.is_nan() || config.cycle_interval <= 0.0 {
            return Err(SimError::BadServeConfig {
                reason: "cycle interval must be positive",
            });
        }
        if config.retention.is_nan() || config.retention < 0.0 {
            return Err(SimError::BadServeConfig {
                reason: "retention must be non-negative",
            });
        }
        if cluster.rc_fidelity.is_some() {
            return Err(SimError::BadServeConfig {
                reason: "serve sessions do not support RC-fidelity clusters",
            });
        }
        for f in &config.faults {
            if let Some(p) = f.partition() {
                if p.index() >= cluster.num_partitions() {
                    return Err(SimError::BadServeConfig {
                        reason: "fault references unknown partition",
                    });
                }
            }
            if !f.at().is_finite() || f.at() < 0.0 {
                return Err(SimError::BadServeConfig {
                    reason: "fault time must be finite and non-negative",
                });
            }
        }
        let parts = cluster.num_partitions();
        let capacity: Vec<u32> = cluster
            .partition_ids()
            .map(|p| cluster.partition_size(p))
            .collect();
        let metrics = ServeMetrics::register(recorder);
        let mut session = Self {
            free: capacity,
            offline: vec![0; parts],
            owed: vec![0; parts],
            queue: BinaryHeap::new(),
            seq: 0,
            arrivals_queued: 0,
            cycle_scheduled: false,
            now: 0.0,
            last_submit: 0.0,
            base: 0,
            jobs: VecDeque::new(),
            outcomes: VecDeque::new(),
            epochs: VecDeque::new(),
            index_of: BTreeMap::new(),
            pending: Vec::new(),
            running: BTreeMap::new(),
            retry_at: BTreeMap::new(),
            rng: StdRng::seed_from_u64(config.seed),
            in_flight: BTreeMap::new(),
            tenant_gauges: BTreeMap::new(),
            recorder: recorder.clone(),
            cycles: 0,
            submitted: 0,
            completed: 0,
            placements_total: 0,
            cancellations_total: 0,
            preemptions: 0,
            kills: 0,
            retry_cancellations: 0,
            wasted: 0.0,
            retired: RetiredAggregate::default(),
            retired_digest: FNV_OFFSET,
            metrics,
            cluster,
            config,
        };
        for i in 0..session.config.faults.len() {
            let at = session.config.faults[i].at();
            push_event(
                &mut session.queue,
                &mut session.seq,
                at,
                EventKind::Fault { fault: i },
            );
        }
        Ok(session)
    }

    /// Rebuilds a session from a [`ServeSnapshot`] taken by
    /// [`ServeSession::snapshot`]. Scripted faults dated after the snapshot
    /// time are re-queued; earlier ones already acted on the captured
    /// capacity state.
    pub fn restore(
        cluster: ClusterSpec,
        config: ServeConfig,
        recorder: &Recorder,
        snap: &ServeSnapshot,
    ) -> Result<Self, SimError> {
        if snap.version > SNAPSHOT_VERSION {
            return Err(SimError::UnsupportedSnapshotVersion {
                found: snap.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if snap.version == 0 {
            return Err(SimError::BadServeConfig {
                reason: "snapshot version mismatch",
            });
        }
        let mut session = Self::new(cluster, config, recorder)?;
        let parts = session.cluster.num_partitions();
        if snap.free.len() != parts || snap.offline.len() != parts || snap.owed.len() != parts {
            return Err(SimError::BadServeConfig {
                reason: "snapshot partition count does not match the cluster",
            });
        }
        // Drop the fault events new() queued; only future-dated ones return.
        session.queue.clear();
        session.seq = snap.seq;
        for i in 0..session.config.faults.len() {
            let at = session.config.faults[i].at();
            if at > snap.now {
                push_event(
                    &mut session.queue,
                    &mut session.seq,
                    at,
                    EventKind::Fault { fault: i },
                );
            }
        }
        session.now = snap.now;
        session.last_submit = snap.last_submit;
        session.cycles = snap.cycles;
        session.base = snap.base;
        session.free.copy_from_slice(&snap.free);
        session.offline.copy_from_slice(&snap.offline);
        session.owed.copy_from_slice(&snap.owed);
        session.submitted = snap.submitted;
        session.completed = snap.completed;
        session.placements_total = snap.placements;
        session.cancellations_total = snap.cancellations;
        session.preemptions = snap.preemptions;
        session.kills = snap.kills;
        session.retry_cancellations = snap.retry_cancellations;
        session.wasted = snap.wasted_machine_seconds;
        session.retired = snap.retired;
        session.retired_digest = snap.retired_digest;
        for (i, (spec, outcome, epoch)) in snap.live.iter().enumerate() {
            let idx = snap.base + i;
            if session.index_of.insert(spec.id, idx).is_some() {
                return Err(SimError::BadServeConfig {
                    reason: "snapshot contains duplicate live job ids",
                });
            }
            session.jobs.push_back(spec.clone());
            session.outcomes.push_back(outcome.clone());
            session.epochs.push_back(*epoch);
        }
        // Re-register every tenant the stream has seen (all at zero: the
        // snapshot was quiescent), so restored gauge sets match a
        // never-restarted run byte for byte.
        for tenant in snap.tenants.iter().flatten() {
            session.tenant_gauge(tenant);
            session.in_flight.entry(tenant.clone()).or_insert(0);
        }
        session.publish_gauges();
        Ok(session)
    }

    /// Checks whether a job would be accepted by [`submit`](Self::submit)
    /// right now, without mutating the session. The check is deterministic
    /// (a pure function of session state), so a caller that journals
    /// accepted jobs between `admit` and `submit` replays to the identical
    /// accept/reject sequence. Validation order: spec, submit-time order,
    /// duplicate id, queue bound, tenant quota.
    ///
    /// # Errors
    ///
    /// The typed rejection `submit` would return.
    pub fn admit(&self, spec: &JobSpec) -> Result<(), SimError> {
        if let Some(reason) = spec_problem(spec) {
            return Err(SimError::MalformedJobSpec {
                job: spec.id,
                reason,
            });
        }
        if spec.submit_time < self.last_submit || spec.submit_time < self.now {
            return Err(SimError::OutOfOrderSubmit { job: spec.id });
        }
        if self.index_of.contains_key(&spec.id) {
            return Err(SimError::DuplicateJobId { job: spec.id });
        }
        if let Some(limit) = self.config.max_queue {
            let depth = self.non_terminal();
            if depth >= limit {
                return Err(SimError::QueueFull {
                    job: spec.id,
                    depth,
                    limit,
                });
            }
        }
        if let Some(quota) = self.config.tenant_quota {
            if let Some(tenant) = spec.attributes.get("tenant") {
                let in_flight = self.in_flight.get(tenant).copied().unwrap_or(0);
                if in_flight >= quota {
                    return Err(SimError::TenantQuotaExceeded {
                        job: spec.id,
                        tenant: tenant.to_owned(),
                        in_flight,
                        quota,
                    });
                }
            }
        }
        Ok(())
    }

    /// Jobs accepted but not yet terminal (queued arrivals + pending +
    /// running + retained records still mid-retry) — the depth the
    /// [`ServeConfig::max_queue`] admission bound applies to.
    pub fn non_terminal(&self) -> usize {
        let terminal = self.completed + self.cancellations_total + self.retry_cancellations as u64;
        usize::try_from(self.submitted - terminal).unwrap_or(usize::MAX)
    }

    /// Accepts a job for scheduling. Jobs must arrive in non-decreasing
    /// `submit_time` order, at or after the session's current time; the
    /// arrival itself is processed when the event loop reaches that time
    /// ([`ServeSession::pump_until`]/[`ServeSession::drain`]).
    ///
    /// # Errors
    ///
    /// Any typed rejection from [`admit`](Self::admit): malformed spec,
    /// out-of-order submission, duplicate id, or an admission-control
    /// bound ([`SimError::QueueFull`], [`SimError::TenantQuotaExceeded`]).
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), SimError> {
        self.admit(&spec)?;
        if let Some(tenant) = spec.attributes.get("tenant") {
            let tenant = tenant.to_owned();
            self.tenant_gauge(&tenant);
            let n = self.in_flight.entry(tenant.clone()).or_insert(0);
            *n += 1;
            let v = *n;
            if let Some(g) = self.tenant_gauges.get(&tenant) {
                g.set(v as f64);
            }
        }
        let idx = self.base + self.jobs.len();
        // Revive the cycle chain if it went idle: the first cycle that can
        // see this job runs at its arrival time (arrivals order before
        // cycles at equal timestamps).
        if !self.cycle_scheduled {
            push_event(
                &mut self.queue,
                &mut self.seq,
                spec.submit_time,
                EventKind::Cycle,
            );
            self.cycle_scheduled = true;
        }
        push_event(
            &mut self.queue,
            &mut self.seq,
            spec.submit_time,
            EventKind::Arrival { job: idx },
        );
        self.arrivals_queued += 1;
        self.last_submit = spec.submit_time;
        self.index_of.insert(spec.id, idx);
        self.outcomes.push_back(blank_outcome(&spec));
        self.epochs.push_back(0);
        self.jobs.push_back(spec);
        self.submitted += 1;
        Ok(())
    }

    /// Processes every queued event strictly before `limit`. Call with the
    /// next submission's time before submitting it, so simulated time never
    /// runs ahead of the stream.
    pub fn pump_until(
        &mut self,
        limit: f64,
        scheduler: &mut dyn Scheduler,
    ) -> Result<(), SimError> {
        while self.queue.peek().is_some_and(|ev| ev.time < limit) {
            let Some(ev) = self.queue.pop() else { break };
            self.step(ev, scheduler)?;
        }
        Ok(())
    }

    /// Processes queued events until the queue is empty or the next event
    /// lies beyond `horizon`. Returns `true` when the session reached
    /// quiescence (queue empty — which implies nothing pending and nothing
    /// running, since the cycle chain stays alive while work remains).
    pub fn drain(&mut self, horizon: f64, scheduler: &mut dyn Scheduler) -> Result<bool, SimError> {
        loop {
            match self.queue.peek() {
                None => return Ok(self.is_quiescent()),
                Some(ev) if ev.time > horizon => return Ok(false),
                Some(_) => {
                    let Some(ev) = self.queue.pop() else {
                        return Ok(self.is_quiescent());
                    };
                    self.step(ev, scheduler)?;
                }
            }
        }
    }

    /// Injects a runtime fault into the live session — the serve-boundary
    /// counterpart of scripted [`ServeConfig::faults`]. The fault must
    /// reference a known partition and be dated (finite) at or after the
    /// session's current time; it fires through the normal event loop.
    /// Injected faults are not part of a snapshot (a quiescent session has
    /// no queued events, so every injected fault has already fired), which
    /// is why a durable caller journals them and re-injects on replay.
    ///
    /// # Errors
    ///
    /// [`SimError::BadServeConfig`] for unknown partitions or invalid times.
    pub fn inject_fault(&mut self, fault: FaultEvent) -> Result<(), SimError> {
        if let Some(p) = fault.partition() {
            if p.index() >= self.cluster.num_partitions() {
                return Err(SimError::BadServeConfig {
                    reason: "fault references unknown partition",
                });
            }
        }
        if !fault.at().is_finite() || fault.at() < self.now || fault.at() < 0.0 {
            return Err(SimError::BadServeConfig {
                reason: "injected fault must be finite and dated at or after the current time",
            });
        }
        let i = self.config.faults.len();
        self.config.faults.push(fault);
        push_event(
            &mut self.queue,
            &mut self.seq,
            fault.at(),
            EventKind::Fault { fault: i },
        );
        Ok(())
    }

    /// True when no event is queued, nothing is pending, and nothing runs —
    /// the only state a snapshot may be taken in.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.pending.is_empty() && self.running.is_empty()
    }

    /// Serializes the session. Fails unless the session
    /// [is quiescent](Self::is_quiescent).
    pub fn snapshot(&self) -> Result<ServeSnapshot, SimError> {
        if !self.is_quiescent() {
            return Err(SimError::SnapshotNotQuiescent);
        }
        let live: Vec<(JobSpec, JobOutcome, u32)> = self
            .jobs
            .iter()
            .zip(self.outcomes.iter())
            .zip(self.epochs.iter())
            .map(|((j, o), e)| (j.clone(), o.clone(), *e))
            .collect();
        Ok(ServeSnapshot {
            version: SNAPSHOT_VERSION,
            now: self.now,
            last_submit: self.last_submit,
            cycles: self.cycles,
            seq: self.seq,
            base: self.base,
            submitted: self.submitted,
            completed: self.completed,
            placements: self.placements_total,
            cancellations: self.cancellations_total,
            preemptions: self.preemptions,
            kills: self.kills,
            retry_cancellations: self.retry_cancellations,
            wasted_machine_seconds: self.wasted,
            retired: self.retired,
            retired_digest: self.retired_digest,
            free: self.free.clone(),
            offline: self.offline.clone(),
            owed: self.owed.clone(),
            live,
            tenants: Some(self.in_flight.keys().cloned().collect()),
        })
    }

    /// The deterministic stream summary (retired aggregates + live records).
    pub fn summary(&self) -> ServeSummary {
        let mut agg = self.retired;
        let mut digest = self.retired_digest;
        for o in &self.outcomes {
            agg.fold(o);
            digest = fold_outcome(digest, o);
        }
        let canceled = agg.canceled;
        let slo_miss_pct = if agg.slo_jobs == 0 {
            0.0
        } else {
            100.0 * agg.slo_misses as f64 / agg.slo_jobs as f64
        };
        let goodput_hours =
            (agg.slo_goodput_machine_seconds + agg.be_goodput_machine_seconds) / 3600.0;
        ServeSummary {
            now: self.now,
            cycles: self.cycles,
            submitted: self.submitted,
            completed: self.completed,
            canceled,
            retired: self.retired.jobs,
            live: self.outcomes.len(),
            kills: self.kills,
            preemptions: self.preemptions,
            retry_cancellations: self.retry_cancellations,
            wasted_machine_seconds: self.wasted,
            slo_miss_pct,
            goodput_hours,
            digest,
        }
    }

    /// Simulated time of the last processed event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Scheduling cycles executed so far.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Per-job records currently held.
    pub fn live_jobs(&self) -> usize {
        self.outcomes.len()
    }

    /// Jobs retired into the aggregates.
    pub fn retired_jobs(&self) -> u64 {
        self.retired.jobs
    }

    /// Live job outcomes in ingest order (terminal records awaiting
    /// retirement, plus pending/running jobs mid-stream).
    pub fn live_outcomes(&self) -> impl Iterator<Item = &JobOutcome> {
        self.outcomes.iter()
    }

    fn step(&mut self, ev: Event, scheduler: &mut dyn Scheduler) -> Result<(), SimError> {
        self.now = ev.time;
        // Keep the deques contiguous so the shared stages can view them as
        // plain slices (amortized O(1): only pop_front/push_back occur).
        self.jobs.make_contiguous();
        self.outcomes.make_contiguous();
        self.epochs.make_contiguous();
        let base = self.base;
        match ev.kind {
            EventKind::Arrival { job } => {
                self.arrivals_queued -= 1;
                self.pending.push(job);
                scheduler.on_job_submitted(&self.jobs.as_slices().0[job - base], self.now);
            }
            EventKind::Finish { job, epoch } => {
                let id = self.jobs.as_slices().0[job - base].id;
                let valid = self.running.get(&id).is_some_and(|r| r.epoch == epoch);
                if !valid {
                    return Ok(()); // stale completion of a preempted/killed attempt
                }
                let Some(r) = self.running.remove(&id) else {
                    return Ok(());
                };
                release(
                    &mut self.free,
                    &mut self.offline,
                    &mut self.owed,
                    &r.allocation,
                );
                let o = &mut self.outcomes.as_mut_slices().0[job - base];
                o.state = JobState::Completed;
                o.start_time = Some(r.start);
                o.finish_time = Some(self.now);
                o.measured_runtime = Some(r.measured_runtime);
                o.on_preferred = Some(r.on_preferred);
                self.completed += 1;
                scheduler.on_job_completed(
                    &self.jobs.as_slices().0[job - base],
                    &self.outcomes.as_slices().0[job - base],
                    self.now,
                );
                self.note_terminal(job);
            }
            EventKind::Fault { fault } => self.apply_fault(fault, scheduler),
            EventKind::Cycle => {
                self.cycle_scheduled = false;
                self.cycles += 1;
                let decision = decide(
                    &self.cluster,
                    self.config.cycle_interval,
                    base,
                    self.jobs.as_slices().0,
                    &self.pending,
                    &self.retry_at,
                    &self.running,
                    &self.free,
                    self.now,
                    scheduler,
                );
                commit(
                    &decision,
                    self.now,
                    base,
                    self.jobs.as_slices().0,
                    &self.cluster,
                    &self.index_of,
                    &mut self.rng,
                    &mut self.free,
                    &mut self.offline,
                    &mut self.owed,
                    self.epochs.as_mut_slices().0,
                    self.outcomes.as_mut_slices().0,
                    &mut self.pending,
                    &mut self.retry_at,
                    &mut self.running,
                    &mut self.queue,
                    &mut self.seq,
                    &mut self.wasted,
                    &mut self.preemptions,
                )?;
                self.placements_total += decision.placements.len() as u64;
                self.cancellations_total += decision.cancellations.len() as u64;
                for id in &decision.cancellations {
                    if let Some(&idx) = self.index_of.get(id) {
                        self.note_terminal(idx);
                    }
                }
                self.retire_eligible();
                self.publish_gauges();
                if !self.pending.is_empty() || !self.running.is_empty() || self.arrivals_queued > 0
                {
                    push_event(
                        &mut self.queue,
                        &mut self.seq,
                        self.now + self.config.cycle_interval,
                        EventKind::Cycle,
                    );
                    self.cycle_scheduled = true;
                }
            }
        }
        Ok(())
    }

    fn apply_fault(&mut self, fault: usize, scheduler: &mut dyn Scheduler) {
        let base = self.base;
        match self.config.faults[fault] {
            FaultEvent::PartitionDown {
                partition, nodes, ..
            } => {
                let pi = partition.index();
                let taken = nodes.min(self.free[pi]);
                self.free[pi] -= taken;
                self.offline[pi] += taken;
                self.owed[pi] += nodes - taken;
            }
            FaultEvent::PartitionUp {
                partition, nodes, ..
            } => {
                let pi = partition.index();
                let cancelled = nodes.min(self.owed[pi]);
                self.owed[pi] -= cancelled;
                let restored = (nodes - cancelled).min(self.offline[pi]);
                self.offline[pi] -= restored;
                self.free[pi] += restored;
            }
            FaultEvent::NodeCrash {
                partition, nodes, ..
            } => {
                let pi = partition.index();
                let taken = nodes.min(self.free[pi]);
                self.free[pi] -= taken;
                self.offline[pi] += taken;
                let mut remaining = nodes - taken;
                let mut victims: Vec<JobId> = self
                    .running
                    .iter()
                    .filter(|(_, r)| r.allocation.iter().any(|(p, n)| p.index() == pi && *n > 0))
                    .map(|(id, _)| *id)
                    .collect();
                victims.sort_unstable();
                for id in victims {
                    if remaining == 0 {
                        break;
                    }
                    let Some(r) = self.running.remove(&id) else {
                        continue;
                    };
                    let idx = r.idx;
                    kill_attempt(
                        r,
                        self.now,
                        base,
                        self.jobs.as_slices().0,
                        &self.config.retry,
                        &mut self.free,
                        &mut self.offline,
                        &mut self.owed,
                        self.epochs.as_mut_slices().0,
                        self.outcomes.as_mut_slices().0,
                        &mut self.pending,
                        &mut self.retry_at,
                        &mut self.wasted,
                        &mut self.kills,
                        &mut self.retry_cancellations,
                        scheduler,
                    );
                    self.note_terminal_if_canceled(idx);
                    let seized = remaining.min(self.free[pi]);
                    self.free[pi] -= seized;
                    self.offline[pi] += seized;
                    remaining -= seized;
                }
                self.owed[pi] += remaining;
            }
            FaultEvent::TaskKill { job, .. } => {
                if let Some(r) = self.running.remove(&job) {
                    let idx = r.idx;
                    kill_attempt(
                        r,
                        self.now,
                        base,
                        self.jobs.as_slices().0,
                        &self.config.retry,
                        &mut self.free,
                        &mut self.offline,
                        &mut self.owed,
                        self.epochs.as_mut_slices().0,
                        self.outcomes.as_mut_slices().0,
                        &mut self.pending,
                        &mut self.retry_at,
                        &mut self.wasted,
                        &mut self.kills,
                        &mut self.retry_cancellations,
                        scheduler,
                    );
                    self.note_terminal_if_canceled(idx);
                }
            }
        }
    }

    /// Registers (idempotently) the in-flight gauge for `tenant`.
    fn tenant_gauge(&mut self, tenant: &str) {
        if !self.tenant_gauges.contains_key(tenant) {
            let name = format!("serve_tenant_in_flight_{}", sanitize(tenant));
            let gauge = self
                .recorder
                .gauge(&name, "Non-terminal jobs in flight for one tenant");
            self.tenant_gauges.insert(tenant.to_owned(), gauge);
        }
    }

    /// Admission bookkeeping for a job that just reached a terminal state
    /// (completed or cancelled): decrements its tenant's in-flight count.
    fn note_terminal(&mut self, idx: usize) {
        let Some(i) = idx.checked_sub(self.base) else {
            return;
        };
        let Some(tenant) = self
            .jobs
            .as_slices()
            .0
            .get(i)
            .and_then(|spec| spec.attributes.get("tenant"))
        else {
            return;
        };
        let tenant = tenant.to_owned();
        if let Some(n) = self.in_flight.get_mut(&tenant) {
            *n = n.saturating_sub(1);
            let v = *n;
            if let Some(g) = self.tenant_gauges.get(&tenant) {
                g.set(v as f64);
            }
        }
    }

    /// [`note_terminal`](Self::note_terminal), but only when a kill
    /// exhausted the retry budget and cancelled the job (a retried kill
    /// leaves the job non-terminal).
    fn note_terminal_if_canceled(&mut self, idx: usize) {
        let canceled = idx
            .checked_sub(self.base)
            .and_then(|i| self.outcomes.as_slices().0.get(i))
            .is_some_and(|o| o.state == JobState::Canceled);
        if canceled {
            self.note_terminal(idx);
        }
    }

    /// Retires the terminal prefix of per-job state once its retention
    /// window has passed, folding each record into the aggregates and the
    /// digest chain. Prefix-only retirement keeps ingest indices dense and
    /// preserves the summary's fold order.
    fn retire_eligible(&mut self) {
        if self.config.retention.is_infinite() {
            return;
        }
        let cutoff = self.now - self.config.retention;
        while let Some(front) = self.outcomes.front() {
            let terminal = matches!(front.state, JobState::Completed | JobState::Canceled);
            // Cancelled records have no finish time; their submit time is a
            // conservative (earlier) stand-in, so they retire no later than
            // a completion would.
            let done_at = front.finish_time.unwrap_or(front.submit_time);
            if !terminal || done_at > cutoff {
                break;
            }
            let Some(o) = self.outcomes.pop_front() else {
                break;
            };
            let Some(spec) = self.jobs.pop_front() else {
                break;
            };
            self.epochs.pop_front();
            self.index_of.remove(&spec.id);
            self.retired.fold(&o);
            self.retired_digest = fold_outcome(self.retired_digest, &o);
            self.base += 1;
        }
    }

    fn publish_gauges(&self) {
        let m = &self.metrics;
        m.cycles.set_total(self.cycles as u64);
        m.placements.set_total(self.placements_total);
        m.preemptions.set_total(self.preemptions as u64);
        m.cancellations.set_total(self.cancellations_total);
        m.kills.set_total(self.kills as u64);
        m.retry_cancellations
            .set_total(self.retry_cancellations as u64);
        m.submitted.set_total(self.submitted);
        m.completed.set_total(self.completed);
        m.retired.set_total(self.retired.jobs);
        m.live_jobs.set(self.outcomes.len() as f64);
        m.queue_depth.set(self.pending.len() as f64);
        m.running_jobs.set(self.running.len() as f64);
        m.free_nodes.set(f64::from(self.free.iter().sum::<u32>()));
        m.retention.set(self.config.retention);
        for (tenant, n) in &self.in_flight {
            if let Some(g) = self.tenant_gauges.get(tenant) {
                g.set(*n as f64);
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fold_u64(h: u64, v: u64) -> u64 {
    fold_bytes(h, &v.to_le_bytes())
}

fn fold_f64_opt(h: u64, v: Option<f64>) -> u64 {
    match v {
        None => fold_u64(h, 0),
        Some(x) => fold_u64(fold_u64(h, 1), x.to_bits()),
    }
}

/// Folds one outcome into the digest chain: every field, bit-exact, in a
/// fixed order. Two streams agree on the digest iff they produced the same
/// outcomes in the same ingest order.
fn fold_outcome(mut h: u64, o: &JobOutcome) -> u64 {
    h = fold_u64(h, o.id.0);
    h = match o.kind.deadline() {
        None => fold_u64(h, 0),
        Some(d) => fold_u64(fold_u64(h, 1), d.to_bits()),
    };
    h = fold_u64(h, o.submit_time.to_bits());
    h = fold_u64(h, u64::from(o.tasks));
    h = fold_u64(
        h,
        match o.state {
            JobState::Pending => 0,
            JobState::Running => 1,
            JobState::Completed => 2,
            JobState::Canceled => 3,
        },
    );
    h = fold_f64_opt(h, o.start_time);
    h = fold_f64_opt(h, o.finish_time);
    h = fold_f64_opt(h, o.measured_runtime);
    h = fold_u64(h, u64::from(o.preemptions));
    h = fold_u64(h, u64::from(o.kills));
    h = fold_u64(
        h,
        match o.on_preferred {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
    );
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, Placement, SchedulingDecision, SimulationView};
    use crate::job::JobKind;
    use crate::spec::{PartitionId, RcFidelity};

    /// Greedy FIFO scheduler (mirrors the engine test double).
    struct Fifo;

    impl Scheduler for Fifo {
        fn schedule(&mut self, view: &SimulationView<'_>, _now: f64) -> SchedulingDecision {
            let mut free = view.free.to_vec();
            let mut placements = Vec::new();
            for job in &view.pending {
                let mut remaining = job.tasks;
                let mut alloc = Vec::new();
                for (p, f) in free.iter_mut().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    let take = remaining.min(*f);
                    if take > 0 {
                        alloc.push((PartitionId(p), take));
                        remaining -= take;
                        *f -= take;
                    }
                }
                if remaining == 0 {
                    placements.push(Placement {
                        job: job.id,
                        allocation: alloc,
                    });
                } else {
                    for (p, n) in alloc {
                        free[p.index()] += n;
                    }
                }
            }
            SchedulingDecision {
                placements,
                ..SchedulingDecision::noop()
            }
        }
    }

    fn be(id: u64, submit: f64, tasks: u32, duration: f64) -> JobSpec {
        JobSpec::new(id, submit, tasks, duration, JobKind::BestEffort)
    }

    fn slo(id: u64, submit: f64, tasks: u32, duration: f64, deadline: f64) -> JobSpec {
        JobSpec::new(id, submit, tasks, duration, JobKind::Slo { deadline })
    }

    fn config(retention: f64, faults: Vec<FaultEvent>) -> ServeConfig {
        ServeConfig {
            retention,
            faults,
            ..ServeConfig::default()
        }
    }

    fn mixed_trace() -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        for i in 0..40u64 {
            let t = i as f64 * 7.0;
            if i % 3 == 0 {
                jobs.push(slo(i + 1, t, 2, 30.0, t + 90.0));
            } else {
                jobs.push(be(i + 1, t, 1, 20.0));
            }
        }
        jobs
    }

    /// With the whole trace submitted up front, the serve loop is
    /// event-for-event identical to the batch engine: same arrival queue,
    /// same cycle chain, same fault ordering.
    #[test]
    fn streaming_session_matches_batch_engine() {
        let faults = vec![
            FaultEvent::NodeCrash {
                at: 31.0,
                partition: PartitionId(0),
                nodes: 3,
            },
            FaultEvent::PartitionUp {
                at: 61.0,
                partition: PartitionId(0),
                nodes: 3,
            },
            FaultEvent::TaskKill {
                at: 45.0,
                job: JobId(7),
            },
        ];
        let jobs = mixed_trace();

        let engine = Engine::new(
            ClusterSpec::uniform(2, 4),
            EngineConfig {
                faults: faults.clone(),
                ..EngineConfig::default()
            },
        );
        let batch = engine.run(&jobs, &mut Fifo).unwrap();

        let rec = Recorder::enabled();
        let mut session = ServeSession::new(
            ClusterSpec::uniform(2, 4),
            config(f64::INFINITY, faults),
            &rec,
        )
        .unwrap();
        for j in &jobs {
            session.submit(j.clone()).unwrap();
        }
        assert!(session.drain(f64::INFINITY, &mut Fifo).unwrap());

        let live: Vec<JobOutcome> = session.live_outcomes().cloned().collect();
        assert_eq!(live.len(), batch.outcomes.len());
        for (s, b) in live.iter().zip(batch.outcomes.iter()) {
            assert_eq!(s, b, "serve and batch outcomes diverged for {:?}", s.id);
        }
        assert_eq!(session.cycles(), batch.cycles);
        let summary = session.summary();
        assert_eq!(summary.kills, batch.kills);
        assert_eq!(summary.preemptions, batch.preemptions);
        assert_eq!(summary.retry_cancellations, batch.retry_cancellations);
        assert!((summary.wasted_machine_seconds - batch.wasted_machine_seconds).abs() < 1e-9);
    }

    /// Retirement bounds live per-job state without changing the stream
    /// summary: a short-retention session plateaus well below the total job
    /// count yet agrees digest-for-digest with an unbounded one.
    #[test]
    fn retirement_bounds_live_state_and_preserves_the_digest() {
        let jobs = mixed_trace();

        let run = |retention: f64| {
            let rec = Recorder::enabled();
            let mut session =
                ServeSession::new(ClusterSpec::uniform(2, 4), config(retention, vec![]), &rec)
                    .unwrap();
            let mut peak_live = 0usize;
            for j in &jobs {
                session.pump_until(j.submit_time, &mut Fifo).unwrap();
                session.submit(j.clone()).unwrap();
                peak_live = peak_live.max(session.live_jobs());
            }
            assert!(session.drain(f64::INFINITY, &mut Fifo).unwrap());
            let gauge_live = rec.snapshot().gauge("serve_live_jobs").unwrap();
            assert_eq!(gauge_live as usize, session.live_jobs());
            (session.summary(), peak_live, session.retired_jobs())
        };

        let (unbounded, unbounded_peak, unbounded_retired) = run(f64::INFINITY);
        let (bounded, bounded_peak, bounded_retired) = run(40.0);

        assert_eq!(unbounded_retired, 0);
        assert_eq!(unbounded_peak, jobs.len());
        assert!(
            bounded_peak < jobs.len() / 2,
            "short retention must bound live state (peak {bounded_peak} of {})",
            jobs.len()
        );
        assert!(bounded_retired > 0);
        // The stream summary — including the order-sensitive digest — is
        // identical: retirement folds records in ingest order, exactly as
        // summary() does. Only the live/retired bookkeeping split differs.
        let normalize = |mut s: ServeSummary| {
            s.retired = 0;
            s.live = 0;
            s
        };
        assert_eq!(normalize(unbounded), normalize(bounded));
    }

    /// Snapshot at quiescence, restore in a "new process", continue the
    /// stream: state-identical to a session that never restarted, and the
    /// snapshot serialization is byte-stable and roundtrip-exact.
    #[test]
    fn snapshot_restart_is_equivalent_to_an_uninterrupted_run() {
        let cluster = || ClusterSpec::uniform(2, 4);
        let cfg = || config(50.0, vec![]);
        let part_a: Vec<JobSpec> = (0..20u64)
            .map(|i| be(i + 1, i as f64 * 5.0, 2, 15.0))
            .collect();
        // Idle gap: part B starts long after part A drains.
        let part_b: Vec<JobSpec> = (0..20u64)
            .map(|i| be(100 + i, 500.0 + i as f64 * 5.0, 2, 15.0))
            .collect();

        // Straight-through run.
        let rec = Recorder::enabled();
        let mut straight = ServeSession::new(cluster(), cfg(), &rec).unwrap();
        for j in part_a.iter().chain(part_b.iter()) {
            straight.pump_until(j.submit_time, &mut Fifo).unwrap();
            straight.submit(j.clone()).unwrap();
        }
        assert!(straight.drain(f64::INFINITY, &mut Fifo).unwrap());

        // Interrupted run: drain part A, snapshot, "restart", stream part B.
        let rec1 = Recorder::enabled();
        let mut first = ServeSession::new(cluster(), cfg(), &rec1).unwrap();
        for j in &part_a {
            first.pump_until(j.submit_time, &mut Fifo).unwrap();
            first.submit(j.clone()).unwrap();
        }
        assert!(first.drain(f64::INFINITY, &mut Fifo).unwrap());
        let snap = first.snapshot().unwrap();

        // Byte-stable: serializing the same state twice is identical, and a
        // restored session re-snapshots to the same bytes.
        let bytes1 = serde_json::to_string(&snap).unwrap();
        let bytes2 = serde_json::to_string(&first.snapshot().unwrap()).unwrap();
        assert_eq!(bytes1, bytes2);

        let decoded: ServeSnapshot = serde_json::from_str(&bytes1).unwrap();
        let rec2 = Recorder::enabled();
        let mut second = ServeSession::restore(cluster(), cfg(), &rec2, &decoded).unwrap();
        assert_eq!(
            serde_json::to_string(&second.snapshot().unwrap()).unwrap(),
            bytes1,
            "restore → snapshot must reproduce the original bytes"
        );
        for j in &part_b {
            second.pump_until(j.submit_time, &mut Fifo).unwrap();
            second.submit(j.clone()).unwrap();
        }
        assert!(second.drain(f64::INFINITY, &mut Fifo).unwrap());

        let a = straight.summary();
        let b = second.summary();
        assert_eq!(a, b, "restarted stream must match the uninterrupted one");
        assert!(a.digest != FNV_OFFSET, "digest must have folded outcomes");
    }

    /// Satellite regression: at service horizons around 2^46 simulated
    /// seconds, the old fixed retry tolerance (1e-6) was smaller than one
    /// f64 ulp, so a backoff expiring between cycles was withheld for extra
    /// cycles. The ulp-aware tolerance admits the retry on the first cycle
    /// within 64 ulps (here 1.0 s) of expiry.
    #[test]
    fn huge_now_backoff_is_not_skipped_for_extra_cycles() {
        let t0 = (1u64 << 46) as f64; // ulp = 2^-6 s; 64 ulps = 1.0 s
        let cfg = ServeConfig {
            faults: vec![FaultEvent::TaskKill {
                at: t0 + 10.0,
                job: JobId(1),
            }],
            ..ServeConfig::default()
        };
        let rec = Recorder::enabled();
        let mut session = ServeSession::new(ClusterSpec::uniform(1, 4), cfg, &rec).unwrap();
        session.submit(be(1, t0, 2, 50.0)).unwrap();
        assert!(session.drain(f64::INFINITY, &mut Fifo).unwrap());

        let o = session.live_outcomes().next().unwrap().clone();
        assert_eq!(o.state, JobState::Completed);
        assert_eq!(o.kills, 1);
        // Kill at t0+10 ⇒ retry_at = t0+15 (5 s backoff). Cycles tick at
        // t0+2k; eps = 64 ulps = 1.0 s, so the retry is admitted at t0+14.
        // The old fixed 1e-6 tolerance (≪ one ulp here) delayed it to t0+16.
        assert_eq!(o.start_time, Some(t0 + 14.0));
        assert_eq!(o.finish_time, Some(t0 + 64.0));
    }

    #[test]
    fn out_of_order_and_duplicate_submissions_are_typed_errors() {
        let rec = Recorder::enabled();
        let mut session =
            ServeSession::new(ClusterSpec::uniform(1, 4), ServeConfig::default(), &rec).unwrap();
        session.submit(be(1, 10.0, 1, 5.0)).unwrap();
        assert_eq!(
            session.submit(be(2, 9.0, 1, 5.0)),
            Err(SimError::OutOfOrderSubmit { job: JobId(2) })
        );
        assert_eq!(
            session.submit(be(1, 11.0, 1, 5.0)),
            Err(SimError::DuplicateJobId { job: JobId(1) })
        );
        // Malformed specs are rejected before entering the session.
        let mut bad = be(3, 12.0, 1, 5.0);
        bad.duration = f64::NAN;
        assert!(matches!(
            session.submit(bad),
            Err(SimError::MalformedJobSpec { job: JobId(3), .. })
        ));
    }

    #[test]
    fn snapshot_requires_quiescence() {
        let rec = Recorder::enabled();
        let mut session =
            ServeSession::new(ClusterSpec::uniform(1, 4), ServeConfig::default(), &rec).unwrap();
        session.submit(be(1, 0.0, 1, 100.0)).unwrap();
        session.pump_until(50.0, &mut Fifo).unwrap();
        assert!(!session.is_quiescent());
        assert_eq!(
            session.snapshot().unwrap_err(),
            SimError::SnapshotNotQuiescent
        );
        assert!(session.drain(f64::INFINITY, &mut Fifo).unwrap());
        assert!(session.snapshot().is_ok());
    }

    #[test]
    fn serve_rejects_rc_fidelity_and_bad_config() {
        let rec = Recorder::enabled();
        let rc = ClusterSpec::uniform(1, 4).with_rc_fidelity(RcFidelity::default());
        assert!(matches!(
            ServeSession::new(rc, ServeConfig::default(), &rec),
            Err(SimError::BadServeConfig { .. })
        ));
        let bad_retention = ServeConfig {
            retention: -1.0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            ServeSession::new(ClusterSpec::uniform(1, 4), bad_retention, &rec),
            Err(SimError::BadServeConfig { .. })
        ));
        let bad_fault = ServeConfig {
            faults: vec![FaultEvent::PartitionDown {
                at: 1.0,
                partition: PartitionId(9),
                nodes: 1,
            }],
            ..ServeConfig::default()
        };
        assert!(matches!(
            ServeSession::new(ClusterSpec::uniform(1, 4), bad_fault, &rec),
            Err(SimError::BadServeConfig { .. })
        ));
    }

    /// `pump_until` is strictly exclusive of its limit so a cycle at
    /// exactly a new job's submit time still sees the arrival.
    #[test]
    fn pump_until_is_exclusive_of_the_limit() {
        let rec = Recorder::enabled();
        let mut session =
            ServeSession::new(ClusterSpec::uniform(1, 4), ServeConfig::default(), &rec).unwrap();
        session.submit(be(1, 5.0, 1, 10.0)).unwrap();
        session.pump_until(5.0, &mut Fifo).unwrap();
        assert_eq!(session.now(), 0.0, "events at the limit stay queued");
        session.pump_until(6.0, &mut Fifo).unwrap();
        assert!(session.now() >= 5.0);
    }
}
