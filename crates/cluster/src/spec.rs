//! Cluster topology: partitions of interchangeable nodes.

use serde::{Deserialize, Serialize};

/// Identifier of a resource partition (rack / equivalence set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartitionId(pub usize);

impl PartitionId {
    /// Dense index of this partition.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Noise model that turns the clean simulator (SC) into a stand-in for the
/// paper's real cluster (RC): per-task runtime jitter, a fixed container
/// start-up/RPC latency, and per-placement node-speed variation.
///
/// The paper validates SC256 against RC256 and reports only small metric
/// deltas (Table 2); this model reproduces the *source* of those deltas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcFidelity {
    /// Coefficient of variation of multiplicative runtime jitter.
    pub runtime_jitter_cov: f64,
    /// Seconds between a placement decision and tasks actually starting.
    pub placement_latency: f64,
}

impl Default for RcFidelity {
    fn default() -> Self {
        Self {
            runtime_jitter_cov: 0.03,
            placement_latency: 2.0,
        }
    }
}

/// A cluster: `partitions[i]` nodes in partition `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    partitions: Vec<u32>,
    /// Optional real-cluster noise model; `None` is the clean simulator.
    pub rc_fidelity: Option<RcFidelity>,
}

impl ClusterSpec {
    /// A cluster with the given per-partition node counts.
    ///
    /// # Panics
    ///
    /// Panics if there are no partitions or any partition is empty.
    pub fn new(partitions: Vec<u32>) -> Self {
        assert!(!partitions.is_empty(), "cluster needs partitions");
        assert!(
            partitions.iter().all(|&n| n > 0),
            "partitions must be non-empty"
        );
        Self {
            partitions,
            rc_fidelity: None,
        }
    }

    /// `racks` equal partitions of `nodes_per_rack` nodes — e.g.
    /// `uniform(8, 32)` is the paper's 256-node cluster.
    pub fn uniform(racks: usize, nodes_per_rack: u32) -> Self {
        Self::new(vec![nodes_per_rack; racks])
    }

    /// Enables real-cluster fidelity noise.
    pub fn with_rc_fidelity(mut self, fidelity: RcFidelity) -> Self {
        self.rc_fidelity = Some(fidelity);
        self
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Nodes in partition `p`.
    pub fn partition_size(&self, p: PartitionId) -> u32 {
        self.partitions[p.0]
    }

    /// Total nodes in the cluster.
    pub fn total_nodes(&self) -> u32 {
        self.partitions.iter().sum()
    }

    /// All partition ids.
    pub fn partition_ids(&self) -> impl Iterator<Item = PartitionId> + '_ {
        (0..self.partitions.len()).map(PartitionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cluster_matches_paper_setup() {
        let c = ClusterSpec::uniform(8, 32);
        assert_eq!(c.num_partitions(), 8);
        assert_eq!(c.total_nodes(), 256);
        assert_eq!(c.partition_size(PartitionId(3)), 32);
        assert!(c.rc_fidelity.is_none());
    }

    #[test]
    fn heterogeneous_partitions() {
        let c = ClusterSpec::new(vec![16, 32, 64]);
        assert_eq!(c.total_nodes(), 112);
        assert_eq!(c.partition_ids().count(), 3);
    }

    #[test]
    fn rc_fidelity_is_opt_in() {
        let c = ClusterSpec::uniform(2, 4).with_rc_fidelity(RcFidelity::default());
        let f = c.rc_fidelity.unwrap();
        assert!(f.runtime_jitter_cov > 0.0);
        assert!(f.placement_latency > 0.0);
    }

    #[test]
    #[should_panic(expected = "partitions")]
    fn empty_cluster_panics() {
        let _ = ClusterSpec::new(vec![]);
    }
}
