//! The predictor: expert selection across features.
//!
//! For a new job, every feature value the job matches contributes up to four
//! experts. The expert with the lowest NMAE over its past predictions wins;
//! its feature value's histogram becomes the job's distribution estimate and
//! its point estimate is the JVuPredict-style point prediction (§4.1).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use threesigma_histogram::RuntimeDistribution;

use crate::expert::{EstimatorKind, ValueState, ESTIMATORS};
use crate::feature::{extract, AttributeSource, FeatureSet};

/// Predictor tuning knobs.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Streaming-histogram bin budget (paper: 80).
    pub max_bins: usize,
    /// Window for the median / recent-average experts.
    pub recent_window: usize,
    /// Rolling-expert smoothing factor (paper: 0.6).
    pub ewma_alpha: f64,
    /// Optional cap on visible samples per feature value (Fig. 11 study).
    pub sample_cap: Option<usize>,
    /// Minimum scored predictions before an expert's NMAE is trusted.
    pub min_expert_evals: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            max_bins: 80,
            recent_window: 10,
            ewma_alpha: 0.6,
            sample_cap: None,
            min_expert_evals: 3,
        }
    }
}

/// A runtime prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Estimated runtime distribution (the winning feature value's history).
    pub distribution: RuntimeDistribution,
    /// The winning expert's point estimate (JVuPredict's output).
    pub point: f64,
    /// Name of the winning feature.
    pub feature: &'static str,
    /// The winning estimator.
    pub estimator: EstimatorKind,
    /// Number of history samples behind the distribution.
    pub history: u64,
}

/// 3σPredict: per-feature-value histories plus online expert selection.
#[derive(Debug)]
pub struct Predictor {
    config: PredictorConfig,
    features: FeatureSet,
    /// State per `(feature index, feature value)`.
    state: HashMap<(usize, String), ValueState>,
}

impl Predictor {
    /// Predictor with the standard feature set.
    pub fn new(config: PredictorConfig) -> Self {
        Self::with_features(config, FeatureSet::standard())
    }

    /// Predictor with an explicit feature set.
    pub fn with_features(config: PredictorConfig, features: FeatureSet) -> Self {
        assert!(!features.is_empty(), "need at least one feature");
        Self {
            config,
            features,
            state: HashMap::new(),
        }
    }

    /// Number of distinct feature values tracked (memory gauge).
    pub fn tracked_values(&self) -> usize {
        self.state.len()
    }

    /// Records a completed job's measured runtime against all its features.
    pub fn observe(&mut self, attrs: &impl AttributeSource, runtime: f64) {
        if !(runtime.is_finite() && runtime > 0.0) {
            return; // defensive: never poison history with bad samples
        }
        let cfg = &self.config;
        for (fi, feature) in self.features.features.iter().enumerate() {
            let Some(value) = extract(feature, attrs) else {
                continue;
            };
            self.state
                .entry((fi, value))
                .or_insert_with(|| {
                    ValueState::new(
                        cfg.max_bins,
                        cfg.recent_window,
                        cfg.ewma_alpha,
                        cfg.sample_cap,
                    )
                })
                .observe(runtime);
        }
    }

    /// Predicts the runtime distribution for a job with the given
    /// attributes. `None` when no matching feature value has any history.
    pub fn predict(&self, attrs: &impl AttributeSource) -> Option<Prediction> {
        // Best scored expert: lowest trusted NMAE; tie-break on more history.
        let mut best_scored: Option<(f64, u64, &ValueState, usize, EstimatorKind)> = None;
        // Fallback: most history, preferring the median estimator.
        let mut best_fallback: Option<(u64, &ValueState, usize, EstimatorKind)> = None;

        for (fi, feature) in self.features.features.iter().enumerate() {
            let Some(value) = extract(feature, attrs) else {
                continue;
            };
            let Some(state) = self.state.get(&(fi, value)) else {
                continue;
            };
            if state.count() == 0 {
                continue;
            }
            for kind in ESTIMATORS {
                if state.estimate(kind).is_none() {
                    continue;
                }
                let score = state.score(kind);
                match score.nmae() {
                    Some(nmae) if score.evals >= self.config.min_expert_evals => {
                        let better = match &best_scored {
                            None => true,
                            Some((b_nmae, b_hist, ..)) => {
                                nmae < *b_nmae - 1e-12
                                    || ((nmae - *b_nmae).abs() <= 1e-12 && state.count() > *b_hist)
                            }
                        };
                        if better {
                            best_scored = Some((nmae, state.count(), state, fi, kind));
                        }
                    }
                    _ => {
                        let pref = kind == EstimatorKind::RecentMedian;
                        let better = match &best_fallback {
                            None => true,
                            Some((b_hist, _, _, b_kind)) => {
                                state.count() > *b_hist
                                    || (state.count() == *b_hist
                                        && pref
                                        && *b_kind != EstimatorKind::RecentMedian)
                            }
                        };
                        if better {
                            best_fallback = Some((state.count(), state, fi, kind));
                        }
                    }
                }
            }
        }

        let (state, fi, kind) = match (best_scored, best_fallback) {
            (Some((_, _, s, fi, k)), _) => (s, fi, k),
            (None, Some((_, s, fi, k))) => (s, fi, k),
            (None, None) => return None,
        };
        let distribution = state.distribution()?;
        let point = state.estimate(kind)?;
        Some(Prediction {
            distribution,
            point,
            feature: self.features.features[fi].name,
            estimator: kind,
            history: state.count(),
        })
    }

    /// JVuPredict: just the winning expert's point estimate.
    pub fn predict_point(&self, attrs: &impl AttributeSource) -> Option<f64> {
        self.predict(attrs).map(|p| p.point)
    }

    /// Serialisable snapshot of the trained state (histories + scores).
    ///
    /// Restoring requires the same feature set and config; this is how a
    /// long-lived deployment persists its history database across restarts.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .state
                .iter()
                .map(|((fi, value), state)| (*fi, value.clone(), state.clone()))
                .collect(),
        }
    }

    /// Restores a snapshot taken by [`snapshot`](Self::snapshot), replacing
    /// any current state.
    ///
    /// Returns `Err` with the offending feature index when the snapshot
    /// references features this predictor does not have.
    pub fn restore(&mut self, snapshot: Snapshot) -> Result<(), usize> {
        for (fi, _, _) in &snapshot.entries {
            if *fi >= self.features.len() {
                return Err(*fi);
            }
        }
        self.state = snapshot
            .entries
            .into_iter()
            .map(|(fi, value, state)| ((fi, value), state))
            .collect();
        Ok(())
    }
}

/// Serialisable predictor state (see [`Predictor::snapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// `(feature index, feature value, state)` triples.
    entries: Vec<(usize, String, ValueState)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use threesigma_histogram::Dist;

    fn attrs(user: &str, name: &str) -> [(String, String); 4] {
        [
            ("user".to_owned(), user.to_owned()),
            ("job_name".to_owned(), name.to_owned()),
            ("priority".to_owned(), "5".to_owned()),
            ("tasks".to_owned(), "4".to_owned()),
        ]
    }

    #[test]
    fn no_history_yields_none() {
        let p = Predictor::new(PredictorConfig::default());
        assert!(p.predict(&attrs("alice", "etl")).is_none());
    }

    #[test]
    fn learns_a_constant_user() {
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..20 {
            p.observe(&attrs("alice", "etl"), 120.0);
        }
        let pred = p.predict(&attrs("alice", "etl")).unwrap();
        assert!((pred.point - 120.0).abs() < 1e-9);
        assert!((pred.distribution.mean() - 120.0).abs() < 1e-9);
        assert!(pred.history >= 20);
    }

    #[test]
    fn global_fallback_covers_unseen_users() {
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..10 {
            p.observe(&attrs("alice", "etl"), 100.0);
        }
        // Bob shares no attribute value with alice: only the global
        // feature has history for him.
        let bob = [
            ("user".to_owned(), "bob".to_owned()),
            ("job_name".to_owned(), "novel".to_owned()),
            ("priority".to_owned(), "9".to_owned()),
            ("tasks".to_owned(), "99".to_owned()),
        ];
        let pred = p.predict(&bob).unwrap();
        assert_eq!(pred.feature, "global");
        assert!((pred.point - 100.0).abs() < 1e-9);
    }

    #[test]
    fn selects_the_predictive_feature() {
        // job_name is noisy across users; user is perfectly predictive.
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..30 {
            p.observe(&attrs("alice", "shared"), 100.0);
            p.observe(
                &attrs(&format!("other{}", i % 5), "shared"),
                2000.0 + i as f64 * 37.0,
            );
        }
        let pred = p.predict(&attrs("alice", "shared")).unwrap();
        assert!(
            (pred.point - 100.0).abs() < 1.0,
            "picked alice-specific history, got {} via {}",
            pred.point,
            pred.feature
        );
        assert!(pred.feature.contains("user"));
    }

    #[test]
    fn distribution_covers_multi_modal_history() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..40 {
            let rt = if i % 2 == 0 { 60.0 } else { 600.0 };
            p.observe(&attrs("carol", "sweep"), rt);
        }
        let pred = p.predict(&attrs("carol", "sweep")).unwrap();
        let d = &pred.distribution;
        assert!(d.lower_bound() <= 60.0 + 1e-9);
        assert!(d.upper_bound() >= 600.0 - 1e-9);
        // Both modes carry mass (the histogram interpolation smears some
        // mass between the modes, hence the generous band).
        assert!(d.cdf(100.0) > 0.2 && d.cdf(100.0) < 0.8);
    }

    #[test]
    fn adapts_when_runtimes_drift() {
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..30 {
            p.observe(&attrs("dave", "etl"), 100.0);
        }
        for _ in 0..30 {
            p.observe(&attrs("dave", "etl"), 1000.0);
        }
        let pred = p.predict(&attrs("dave", "etl")).unwrap();
        // A recent-window expert should have won; estimate near new regime.
        assert!(
            pred.point > 800.0,
            "point {} via {:?}",
            pred.point,
            pred.estimator
        );
    }

    #[test]
    fn sample_cap_flows_through() {
        let mut p = Predictor::new(PredictorConfig {
            sample_cap: Some(5),
            ..PredictorConfig::default()
        });
        for _ in 0..50 {
            p.observe(&attrs("erin", "etl"), 500.0);
        }
        for _ in 0..5 {
            p.observe(&attrs("erin", "etl"), 50.0);
        }
        let pred = p.predict(&attrs("erin", "etl")).unwrap();
        assert_eq!(pred.history, 5);
        assert!(pred.distribution.upper_bound() <= 50.0 + 1e-9);
    }

    #[test]
    fn ignores_degenerate_runtimes() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("f", "g"), f64::NAN);
        p.observe(&attrs("f", "g"), -5.0);
        p.observe(&attrs("f", "g"), 0.0);
        assert!(p.predict(&attrs("f", "g")).is_none());
    }

    #[test]
    fn predict_point_matches_prediction_point() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..15 {
            p.observe(&attrs("zoe", "job"), 60.0 + i as f64);
        }
        let full = p.predict(&attrs("zoe", "job")).unwrap();
        let point = p.predict_point(&attrs("zoe", "job")).unwrap();
        assert_eq!(full.point, point);
    }

    #[test]
    fn untrusted_experts_fall_back_to_history_size() {
        // Below min_expert_evals, the fallback (most history, preferring
        // the median) is used rather than an unscored NMAE.
        let mut p = Predictor::new(PredictorConfig {
            min_expert_evals: 1000, // never trusted
            ..PredictorConfig::default()
        });
        for _ in 0..10 {
            p.observe(&attrs("kim", "x"), 80.0);
        }
        let pred = p.predict(&attrs("kim", "x")).unwrap();
        assert_eq!(pred.estimator, EstimatorKind::RecentMedian);
        assert!((pred.point - 80.0).abs() < 1e-9);
    }

    #[test]
    fn expert_scores_prefer_recent_regime_after_shift() {
        // After a regime change, the rolling/recent experts have lower
        // NMAE than the long-run average and win selection.
        let mut p = Predictor::new(PredictorConfig::default());
        for _ in 0..50 {
            p.observe(&attrs("lee", "y"), 100.0);
        }
        for _ in 0..50 {
            p.observe(&attrs("lee", "y"), 1000.0);
        }
        let pred = p.predict(&attrs("lee", "y")).unwrap();
        assert_ne!(pred.estimator, EstimatorKind::Average, "{pred:?}");
    }

    #[test]
    fn single_observation_still_predicts() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("solo", "once"), 77.0);
        let pred = p.predict(&attrs("solo", "once")).unwrap();
        assert!((pred.point - 77.0).abs() < 1e-9);
        assert_eq!(pred.history, 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let mut p = Predictor::new(PredictorConfig::default());
        for i in 0..40 {
            p.observe(&attrs("ana", "etl"), 100.0 + (i % 7) as f64);
        }
        let before = p.predict(&attrs("ana", "etl")).unwrap();
        let snap = p.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let mut fresh = Predictor::new(PredictorConfig::default());
        fresh.restore(serde_json::from_str(&json).unwrap()).unwrap();
        let after = fresh.predict(&attrs("ana", "etl")).unwrap();
        // JSON roundtrips can flip last-ulp ties between experts; the
        // restored prediction must agree to float noise.
        assert!((after.point - before.point).abs() < 1e-6);
        assert_eq!(after.feature, before.feature);
        assert_eq!(after.history, before.history);
    }

    #[test]
    fn restore_rejects_foreign_features() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("x", "y"), 10.0);
        let mut snap = p.snapshot();
        // Corrupt one entry with an out-of-range feature index.
        snap.entries
            .push((999, "v".into(), snap.entries[0].2.clone()));
        let mut fresh = Predictor::new(PredictorConfig::default());
        assert_eq!(fresh.restore(snap), Err(999));
    }

    #[test]
    fn tracked_values_grow_with_distinct_features() {
        let mut p = Predictor::new(PredictorConfig::default());
        p.observe(&attrs("a", "x"), 10.0);
        let first = p.tracked_values();
        p.observe(&attrs("b", "y"), 10.0);
        assert!(p.tracked_values() > first);
    }
}
